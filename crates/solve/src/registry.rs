//! Name-indexed solver construction from typed configs.
//!
//! The registry maps a stable solver name to a factory taking that
//! solver's own config type, erased behind [`std::any::Any`] so callers
//! can drive heterogeneous construction through one interface:
//!
//! ```
//! use sophie_solve::{Capabilities, SolveError, SolveJob, SolveObserver};
//! use sophie_solve::{Solver, SolverRegistry};
//! # use sophie_solve::SolveReport;
//!
//! #[derive(Default)]
//! struct EchoConfig { iterations: usize }
//! struct Echo(usize);
//! impl Solver for Echo {
//!     fn name(&self) -> &'static str { "echo" }
//!     fn capabilities(&self) -> Capabilities { Capabilities::default() }
//!     fn solve(&self, _: &SolveJob, _: &mut dyn SolveObserver)
//!         -> Result<SolveReport, SolveError> {
//!         Ok(SolveReport { planned_iterations: self.0, ..SolveReport::default() })
//!     }
//! }
//!
//! let mut reg = SolverRegistry::new();
//! reg.register("echo", "toy example", |c: &EchoConfig| Ok(Echo(c.iterations)));
//! let solver = reg.build("echo", &EchoConfig { iterations: 5 }).unwrap();
//! assert_eq!(solver.name(), "echo");
//! assert!(reg.build("echo", &42_u32).is_err()); // wrong config type
//! ```
//!
//! Registration order is irrelevant: names list in sorted order. The
//! `sophie` facade crate provides `default_registry()` with every solver
//! in the workspace pre-registered.

use std::any::{type_name, Any};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::SolveError;
use crate::solver::Solver;

type BuildFn = Box<dyn Fn(&dyn Any) -> Result<Arc<dyn Solver>, SolveError> + Send + Sync>;
type DefaultFn = Box<dyn Fn() -> Result<Arc<dyn Solver>, SolveError> + Send + Sync>;

struct Entry {
    summary: &'static str,
    config_type: &'static str,
    build: BuildFn,
    build_default: DefaultFn,
}

/// Constructs any registered [`Solver`] by name from a typed config.
#[derive(Default)]
pub struct SolverRegistry {
    entries: BTreeMap<&'static str, Entry>,
}

impl SolverRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        SolverRegistry::default()
    }

    /// Registers `factory` under `name`. The factory's config type `C`
    /// must implement `Default` (used by [`Self::build_default`]); a
    /// previous registration under the same name is replaced.
    pub fn register<C, S, F>(&mut self, name: &'static str, summary: &'static str, factory: F)
    where
        C: Any + Default,
        S: Solver + 'static,
        F: Fn(&C) -> Result<S, SolveError> + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let for_default = Arc::clone(&factory);
        let build: BuildFn = Box::new(move |config: &dyn Any| {
            let config = config
                .downcast_ref::<C>()
                .ok_or_else(|| SolveError::ConfigType {
                    solver: name.to_string(),
                    expected: type_name::<C>(),
                })?;
            factory(config).map(|s| Arc::new(s) as Arc<dyn Solver>)
        });
        let build_default: DefaultFn =
            Box::new(move || for_default(&C::default()).map(|s| Arc::new(s) as Arc<dyn Solver>));
        self.entries.insert(
            name,
            Entry {
                summary,
                config_type: type_name::<C>(),
                build,
                build_default,
            },
        );
    }

    /// Builds the named solver from `config`, which must be the concrete
    /// config type its factory was registered with.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnknownSolver`] for unregistered names,
    /// [`SolveError::ConfigType`] for a config of the wrong type, plus
    /// whatever the factory returns.
    pub fn build(&self, name: &str, config: &dyn Any) -> Result<Arc<dyn Solver>, SolveError> {
        (self.entry(name)?.build)(config)
    }

    /// Builds the named solver from its config type's `Default`.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnknownSolver`] for unregistered names, plus whatever
    /// the factory returns.
    pub fn build_default(&self, name: &str) -> Result<Arc<dyn Solver>, SolveError> {
        (self.entry(name)?.build_default)()
    }

    /// Registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.keys().copied().collect()
    }

    /// One-line summary of the named solver, if registered.
    #[must_use]
    pub fn summary(&self, name: &str) -> Option<&'static str> {
        self.entries.get(name).map(|e| e.summary)
    }

    /// Type name of the named solver's config, if registered.
    #[must_use]
    pub fn config_type(&self, name: &str) -> Option<&'static str> {
        self.entries.get(name).map(|e| e.config_type)
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of registered solvers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn entry(&self, name: &str) -> Result<&Entry, SolveError> {
        self.entries
            .get(name)
            .ok_or_else(|| SolveError::UnknownSolver {
                name: name.to_string(),
                known: self.names().iter().map(ToString::to_string).collect(),
            })
    }
}

impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SolveJob;
    use crate::observe::SolveObserver;
    use crate::report::SolveReport;
    use crate::solver::Capabilities;

    #[derive(Default)]
    struct ToyConfig {
        fail: bool,
    }

    struct Toy;

    impl Solver for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::default()
        }
        fn solve(
            &self,
            _job: &SolveJob,
            _observer: &mut dyn SolveObserver,
        ) -> Result<SolveReport, SolveError> {
            Ok(SolveReport::default())
        }
    }

    fn registry() -> SolverRegistry {
        let mut reg = SolverRegistry::new();
        reg.register("toy", "toy solver", |c: &ToyConfig| {
            if c.fail {
                Err(SolveError::BadConfig {
                    solver: "toy".to_string(),
                    message: "fail requested".to_string(),
                })
            } else {
                Ok(Toy)
            }
        });
        reg
    }

    #[test]
    fn builds_by_name_with_typed_config() {
        let reg = registry();
        assert_eq!(reg.names(), vec!["toy"]);
        assert!(reg.contains("toy"));
        assert_eq!(reg.summary("toy"), Some("toy solver"));
        let s = reg.build("toy", &ToyConfig { fail: false }).unwrap();
        assert_eq!(s.name(), "toy");
        assert_eq!(reg.build_default("toy").unwrap().name(), "toy");
    }

    #[test]
    fn listing_order_is_independent_of_registration_order() {
        // Regression test for deterministic CLI/service listings: `names()`
        // sorts by name, never by insertion order.
        let mut fwd = SolverRegistry::new();
        fwd.register("alpha", "a", |_: &ToyConfig| Ok(Toy));
        fwd.register("zeta", "z", |_: &ToyConfig| Ok(Toy));
        fwd.register("mid", "m", |_: &ToyConfig| Ok(Toy));
        let mut rev = SolverRegistry::new();
        rev.register("mid", "m", |_: &ToyConfig| Ok(Toy));
        rev.register("zeta", "z", |_: &ToyConfig| Ok(Toy));
        rev.register("alpha", "a", |_: &ToyConfig| Ok(Toy));
        assert_eq!(fwd.names(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(fwd.names(), rev.names());
    }

    #[test]
    fn unknown_names_and_wrong_config_types_are_typed_errors() {
        let reg = registry();
        match reg.build_default("nope").err() {
            Some(SolveError::UnknownSolver { name, known }) => {
                assert_eq!(name, "nope");
                assert_eq!(known, vec!["toy".to_string()]);
            }
            other => panic!("expected UnknownSolver, got {other:?}"),
        }
        match reg.build("toy", &12_u64).err() {
            Some(SolveError::ConfigType { solver, expected }) => {
                assert_eq!(solver, "toy");
                assert!(expected.contains("ToyConfig"));
            }
            other => panic!("expected ConfigType, got {other:?}"),
        }
    }

    #[test]
    fn factory_errors_propagate() {
        let reg = registry();
        assert!(matches!(
            reg.build("toy", &ToyConfig { fail: true }),
            Err(SolveError::BadConfig { .. })
        ));
    }
}
