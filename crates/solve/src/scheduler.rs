//! Solver-agnostic batch scheduling.
//!
//! The accelerator amortizes OPCM programming by running a *batch* of
//! independent jobs between reprogramming passes (§III-E; Fig. 9 picks
//! batch = 100). This module generalizes that idea to heterogeneous
//! batches: each [`BatchJob`] pairs its own [`Solver`] instance with its
//! own [`SolveJob`], and [`run_batch`] fans the batch across the
//! persistent worker pool in [`sophie_linalg::par`].
//!
//! # Determinism
//!
//! With default [`BatchOptions`] every job is a pure function of its
//! (solver, job) pair: results come back in submission order and are
//! bit-identical for any `SOPHIE_THREADS` value. The opt-in cooperative
//! features — [`BatchOptions::cancel_on_target`] and per-job
//! [`JobBudget::time_limit`](crate::JobBudget::time_limit) — trade that
//! away: which iteration a cancelled job stops at depends on wall-clock
//! timing.
//!
//! # Nesting
//!
//! Jobs dispatched here may themselves fan out (the SOPHIE engine
//! parallelizes tile pairs within a round). The worker pool runs nested
//! parallel calls inline on the posting thread, so batch-over-engine
//! composition cannot deadlock or oversubscribe.

use std::sync::Arc;

use crate::error::SolveError;
use crate::job::{CancelToken, SolveJob};
use crate::observe::{NullObserver, SolveEvent, SolveObserver};
use crate::opcount::OpCounts;
use crate::report::SolveReport;
use crate::solver::Solver;
use crate::stats::{self, StatsError};

/// One scheduled unit: a solver instance plus the job it should run.
#[derive(Clone)]
pub struct BatchJob {
    /// The solver to run the job on.
    pub solver: Arc<dyn Solver>,
    /// The job description.
    pub job: SolveJob,
}

impl BatchJob {
    /// Pairs a solver with a job.
    #[must_use]
    pub fn new(solver: Arc<dyn Solver>, job: SolveJob) -> Self {
        BatchJob { solver, job }
    }
}

impl std::fmt::Debug for BatchJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchJob")
            .field("solver", &self.solver.name())
            .field("job", &self.job)
            .finish()
    }
}

/// Batch-wide execution policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOptions {
    /// When set, the first job whose run reaches its target cancels every
    /// sibling through a shared [`CancelToken`] (replacing any token the
    /// jobs carried). Useful for racing heterogeneous solvers to a cut;
    /// makes where the losers stop timing-dependent.
    pub cancel_on_target: bool,
}

/// Aggregate statistics for the jobs of one solver within a batch.
///
/// Produced by [`BatchReport::per_solver`], always in ascending solver-name
/// order so listings built from heterogeneous batches are deterministic
/// regardless of submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverAggregate {
    /// Solver identifier (the `solver` field of the jobs' reports).
    pub solver: String,
    /// Jobs this solver ran in the batch.
    pub jobs: usize,
    /// Mean best cut across this solver's jobs.
    pub mean_cut: f64,
    /// Best cut across this solver's jobs.
    pub best_cut: f64,
    /// This solver's jobs that reached their target.
    pub converged: usize,
    /// Operation totals summed over this solver's jobs.
    pub ops: OpCounts,
}

/// Aggregate result of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-job reports, in submission order.
    pub reports: Vec<SolveReport>,
    /// Mean best cut across jobs.
    pub mean_cut: f64,
    /// Best cut across jobs.
    pub best_cut: f64,
    /// Jobs that reached their target (when one was set).
    pub converged: usize,
    /// Operation totals summed over every job.
    pub ops: OpCounts,
}

impl BatchReport {
    fn from_reports(reports: Vec<SolveReport>) -> Self {
        let mean_cut = stats::mean(reports.iter().map(|r| r.best_cut));
        let best_cut = reports
            .iter()
            .map(|r| r.best_cut)
            .fold(f64::NEG_INFINITY, f64::max);
        let converged = reports
            .iter()
            .filter(|r| r.iterations_to_target.is_some())
            .count();
        let ops = reports
            .iter()
            .fold(OpCounts::default(), |acc, r| acc.combined(&r.ops));
        BatchReport {
            reports,
            mean_cut,
            best_cut,
            converged,
            ops,
        }
    }

    /// Fraction of jobs that reached their target.
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        self.converged as f64 / self.reports.len().max(1) as f64
    }

    /// Per-solver aggregates over a (possibly heterogeneous) batch, sorted
    /// by solver name — never by submission or completion order, so CLI
    /// and service output built from them is deterministic.
    #[must_use]
    pub fn per_solver(&self) -> Vec<SolverAggregate> {
        let mut by_name: std::collections::BTreeMap<&str, Vec<&SolveReport>> =
            std::collections::BTreeMap::new();
        for r in &self.reports {
            by_name.entry(r.solver.as_str()).or_default().push(r);
        }
        by_name
            .into_iter()
            .map(|(solver, reports)| SolverAggregate {
                solver: solver.to_string(),
                jobs: reports.len(),
                mean_cut: stats::mean(reports.iter().map(|r| r.best_cut)),
                best_cut: reports
                    .iter()
                    .map(|r| r.best_cut)
                    .fold(f64::NEG_INFINITY, f64::max),
                converged: reports
                    .iter()
                    .filter(|r| r.iterations_to_target.is_some())
                    .count(),
                ops: reports
                    .iter()
                    .fold(OpCounts::default(), |acc, r| acc.combined(&r.ops)),
            })
            .collect()
    }

    /// The `q`-quantile of iterations-to-target across the batch, with
    /// non-converged jobs counted at `budget` (`q = 0.9` is Table II's
    /// T90).
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] for an empty batch or `q` outside
    /// `[0, 1]`.
    pub fn iters_to_target_quantile(&self, q: f64, budget: usize) -> Result<usize, StatsError> {
        stats::iters_to_target_quantile(
            self.reports.iter().map(|r| r.iterations_to_target),
            q,
            budget,
        )
    }
}

/// Observer that trips a shared token on the first `TargetReached`.
struct CancelOnTarget<'a> {
    token: &'a CancelToken,
}

impl SolveObserver for CancelOnTarget<'_> {
    fn on_event(&mut self, event: &SolveEvent) {
        if matches!(event, SolveEvent::TargetReached { .. }) {
            self.token.cancel();
        }
    }
}

/// Runs a heterogeneous batch across the worker pool, returning per-job
/// reports in submission order plus aggregate statistics.
///
/// # Errors
///
/// [`SolveError::EmptyBatch`] for an empty batch; the first solver error
/// otherwise (in submission order).
pub fn run_batch(jobs: &[BatchJob], options: &BatchOptions) -> Result<BatchReport, SolveError> {
    if jobs.is_empty() {
        return Err(SolveError::EmptyBatch);
    }
    let shared = options.cancel_on_target.then(CancelToken::new);
    let results: Vec<Result<SolveReport, SolveError>> =
        sophie_linalg::par::parallel_map(jobs.len(), |i| {
            let entry = &jobs[i];
            match &shared {
                Some(token) => {
                    let mut job = entry.job.clone();
                    job.cancel = Some(token.clone());
                    entry.solver.solve(&job, &mut CancelOnTarget { token })
                }
                None => entry.solver.solve(&entry.job, &mut NullObserver),
            }
        });
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r?);
    }
    Ok(BatchReport::from_reports(reports))
}

/// Convenience wrapper: runs `seeds` jobs (seeds `0..seeds`) of one solver
/// on one graph with a common target and no budget.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_seeds(
    solver: &Arc<dyn Solver>,
    graph: &Arc<sophie_graph::Graph>,
    seeds: usize,
    target: Option<f64>,
) -> Result<BatchReport, SolveError> {
    let jobs: Vec<BatchJob> = (0..seeds as u64)
        .map(|seed| {
            BatchJob::new(
                Arc::clone(solver),
                SolveJob::new(Arc::clone(graph), seed).with_target(target),
            )
        })
        .collect();
    run_batch(&jobs, &BatchOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBudget;
    use crate::solver::Capabilities;
    use sophie_graph::generate::{complete, WeightDist};
    use sophie_graph::Graph;

    /// Toy deterministic solver: cut grows by one per iteration from the
    /// seed, honoring budget caps and cooperative stops.
    struct Ramp {
        iterations: usize,
    }

    impl Solver for Ramp {
        fn name(&self) -> &'static str {
            "ramp"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::default()
        }
        fn solve(
            &self,
            job: &SolveJob,
            observer: &mut dyn SolveObserver,
        ) -> Result<SolveReport, SolveError> {
            let control = job.control();
            let planned = job.budget.cap(self.iterations);
            let mut recorder = crate::observe::TraceRecorder::new();
            let mut tee = crate::observe::Tee::new(&mut recorder, observer);
            let obs: &mut dyn SolveObserver = &mut tee;
            obs.on_event(&SolveEvent::RunStarted {
                solver: "ramp",
                dimension: job.graph.num_nodes(),
                planned_iterations: planned,
                seed: job.seed,
                target: job.target,
            });
            let mut cut = job.seed as f64;
            obs.on_event(&SolveEvent::GlobalSync {
                round: 0,
                cut,
                activity: 0,
                ops_delta: OpCounts::default(),
            });
            let mut hit = false;
            let mut executed = 0;
            for round in 1..=planned {
                if control.should_stop() {
                    break;
                }
                executed = round;
                cut += 1.0;
                obs.on_event(&SolveEvent::GlobalSync {
                    round,
                    cut,
                    activity: 1,
                    ops_delta: OpCounts::default(),
                });
                if !hit && job.target.is_some_and(|t| cut >= t) {
                    hit = true;
                    obs.on_event(&SolveEvent::TargetReached { round, cut });
                }
            }
            obs.on_event(&SolveEvent::RunFinished {
                best_cut: cut,
                best_round: executed,
                rounds_run: executed,
                ops: OpCounts::default(),
            });
            Ok(recorder.into_report())
        }
    }

    fn graph() -> Arc<Graph> {
        Arc::new(complete(6, WeightDist::Unit, 0).unwrap())
    }

    #[test]
    fn batch_reports_come_back_in_submission_order() {
        let solver: Arc<dyn Solver> = Arc::new(Ramp { iterations: 4 });
        let out = run_seeds(&solver, &graph(), 5, None).unwrap();
        assert_eq!(out.reports.len(), 5);
        for (seed, r) in out.reports.iter().enumerate() {
            assert_eq!(r.seed, seed as u64);
            assert_eq!(r.best_cut, seed as f64 + 4.0);
            assert_eq!(r.iterations_run, 4);
        }
        assert_eq!(out.best_cut, 8.0);
        assert_eq!(out.mean_cut, 6.0);
        assert_eq!(out.converged, 0);
    }

    #[test]
    fn heterogeneous_batches_aggregate_targets() {
        let fast: Arc<dyn Solver> = Arc::new(Ramp { iterations: 10 });
        let slow: Arc<dyn Solver> = Arc::new(Ramp { iterations: 2 });
        let g = graph();
        let jobs = vec![
            BatchJob::new(
                fast,
                SolveJob::new(Arc::clone(&g), 0).with_target(Some(5.0)),
            ),
            BatchJob::new(slow, SolveJob::new(g, 0).with_target(Some(5.0))),
        ];
        let out = run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert_eq!(out.converged, 1);
        assert_eq!(out.convergence_rate(), 0.5);
        assert_eq!(out.reports[0].iterations_to_target, Some(5));
        assert_eq!(out.reports[1].iterations_to_target, None);
        assert_eq!(out.iters_to_target_quantile(1.0, 10).unwrap(), 10);
        assert_eq!(out.iters_to_target_quantile(0.0, 10).unwrap(), 5);
    }

    #[test]
    fn per_solver_aggregates_sort_by_name_not_submission_order() {
        // Regression test: listings derived from heterogeneous batches must
        // not depend on the order jobs were submitted (or completed) in.
        let mk = |solver: &str, best_cut: f64, converged: bool| SolveReport {
            solver: solver.to_string(),
            best_cut,
            iterations_to_target: converged.then_some(1),
            ..SolveReport::default()
        };
        let batch = BatchReport::from_reports(vec![
            mk("sb", 10.0, false),
            mk("sa", 4.0, true),
            mk("sophie", 20.0, true),
            mk("sa", 6.0, false),
        ]);
        let agg = batch.per_solver();
        let names: Vec<&str> = agg.iter().map(|a| a.solver.as_str()).collect();
        assert_eq!(names, vec!["sa", "sb", "sophie"]);
        assert_eq!(agg[0].jobs, 2);
        assert_eq!(agg[0].mean_cut, 5.0);
        assert_eq!(agg[0].best_cut, 6.0);
        assert_eq!(agg[0].converged, 1);
        assert_eq!(agg[2].jobs, 1);
        // Reversed submission order produces the identical aggregate list.
        let reversed = BatchReport::from_reports(vec![
            mk("sa", 6.0, false),
            mk("sophie", 20.0, true),
            mk("sa", 4.0, true),
            mk("sb", 10.0, false),
        ]);
        assert_eq!(reversed.per_solver(), agg);
    }

    #[test]
    fn empty_batches_are_rejected() {
        assert!(matches!(
            run_batch(&[], &BatchOptions::default()),
            Err(SolveError::EmptyBatch)
        ));
    }

    #[test]
    fn iteration_budgets_truncate_deterministically() {
        let solver: Arc<dyn Solver> = Arc::new(Ramp { iterations: 100 });
        let job = SolveJob::new(graph(), 3).with_budget(JobBudget {
            max_iterations: Some(7),
            time_limit: None,
        });
        let out = run_batch(&[BatchJob::new(solver, job)], &BatchOptions::default()).unwrap();
        assert_eq!(out.reports[0].iterations_run, 7);
        assert_eq!(out.reports[0].best_cut, 10.0);
    }

    #[test]
    fn cancel_on_target_stops_siblings_eventually() {
        // Seed 10 hits the easy target immediately; the sibling with a huge
        // iteration count must stop early instead of running all 200_000
        // iterations. (Where it stops is timing-dependent; that it stops
        // and still reports is not.)
        let solver: Arc<dyn Solver> = Arc::new(Ramp {
            iterations: 200_000,
        });
        let g = graph();
        let jobs = vec![
            BatchJob::new(
                Arc::clone(&solver),
                SolveJob::new(Arc::clone(&g), 10).with_target(Some(11.0)),
            ),
            BatchJob::new(solver, SolveJob::new(g, 0).with_target(Some(1e12))),
        ];
        let out = run_batch(
            &jobs,
            &BatchOptions {
                cancel_on_target: true,
            },
        )
        .unwrap();
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.reports[0].iterations_to_target, Some(1));
        assert!(out.converged >= 1);
    }
}
