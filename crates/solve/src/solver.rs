//! The solver-agnostic run interface.

use crate::error::SolveError;
use crate::job::SolveJob;
use crate::observe::SolveObserver;
use crate::report::SolveReport;

/// What a solver implementation can do, for dispatch and display.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Capabilities {
    /// Executes on the tiled engine (emits `RoundStarted`/`PairIterated`).
    pub tiled: bool,
    /// Tallies hardware operation counts (non-zero `OpCounts`) that the
    /// power/performance models can consume.
    pub op_model: bool,
    /// Simulates device faults and can emit the fault/recovery events.
    pub fault_model: bool,
}

/// A max-cut solver runnable through the shared job/observer interface.
///
/// Implementations exist for every solver in the workspace: the SOPHIE
/// engine on the ideal and OPCM backends (`sophie-core` / `sophie-hw`),
/// the PRIS reference sampler (`sophie-pris`), and the SA/SB/PT/BLS
/// baselines (`sophie-baselines`). The `sophie` facade crate builds a
/// [`SolverRegistry`](crate::SolverRegistry) with all of them.
///
/// # Contract
///
/// * `solve` emits the full event stream documented at the crate level to
///   `observer` — byte-identical to the solver's legacy `*_observed`
///   entry point for the same (graph, seed, target) — and returns the
///   [`SolveReport`] distilled from that same stream.
/// * The job's `seed` replaces any seed in the solver's configuration, and
///   `budget.max_iterations` caps the configured iteration count.
/// * Implementations poll the job's [`RunControl`](crate::RunControl) at
///   iteration granularity and wind down early (still emitting
///   `RunFinished`) when it requests a stop.
/// * Implementations are `Send + Sync` so one instance can serve many
///   scheduler jobs concurrently; per-job state lives on the stack.
pub trait Solver: Send + Sync {
    /// Short stable identifier (`"sophie"`, `"pris"`, `"sa"`, …), matching
    /// the `solver` field of the `RunStarted` events it emits.
    fn name(&self) -> &'static str;

    /// What this implementation can do.
    fn capabilities(&self) -> Capabilities;

    /// Runs one job, streaming events to `observer`.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadJob`] for jobs incompatible with the instance,
    /// [`SolveError::BadConfig`] / [`SolveError::Failed`] for
    /// configuration or execution failures.
    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError>;
}
