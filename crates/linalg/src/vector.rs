//! Small dense-vector helpers shared by the solvers and simulators.
//!
//! These are free functions over slices rather than a vector newtype: the
//! callers in `sophie-core` and `sophie-hw` own their buffers (SRAM models,
//! spin copies) and only need the arithmetic.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(sophie_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Lane count for the unrolled `f32` reduction kernels below. Eight `f32`
/// lanes fill one AVX2 register (or two NEON registers), which is what the
/// autovectorizer targets on the platforms we care about.
const LANES: usize = 8;

/// Dot product in `f32`, used on the tiled fast path.
///
/// A single-accumulator reduction cannot be autovectorized under strict
/// float semantics (the additions form a sequential dependency chain), so
/// this kernel keeps `LANES` (8) independent partial sums over
/// `chunks_exact` blocks and tree-reduces them at the end. The summation
/// order differs from the naive loop but is fixed, so results stay
/// bit-reproducible run to run.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32: length mismatch");
    let split = a.len() - (a.len() % LANES);
    let (a_main, a_tail) = a.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    let mut acc = [0.0_f32; LANES];
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for (l, s) in acc.iter_mut().enumerate() {
            *s += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0_f32;
    for (x, y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// Sum of all entries in `f32`, with the same lane-split reduction (and
/// therefore the same fixed summation order) as [`dot_f32`].
#[must_use]
pub fn sum_f32(a: &[f32]) -> f32 {
    let split = a.len() - (a.len() % LANES);
    let (main, rest) = a.split_at(split);
    let mut acc = [0.0_f32; LANES];
    for chunk in main.chunks_exact(LANES) {
        for (l, s) in acc.iter_mut().enumerate() {
            *s += chunk[l];
        }
    }
    let mut tail = 0.0_f32;
    for &x in rest {
        tail += x;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// `y += alpha * x` in `f32` (BLAS `saxpy`). Elementwise with no
/// cross-iteration dependency, so the plain loop vectorizes as-is; the
/// single definition lives in [`crate::kernel::scalar::seq_axpy`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy_f32: length mismatch");
    crate::kernel::scalar::seq_axpy(alpha, x, y);
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
///
/// ```
/// assert_eq!(sophie_linalg::vector::norm2(&[3.0, 4.0]), 5.0);
/// ```
#[must_use]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Largest absolute entry; `0.0` for an empty slice.
#[must_use]
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Sum of all entries.
#[must_use]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Largest absolute difference between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Scales every entry in place.
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a {
        *x *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn norm2_matches_pythagoras() {
        assert!((norm2(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_handles_negatives_and_empty() {
        assert_eq!(max_abs(&[-7.0, 3.0]), 7.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_is_symmetric() {
        let a = [1.0, 5.0, -2.0];
        let b = [0.5, 7.0, -2.0];
        assert_eq!(max_abs_diff(&a, &b), max_abs_diff(&b, &a));
        assert_eq!(max_abs_diff(&a, &b), 2.0);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut a = vec![3.0, -4.0];
        scale(&mut a, 0.0);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn sum_adds_entries() {
        assert_eq!(sum(&[1.0, 2.0, 3.5]), 6.5);
    }

    #[test]
    fn dot_f32_matches_f64_reference_across_split_boundaries() {
        // Exercise lengths around the 8-lane split: empty, sub-lane, exact
        // multiples, and ragged tails.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25 - 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| 1.5 - (i as f32) * 0.125).collect();
            let want: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum();
            assert!((f64::from(dot_f32(&a, &b)) - want).abs() < 1e-3, "n = {n}");
        }
    }

    #[test]
    fn sum_f32_matches_f64_reference_across_split_boundaries() {
        for n in [0usize, 1, 5, 8, 13, 16, 31, 200] {
            let a: Vec<f32> = (0..n).map(|i| ((i % 11) as f32) - 5.0).collect();
            let want: f64 = a.iter().map(|&x| f64::from(x)).sum();
            assert!((f64::from(sum_f32(&a)) - want).abs() < 1e-4, "n = {n}");
        }
    }

    #[test]
    fn axpy_f32_accumulates() {
        let mut y = vec![1.0_f32; 11];
        let x: Vec<f32> = (0..11).map(|i| i as f32).collect();
        axpy_f32(0.5, &x, &mut y);
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, 1.0 + 0.5 * i as f32);
        }
    }

    #[test]
    fn dot_f32_matches_f64_for_small_inputs() {
        let a = [0.5_f32, 1.5, -2.0];
        let b = [2.0_f32, 4.0, 1.0];
        let want = dot(
            &a.iter().map(|&x| f64::from(x)).collect::<Vec<_>>(),
            &b.iter().map(|&x| f64::from(x)).collect::<Vec<_>>(),
        );
        assert!((f64::from(dot_f32(&a, &b)) - want).abs() < 1e-6);
    }
}
