//! Small dense-vector helpers shared by the solvers and simulators.
//!
//! These are free functions over slices rather than a vector newtype: the
//! callers in `sophie-core` and `sophie-hw` own their buffers (SRAM models,
//! spin copies) and only need the arithmetic.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(sophie_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product in `f32`, used on the tiled fast path.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
///
/// ```
/// assert_eq!(sophie_linalg::vector::norm2(&[3.0, 4.0]), 5.0);
/// ```
#[must_use]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Largest absolute entry; `0.0` for an empty slice.
#[must_use]
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Sum of all entries.
#[must_use]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Largest absolute difference between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Scales every entry in place.
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a {
        *x *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn norm2_matches_pythagoras() {
        assert!((norm2(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_handles_negatives_and_empty() {
        assert_eq!(max_abs(&[-7.0, 3.0]), 7.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_is_symmetric() {
        let a = [1.0, 5.0, -2.0];
        let b = [0.5, 7.0, -2.0];
        assert_eq!(max_abs_diff(&a, &b), max_abs_diff(&b, &a));
        assert_eq!(max_abs_diff(&a, &b), 2.0);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut a = vec![3.0, -4.0];
        scale(&mut a, 0.0);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn sum_adds_entries() {
        assert_eq!(sum(&[1.0, 2.0, 3.5]), 6.5);
    }

    #[test]
    fn dot_f32_matches_f64_for_small_inputs() {
        let a = [0.5_f32, 1.5, -2.0];
        let b = [2.0_f32, 4.0, 1.0];
        let want = dot(
            &a.iter().map(|&x| f64::from(x)).collect::<Vec<_>>(),
            &b.iter().map(|&x| f64::from(x)).collect::<Vec<_>>(),
        );
        assert!((f64::from(dot_f32(&a, &b)) - want).abs() < 1e-6);
    }
}
