//! Dense linear-algebra substrate for the SOPHIE Ising machine.
//!
//! The SOPHIE paper (MICRO 2024) preprocesses every Ising coupling matrix
//! with an *eigenvalue dropout* step (`C = U Sq_α(D) Uᵀ`) and then executes
//! the recurrent algorithm over fixed-size matrix tiles mapped onto OPCM
//! arrays. This crate provides exactly those building blocks, implemented
//! from scratch:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with (row-parallel)
//!   products and symmetry utilities;
//! * [`eigen`] — a Householder + implicit-QL symmetric eigensolver, plus an
//!   independent Jacobi solver for cross-validation;
//! * [`tile`] — the tiling model ([`tile::TileGrid`], zero-padded
//!   [`tile::Tile`]s in `f32`, and symmetric tile-pair enumeration that
//!   underpins the paper's ≈2× OPCM area saving);
//! * [`sparse`] — CSR weight storage ([`sparse::SparseCsr`]) whose kernels
//!   are bit-identical to the dense tile kernels, the substrate of the
//!   engine's delta-driven sparse compute strategy;
//! * [`kernel`] — the tile-MVM kernel component stack: a scalar reference
//!   kernel, cache-blocked register-blocking variants, a fused
//!   symmetric-pair kernel, a host autotuner, and the [`KernelPlan`]
//!   dispatch layer everything above this crate calls through — every
//!   variant bit-identical to the reference;
//! * [`vector`] / [`par`] — slice kernels and the persistent-worker-pool
//!   parallel helpers shared by the simulators.
//!
//! # Example
//!
//! ```
//! use sophie_linalg::{Matrix, eigen::symmetric_eigen};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Decompose a small coupling matrix and rebuild it from its spectrum.
//! let k = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]])?;
//! let eig = symmetric_eigen(&k)?;
//! assert!(eig.reconstruct().max_abs_diff(&k) < 1e-10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Unsafe is denied crate-wide and re-allowed only inside `par`, which needs
// two narrow idioms for its persistent worker pool (closure lifetime
// erasure and disjoint-region pointer sharing); every block there carries a
// SAFETY comment. All other modules remain unsafe-free.
#![deny(unsafe_code)]

pub mod eigen;
mod error;
pub mod kernel;
mod matrix;
pub mod par;
pub mod sparse;
pub mod tile;
pub mod vector;

pub use error::{LinalgError, Result};
pub use kernel::{KernelChoice, KernelPlan, KernelVariant, PairKernel};
pub use matrix::Matrix;
pub use sparse::SparseCsr;
pub use tile::{Tile, TileGrid, TileIndex, TilePair, TiledMatrix};
