//! Dense row-major `f64` matrices.
//!
//! This is the working representation for coupling matrices `K`, the
//! transformation matrix `C` produced by eigenvalue dropout, and the
//! orthogonal factors of the symmetric eigendecomposition. Sizes in SOPHIE's
//! functional simulation stay below a few thousand, so a flat `Vec<f64>` with
//! straightforward kernels (plus row-chunk parallelism for the O(n³) ones)
//! is the right tool.

use crate::error::{LinalgError, Result};
use crate::par;

/// A dense row-major matrix of `f64`.
///
/// ```
/// use sophie_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row list and
    /// [`LinalgError::DimensionMismatch`] if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let first = rows.first().ok_or(LinalgError::Empty)?;
        let cols = first.len();
        if cols == 0 {
            return Err(LinalgError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (r, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: (rows.len(), cols),
                    found: (r, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index {c} out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Views the whole matrix as a flat row-major slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    #[must_use]
    pub fn transposed(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = crate::vector::dot(self.row(r), x);
        }
        y
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    #[must_use]
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transposed: length mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            crate::vector::axpy(xr, self.row(r), &mut y);
        }
        y
    }

    /// Matrix product `A B`, parallelized over output rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, rhs.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let workers = par::worker_count(self.rows);
        par::for_each_row_chunk_mut(&mut out.data, n, workers, |row0, chunk| {
            for (local_r, out_row) in chunk.chunks_mut(n).enumerate() {
                let r = row0 + local_r;
                // ikj ordering: stream rhs rows through the output row.
                for (k, &a_rk) in self.row(r).iter().enumerate() {
                    if a_rk != 0.0 {
                        let rhs_row = rhs.row(k);
                        for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                            *o += a_rk * b;
                        }
                    }
                }
            }
        });
        Ok(out)
    }

    /// Symmetric rank-k style product `B Bᵀ` where `B = self`, exploiting
    /// symmetry of the result and parallelizing over rows.
    ///
    /// Used to reconstruct `C = U f(D) Uᵀ = (U √f)(U √f)ᵀ` when the spectral
    /// function `f` is non-negative, which halves the flop count compared to
    /// two general products.
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        let workers = par::worker_count(n);
        par::for_each_row_chunk_mut(&mut out.data, n, workers, |row0, chunk| {
            for (local_r, out_row) in chunk.chunks_mut(n).enumerate() {
                let r = row0 + local_r;
                let br = self.row(r);
                // Compute the upper triangle r..n; the mirror is filled below.
                for (c, out_rc) in out_row.iter_mut().enumerate().skip(r) {
                    *out_rc = crate::vector::dot(br, self.row(c));
                }
            }
        });
        // Mirror the upper triangle into the lower triangle.
        for r in 1..n {
            for c in 0..r {
                out[(r, c)] = out[(c, r)];
            }
        }
        out
    }

    /// Largest absolute difference `max |a_ij - a_ji|` over all pairs.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn max_asymmetry(&self) -> f64 {
        assert!(self.is_square(), "max_asymmetry requires a square matrix");
        let mut m = 0.0_f64;
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                m = m.max((self[(r, c)] - self[(c, r)]).abs());
            }
        }
        m
    }

    /// True if the matrix is square and symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.max_asymmetry() <= tol
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        crate::vector::max_abs(&self.data)
    }

    /// Largest absolute elementwise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff: shape mismatch"
        );
        crate::vector::max_abs_diff(&self.data, &other.data)
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        crate::vector::scale(&mut self.data, alpha);
    }

    /// Sum of each row, i.e. `A · 1`. This is the thresholds' building block
    /// (`θ_i = ½ Σ_j C_ij` in PRIS).
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| crate::vector::sum(self.row(r)))
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn identity_matvec_is_identity_map() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = sample();
        let x = vec![2.0, -1.0];
        assert_eq!(m.matvec_transposed(&x), m.transposed().matvec(&x));
    }

    #[test]
    fn matmul_matches_known_product() {
        let a = sample();
        let b = a.transposed();
        let p = a.matmul(&b).unwrap();
        // [1 2 3; 4 5 6] * its transpose
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
        assert!(p.is_symmetric(0.0));
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn gram_equals_matmul_with_transpose() {
        let a = Matrix::from_fn(17, 9, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
        // gram expects square rows-of-B usage; build square-ish case.
        let g = a.gram();
        let expect = a.matmul(&a.transposed()).unwrap();
        assert!(g.max_abs_diff(&expect) < 1e-9);
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn symmetry_checks() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.5, 3.0]]).unwrap();
        assert!(!a.is_symmetric(0.1));
        assert!((a.max_asymmetry() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn row_sums_match_matvec_of_ones() {
        let m = sample();
        assert_eq!(m.row_sums(), m.matvec(&[1.0, 1.0, 1.0]));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", sample()).is_empty());
    }

    #[test]
    fn scale_doubles_entries() {
        let mut m = sample();
        m.scale(2.0);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn col_extracts_column() {
        let m = sample();
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn matmul_large_parallel_path_is_correct() {
        // Big enough to split across several worker threads.
        let a = Matrix::from_fn(97, 53, |r, c| ((r + 2 * c) % 7) as f64 - 3.0);
        let b = Matrix::from_fn(53, 61, |r, c| ((3 * r + c) % 5) as f64 - 2.0);
        let p = a.matmul(&b).unwrap();
        // Spot-check a few entries against a naive implementation.
        for &(r, c) in &[(0, 0), (96, 60), (50, 13), (7, 44)] {
            let mut want = 0.0;
            for k in 0..53 {
                want += a[(r, k)] * b[(k, c)];
            }
            assert!((p[(r, c)] - want).abs() < 1e-9, "mismatch at ({r},{c})");
        }
    }
}
