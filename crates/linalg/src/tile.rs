//! Matrix tiling for SOPHIE's blocked execution model.
//!
//! The accelerator decomposes the `n × n` transformation matrix into square
//! tiles of a fixed size (64 in the paper's optimal configuration). A
//! [`TileGrid`] describes that decomposition, [`Tile`] stores a single
//! (zero-padded) block in `f32` — mirroring the reduced-precision OPCM cells —
//! and [`TiledMatrix`] stores all blocks for reference computations.

use crate::error::{LinalgError, Result};
use crate::Matrix;

/// Describes the tiling of an `n × n` matrix into `tile`-sized square blocks.
///
/// The final block row/column is zero-padded, so every tile has the same
/// physical shape, matching the fixed-size OPCM arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileGrid {
    n: usize,
    tile: usize,
}

/// Identifies one logical tile by block row and block column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileIndex {
    /// Block-row index.
    pub row: usize,
    /// Block-column index.
    pub col: usize,
}

impl TileIndex {
    /// The index of the symmetric partner tile (transposed position).
    #[must_use]
    pub fn transposed(self) -> TileIndex {
        TileIndex {
            row: self.col,
            col: self.row,
        }
    }

    /// True for tiles on the main block diagonal (their own partner).
    #[must_use]
    pub fn is_diagonal(self) -> bool {
        self.row == self.col
    }
}

/// A symmetric pair of logical tiles sharing one physical OPCM array
/// (paper §III-D, symmetric tile mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TilePair {
    /// A diagonal tile, which is its own transpose.
    Diagonal(usize),
    /// An off-diagonal pair `{(row, col), (col, row)}` with `row < col`.
    OffDiagonal {
        /// Block-row of the upper-triangular member (`row < col`).
        row: usize,
        /// Block-column of the upper-triangular member.
        col: usize,
    },
}

impl TilePair {
    /// The canonical (upper-triangular or diagonal) tile of the pair.
    #[must_use]
    pub fn primary(self) -> TileIndex {
        match self {
            TilePair::Diagonal(b) => TileIndex { row: b, col: b },
            TilePair::OffDiagonal { row, col } => TileIndex { row, col },
        }
    }

    /// Both logical tiles covered by this pair (one entry for diagonals).
    #[must_use]
    pub fn members(self) -> Vec<TileIndex> {
        match self {
            TilePair::Diagonal(b) => vec![TileIndex { row: b, col: b }],
            TilePair::OffDiagonal { row, col } => {
                vec![TileIndex { row, col }, TileIndex { row: col, col: row }]
            }
        }
    }

    /// Number of logical tiles covered (1 for diagonal, 2 otherwise).
    #[must_use]
    pub fn logical_tiles(self) -> usize {
        match self {
            TilePair::Diagonal(_) => 1,
            TilePair::OffDiagonal { .. } => 2,
        }
    }
}

impl TileGrid {
    /// Creates a grid for an `n × n` matrix with `tile`-sized blocks.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `n == 0` or `tile == 0`.
    pub fn new(n: usize, tile: usize) -> Result<Self> {
        if n == 0 || tile == 0 {
            return Err(LinalgError::Empty);
        }
        Ok(TileGrid { n, tile })
    }

    /// Matrix dimension being tiled.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile edge length.
    #[must_use]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of block rows (= block columns).
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.n.div_ceil(self.tile)
    }

    /// Dimension after zero padding to a whole number of tiles.
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.blocks() * self.tile
    }

    /// Half-open index range `[start, end)` covered by block `b`, clamped to
    /// the true (unpadded) dimension.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.blocks()`.
    #[must_use]
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        assert!(b < self.blocks(), "block index {b} out of bounds");
        let start = b * self.tile;
        start..((start + self.tile).min(self.n))
    }

    /// Number of valid (unpadded) rows in block `b`.
    #[must_use]
    pub fn block_len(&self, b: usize) -> usize {
        self.range(b).len()
    }

    /// Total count of logical tiles (`blocks²`).
    #[must_use]
    pub fn logical_tiles(&self) -> usize {
        self.blocks() * self.blocks()
    }

    /// Enumerates the symmetric pairs: all diagonal tiles plus each
    /// unordered off-diagonal pair once. Their count is
    /// `blocks · (blocks + 1) / 2`, which is also the number of physical
    /// OPCM arrays required — roughly half of [`Self::logical_tiles`]
    /// (the paper's ≈2× area saving).
    #[must_use]
    pub fn symmetric_pairs(&self) -> Vec<TilePair> {
        let b = self.blocks();
        let mut out = Vec::with_capacity(b * (b + 1) / 2);
        for r in 0..b {
            out.push(TilePair::Diagonal(r));
            for c in (r + 1)..b {
                out.push(TilePair::OffDiagonal { row: r, col: c });
            }
        }
        out
    }
}

/// One zero-padded square tile stored in `f32`.
///
/// `f32` matches the compute substrate: OPCM cells hold only a handful of
/// bits, so double precision would misrepresent the hardware and waste
/// memory bandwidth in the functional simulator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tile {
    size: usize,
    data: Vec<f32>,
    /// Column-major mirror of `data` (the transpose, row-major). Both MVM
    /// directions read their operand with unit stride: `mvm` sweeps the
    /// columns stored here, `mvm_transposed` sweeps the rows of `data`.
    data_t: Vec<f32>,
    /// Live `(rows, cols)` extent for zero-padded fringe tiles — `None`
    /// means the whole tile is live. Kernels trim their sweeps to this
    /// extent; because padded rows/columns are exactly zero, trimming is
    /// bitwise invisible (padded outputs are `+0.0` either way) and only
    /// saves the fringe's wasted kernel work. Normalized: a full extent
    /// is always stored as `None` so trim state never affects equality.
    #[cfg_attr(feature = "serde", serde(default))]
    used: Option<(usize, usize)>,
}

impl Tile {
    /// Extracts block `(idx.row, idx.col)` of `m` under `grid`, zero-padding
    /// the fringe.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not `grid.n() × grid.n()` or the index is out of
    /// bounds.
    #[must_use]
    pub fn from_matrix(m: &Matrix, grid: &TileGrid, idx: TileIndex) -> Self {
        assert_eq!(m.rows(), grid.n(), "matrix/grid mismatch");
        assert_eq!(m.cols(), grid.n(), "matrix/grid mismatch");
        let t = grid.tile();
        let rows = grid.range(idx.row);
        let cols = grid.range(idx.col);
        let mut data = vec![0.0_f32; t * t];
        for (local_r, r) in rows.clone().enumerate() {
            let src = &m.row(r)[cols.clone()];
            let dst = &mut data[local_r * t..local_r * t + src.len()];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s as f32;
            }
        }
        let data_t = transpose_flat(t, &data);
        let mut tile = Tile {
            size: t,
            data,
            data_t,
            used: None,
        };
        tile.set_used(rows.len(), cols.len());
        tile
    }

    /// Builds a tile directly from a flat row-major `f32` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != size²`.
    pub fn from_vec(size: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != size * size {
            return Err(LinalgError::DimensionMismatch {
                expected: (size, size),
                found: (data.len(), 1),
            });
        }
        let data_t = transpose_flat(size, &data);
        Ok(Tile {
            size,
            data,
            data_t,
            used: None,
        })
    }

    /// Tile edge length.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Flat row-major contents.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat row-major contents of the transposed mirror (column-major view
    /// of the tile) — the k-major operand of the forward kernel sweep.
    #[must_use]
    pub fn data_t_slice(&self) -> &[f32] {
        &self.data_t
    }

    /// Live row count (rows beyond this are all-zero padding).
    #[must_use]
    pub fn rows_used(&self) -> usize {
        self.used.map_or(self.size, |(r, _)| r)
    }

    /// Live column count (columns beyond this are all-zero padding).
    #[must_use]
    pub fn cols_used(&self) -> usize {
        self.used.map_or(self.size, |(_, c)| c)
    }

    /// Declares the live `(rows, cols)` extent; everything outside it must
    /// already be zero. A full extent normalizes to "untrimmed" so trim
    /// state never makes otherwise-equal tiles compare unequal.
    ///
    /// # Panics
    ///
    /// Panics if either extent exceeds the tile size.
    pub fn set_used(&mut self, rows: usize, cols: usize) {
        assert!(
            rows <= self.size && cols <= self.size,
            "set_used: extent exceeds tile size"
        );
        self.used = if rows == self.size && cols == self.size {
            None
        } else {
            Some((rows, cols))
        };
    }

    /// Column `c` as a contiguous slice (read from the transposed mirror).
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.size()`.
    #[must_use]
    pub fn col_slice(&self, c: usize) -> &[f32] {
        assert!(c < self.size, "col_slice: column {c} out of bounds");
        &self.data_t[c * self.size..(c + 1) * self.size]
    }

    /// `y = T · x` (length `size` each).
    ///
    /// Implemented as a unit-stride column sweep over the transposed
    /// mirror (`y += x[c] · T[:,c]` for ascending `c`, skipping zero
    /// inputs), the same shape as [`Self::mvm_transposed`] — the row-dot
    /// form cannot be autovectorized under strict float semantics, which
    /// made the forward read ~3× slower than the transposed one.
    ///
    /// The accumulation contract both kernels share: every `y[i]` is a
    /// sequential sum of `T[i,c]·x[c]` in ascending `c` starting from
    /// `+0.0`, and terms that are exact zeros (zero weight or zero input)
    /// never change the accumulated bits — `+0.0 + ±0.0 == +0.0` and the
    /// accumulator can never become `-0.0`. Sparse kernels
    /// ([`crate::sparse::SparseCsr`]) rely on this to skip zero weights
    /// while staying bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mvm(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.size, "mvm: input length mismatch");
        assert_eq!(y.len(), self.size, "mvm: output length mismatch");
        // Spin inputs are 0/1-sparse, so the zero-skipping axpy sweep is a
        // sensible default for direct callers; hot paths pick faster
        // variants through a [`crate::kernel::KernelPlan`].
        crate::kernel::scalar::axpy_sweep(
            &self.data_t,
            self.size,
            self.cols_used(),
            self.rows_used(),
            x,
            y,
        );
    }

    /// `y = Tᵀ · x`, i.e. the same stored array read in the other optical
    /// direction (paper Eq. 8/9, bidirectional OPCM array).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mvm_transposed(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.size, "mvm_transposed: input length mismatch");
        assert_eq!(y.len(), self.size, "mvm_transposed: output length mismatch");
        crate::kernel::scalar::axpy_sweep(
            &self.data,
            self.size,
            self.rows_used(),
            self.cols_used(),
            x,
            y,
        );
    }

    /// Sum of each row (used for thresholds).
    #[must_use]
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.size)
            .map(|r| crate::vector::sum_f32(&self.data[r * self.size..(r + 1) * self.size]))
            .collect()
    }

    /// Sum of each column (row sums of the transposed tile).
    #[must_use]
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0_f32; self.size];
        for r in 0..self.size {
            let row = &self.data[r * self.size..(r + 1) * self.size];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }
}

/// Row-major transpose of a flat `size × size` buffer.
fn transpose_flat(size: usize, data: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0_f32; size * size];
    for r in 0..size {
        for c in 0..size {
            out[c * size + r] = data[r * size + c];
        }
    }
    out
}

/// All tiles of a matrix, for reference/validation computations.
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    grid: TileGrid,
    tiles: Vec<Tile>,
}

impl TiledMatrix {
    /// Tiles the whole matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `m` is rectangular, or an error
    /// from [`TileGrid::new`].
    pub fn new(m: &Matrix, tile: usize) -> Result<Self> {
        if !m.is_square() {
            return Err(LinalgError::NotSquare {
                rows: m.rows(),
                cols: m.cols(),
            });
        }
        let grid = TileGrid::new(m.rows(), tile)?;
        let b = grid.blocks();
        let mut tiles = Vec::with_capacity(b * b);
        for r in 0..b {
            for c in 0..b {
                tiles.push(Tile::from_matrix(m, &grid, TileIndex { row: r, col: c }));
            }
        }
        Ok(TiledMatrix { grid, tiles })
    }

    /// The tiling descriptor.
    #[must_use]
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Borrows the tile at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn tile(&self, idx: TileIndex) -> &Tile {
        let b = self.grid.blocks();
        assert!(idx.row < b && idx.col < b, "tile index out of bounds");
        &self.tiles[idx.row * b + idx.col]
    }

    /// Full matrix-vector product computed tile-by-tile on the padded
    /// vector; used to validate tiled execution against [`Matrix::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != grid.n()`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.grid.n(), "matvec: length mismatch");
        let t = self.grid.tile();
        let b = self.grid.blocks();
        let mut xpad = vec![0.0_f32; self.grid.padded_len()];
        for (i, &v) in x.iter().enumerate() {
            xpad[i] = v as f32;
        }
        let mut ypad = vec![0.0_f64; self.grid.padded_len()];
        let mut ytile = vec![0.0_f32; t];
        for br in 0..b {
            for bc in 0..b {
                let tile = self.tile(TileIndex { row: br, col: bc });
                tile.mvm(&xpad[bc * t..(bc + 1) * t], &mut ytile);
                for (acc, &v) in ypad[br * t..(br + 1) * t].iter_mut().zip(&ytile) {
                    *acc += f64::from(v);
                }
            }
        }
        ypad.truncate(self.grid.n());
        ypad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let g = TileGrid::new(130, 64).unwrap();
        assert_eq!(g.blocks(), 3);
        assert_eq!(g.padded_len(), 192);
        assert_eq!(g.range(0), 0..64);
        assert_eq!(g.range(2), 128..130);
        assert_eq!(g.block_len(2), 2);
    }

    #[test]
    fn grid_rejects_zero() {
        assert!(TileGrid::new(0, 4).is_err());
        assert!(TileGrid::new(4, 0).is_err());
    }

    #[test]
    fn exact_division_has_no_padding() {
        let g = TileGrid::new(128, 64).unwrap();
        assert_eq!(g.blocks(), 2);
        assert_eq!(g.padded_len(), 128);
    }

    #[test]
    fn symmetric_pair_count_is_triangular_number() {
        let g = TileGrid::new(256, 64).unwrap(); // 4 blocks
        let pairs = g.symmetric_pairs();
        assert_eq!(pairs.len(), 4 * 5 / 2);
        let diag = pairs
            .iter()
            .filter(|p| matches!(p, TilePair::Diagonal(_)))
            .count();
        assert_eq!(diag, 4);
        // Physical arrays ≈ half the logical tiles (the paper's area claim).
        assert_eq!(g.logical_tiles(), 16);
        assert!(pairs.len() * 2 >= g.logical_tiles());
        assert!(pairs.len() <= g.logical_tiles() / 2 + g.blocks());
    }

    #[test]
    fn pair_members_cover_every_logical_tile_once() {
        let g = TileGrid::new(192, 64).unwrap();
        let mut seen = std::collections::HashSet::new();
        for p in g.symmetric_pairs() {
            for m in p.members() {
                assert!(seen.insert((m.row, m.col)), "duplicate {m:?}");
            }
        }
        assert_eq!(seen.len(), g.logical_tiles());
    }

    #[test]
    fn tile_index_transposed() {
        let i = TileIndex { row: 1, col: 3 };
        assert_eq!(i.transposed(), TileIndex { row: 3, col: 1 });
        assert!(!i.is_diagonal());
        assert!(TileIndex { row: 2, col: 2 }.is_diagonal());
    }

    #[test]
    fn tile_extraction_pads_with_zeros() {
        let m = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as f64);
        let g = TileGrid::new(5, 4).unwrap();
        let t = Tile::from_matrix(&m, &g, TileIndex { row: 1, col: 1 });
        assert_eq!(t.size(), 4);
        assert_eq!(t.as_slice()[0], 24.0); // m[4][4]
        assert!(t.as_slice()[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tile_mvm_matches_dense() {
        let m = Matrix::from_fn(4, 4, |r, c| (r as f64) - (c as f64) * 0.5);
        let g = TileGrid::new(4, 4).unwrap();
        let t = Tile::from_matrix(&m, &g, TileIndex { row: 0, col: 0 });
        let x = [1.0_f32, 2.0, 0.0, -1.0];
        let mut y = [0.0_f32; 4];
        t.mvm(&x, &mut y);
        let dense = m.matvec(&[1.0, 2.0, 0.0, -1.0]);
        for (a, b) in y.iter().zip(&dense) {
            assert!((f64::from(*a) - b).abs() < 1e-6);
        }
    }

    #[test]
    fn transposed_mvm_equals_mvm_of_partner_tile() {
        let m = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c * 7) % 5) as f64 - 2.0);
        let g = TileGrid::new(8, 4).unwrap();
        let t01 = Tile::from_matrix(&m, &g, TileIndex { row: 0, col: 1 });
        let t10 = Tile::from_matrix(&m, &g, TileIndex { row: 1, col: 0 });
        let x = [1.0_f32, -1.0, 0.5, 2.0];
        let mut a = [0.0_f32; 4];
        let mut b = [0.0_f32; 4];
        // For symmetric m, tile(1,0) = tile(0,1)ᵀ; for general m this checks
        // the bidirectional read: t01ᵀ·x == t10·x only if m symmetric, so
        // compare t01.mvm_transposed against explicit transpose instead.
        t01.mvm_transposed(&x, &mut a);
        let mt = m.transposed();
        let t01t = Tile::from_matrix(&mt, &g, TileIndex { row: 1, col: 0 });
        t01t.mvm(&x, &mut b);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-6);
        }
        let _ = t10;
    }

    #[test]
    fn tiled_matvec_matches_dense_matvec() {
        let n = 37;
        let m = Matrix::from_fn(n, n, |r, c| (((r * 13 + c * 29) % 9) as f64) - 4.0);
        let tm = TiledMatrix::new(&m, 8).unwrap();
        let x: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) - 1.0).collect();
        let dense = m.matvec(&x);
        let tiled = tm.matvec(&x);
        for (a, b) in dense.iter().zip(&tiled) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn forward_matches_sequential_column_sweep_bitwise() {
        // The documented accumulation contract: y[i] is the sequential sum
        // of T[i,c]·x[c] for ascending c with zero inputs skipped. Sparse
        // kernels and the incremental engine cache depend on this exactly.
        let size = 13;
        let t = Tile::from_vec(
            size,
            (0..size * size)
                .map(|i| ((i * 31 + 7) % 11) as f32 / 3.0 - 1.5)
                .collect(),
        )
        .unwrap();
        let x: Vec<f32> = (0..size)
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    (i % 5) as f32 - 2.0
                }
            })
            .collect();
        let mut y = vec![0.0_f32; size];
        t.mvm(&x, &mut y);
        for (i, &yi) in y.iter().enumerate() {
            let mut acc = 0.0_f32;
            for (c, &xc) in x.iter().enumerate() {
                if xc != 0.0 {
                    acc += t.as_slice()[i * size + c] * xc;
                }
            }
            assert_eq!(yi.to_bits(), acc.to_bits(), "row {i}");
        }
    }

    #[test]
    fn col_slice_mirrors_rows() {
        let t = Tile::from_vec(3, (0..9).map(|i| i as f32).collect()).unwrap();
        assert_eq!(t.col_slice(1), &[1.0, 4.0, 7.0]);
        for c in 0..3 {
            for r in 0..3 {
                assert_eq!(t.col_slice(c)[r], t.as_slice()[r * 3 + c]);
            }
        }
    }

    #[test]
    fn row_and_col_sums() {
        let t = Tile::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.row_sums(), vec![3.0, 7.0]);
        assert_eq!(t.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tile::from_vec(2, vec![0.0; 3]).is_err());
    }
}
