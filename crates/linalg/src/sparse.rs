//! Compressed sparse row (CSR) matrices for GSET-class weight data.
//!
//! The paper's benchmark graphs are extremely sparse (G22: 2000 nodes,
//! ~20k edges, ~0.5% density), yet the tiled engine's hot path multiplies
//! dense [`Tile`]s. [`SparseCsr`] stores only the nonzero weights so the
//! engine's sparse compute strategy (`sophie-core`) can recompute exactly
//! the outputs touched by changed inputs.
//!
//! # Bit-compatibility contract
//!
//! Every kernel here produces outputs **bit-identical** to the dense tile
//! kernels ([`Tile::mvm`] / [`Tile::mvm_transposed`]). Both families
//! accumulate each output as a sequential sum of `w·x` terms in ascending
//! column order, starting from `+0.0`; the dense side skips terms with a
//! zero *input*, the sparse side skips terms with a zero *weight*. Either
//! skip is bitwise invisible because the skipped term is an exact `±0.0`
//! product, `acc + ±0.0` preserves `acc`'s bits for every non-zero `acc`,
//! and the accumulator can never become `-0.0` (it starts at `+0.0`,
//! `+0.0 + -0.0 == +0.0`, and exact cancellation rounds to `+0.0`).
//! Entries equal to `-0.0` compare equal to zero and are simply dropped
//! at build time, under the same argument.

use crate::error::{LinalgError, Result};
use crate::Tile;

/// A sparse matrix in CSR layout: per row, ascending column indices and
/// their `f32` values.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SparseCsr {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx`/`values`.
    row_ptr: Vec<u32>,
    /// Column index of each stored entry, ascending within a row.
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl SparseCsr {
    /// Builds from a flat row-major dense buffer, dropping exact zeros
    /// (including `-0.0`).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `data.len() != rows · cols`,
    /// [`LinalgError::Empty`] if either dimension is zero.
    pub fn from_dense(rows: usize, cols: usize, data: &[f32]) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "CSR indices are u32"
        );
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for (c, &v) in data[r * cols..(r + 1) * cols].iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Ok(SparseCsr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds from a square [`Tile`]'s row-major contents.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::from_dense`] errors (a tile is never empty).
    pub fn from_tile(tile: &Tile) -> Result<Self> {
        Self::from_dense(tile.size(), tile.size(), tile.as_slice())
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Count of stored (nonzero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored, `nnz / (rows · cols)`.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Row `r` as `(column indices, values)` slices, columns ascending.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        assert!(r < self.rows, "row {r} out of bounds");
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Stored entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row {r} out of bounds");
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// The transposed matrix in CSR layout (i.e. this matrix in CSC).
    #[must_use]
    pub fn transposed(&self) -> SparseCsr {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0_f32; self.nnz()];
        let mut next = counts;
        // Walking rows ascending keeps each output row's indices ascending.
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize] as usize;
                col_idx[slot] = r as u32;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        SparseCsr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Recomputes one output of `y = M·x` from scratch: the sequential
    /// row-dot `Σ values[k]·x[col_idx[k]]` in ascending column order —
    /// bit-identical to what the dense kernels produce for that element
    /// (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `r` or `x` are out of bounds.
    #[must_use]
    pub fn row_dot(&self, r: usize, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.cols, "row_dot: input length mismatch");
        let (cols, vals) = self.row(r);
        crate::kernel::scalar::seq_dot_indexed(cols, vals, x)
    }

    /// `y = M·x`, one sequential row-dot per output.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: input length mismatch");
        assert_eq!(y.len(), self.rows, "matvec: output length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            *yr = crate::kernel::scalar::seq_dot_indexed(
                &self.col_idx[lo..hi],
                &self.values[lo..hi],
                x,
            );
        }
    }

    /// `y = Mᵀ·x` as a row-ordered scatter: for ascending row `r` with
    /// `x[r] != 0`, `y[c] += v·x[r]` over the stored entries — the same
    /// per-output term order as [`Tile::mvm_transposed`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn matvec_transposed(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_transposed: input mismatch");
        assert_eq!(y.len(), self.cols, "matvec_transposed: output mismatch");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr != 0.0 {
                let (cols, vals) = self.row(r);
                crate::kernel::scalar::seq_scatter_axpy(xr, cols, vals, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_of(size: usize, density_mod: usize) -> Tile {
        Tile::from_vec(
            size,
            (0..size * size)
                .map(|i| {
                    if i % density_mod == 0 {
                        ((i * 37 + 11) % 23) as f32 / 11.0 - 1.0
                    } else {
                        0.0
                    }
                })
                .collect(),
        )
        .unwrap()
    }

    fn input(size: usize) -> Vec<f32> {
        (0..size)
            .map(|i| match i % 4 {
                0 => 0.0,
                1 => 1.0,
                2 => -1.5,
                _ => 0.25,
            })
            .collect()
    }

    #[test]
    fn from_dense_drops_zeros_and_negative_zero() {
        let m = SparseCsr::from_dense(2, 3, &[1.0, 0.0, -0.0, 0.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0u32][..], &[1.0_f32][..]));
        assert_eq!(m.row(1), (&[1u32, 2][..], &[2.0_f32, 3.0][..]));
        assert_eq!(m.row_nnz(0), 1);
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_dense_validates() {
        assert!(SparseCsr::from_dense(0, 3, &[]).is_err());
        assert!(SparseCsr::from_dense(2, 2, &[0.0; 3]).is_err());
    }

    #[test]
    fn matvec_is_bitwise_identical_to_dense_tile() {
        for &(size, dm) in &[(16usize, 2usize), (64, 7), (33, 200), (64, 1)] {
            let tile = tile_of(size, dm);
            let csr = SparseCsr::from_tile(&tile).unwrap();
            let x = input(size);
            let mut dense = vec![0.0_f32; size];
            let mut sparse = vec![0.0_f32; size];
            tile.mvm(&x, &mut dense);
            csr.matvec(&x, &mut sparse);
            for i in 0..size {
                assert_eq!(
                    dense[i].to_bits(),
                    sparse[i].to_bits(),
                    "size {size} mod {dm} row {i}"
                );
            }
        }
    }

    #[test]
    fn transposed_paths_are_bitwise_identical_to_dense_tile() {
        for &(size, dm) in &[(16usize, 2usize), (64, 7), (33, 200)] {
            let tile = tile_of(size, dm);
            let csr = SparseCsr::from_tile(&tile).unwrap();
            let csr_t = csr.transposed();
            let x = input(size);
            let mut dense = vec![0.0_f32; size];
            let mut scatter = vec![0.0_f32; size];
            let mut rowdot = vec![0.0_f32; size];
            tile.mvm_transposed(&x, &mut dense);
            csr.matvec_transposed(&x, &mut scatter);
            csr_t.matvec(&x, &mut rowdot);
            for i in 0..size {
                assert_eq!(dense[i].to_bits(), scatter[i].to_bits(), "scatter row {i}");
                assert_eq!(dense[i].to_bits(), rowdot[i].to_bits(), "rowdot row {i}");
            }
        }
    }

    #[test]
    fn row_dot_matches_matvec_elementwise() {
        let tile = tile_of(32, 3);
        let csr = SparseCsr::from_tile(&tile).unwrap();
        let x = input(32);
        let mut y = vec![0.0_f32; 32];
        csr.matvec(&x, &mut y);
        for (r, yr) in y.iter().enumerate() {
            assert_eq!(csr.row_dot(r, &x).to_bits(), yr.to_bits());
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = SparseCsr::from_dense(
            3,
            4,
            &[1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 6.0],
        )
        .unwrap();
        let tt = m.transposed().transposed();
        assert_eq!(m, tt);
        let t = m.transposed();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(3), (&[1u32, 2][..], &[4.0_f32, 6.0][..]));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_tile(max: usize) -> impl Strategy<Value = (Tile, Vec<f32>)> {
            (2usize..max).prop_flat_map(|size| {
                (
                    proptest::collection::vec(
                        prop_oneof![
                            Just(0.0_f32),
                            Just(0.0_f32),
                            Just(0.0_f32),
                            (-4i32..4).prop_map(|v| v as f32 / 2.0),
                        ],
                        size * size,
                    ),
                    proptest::collection::vec(
                        prop_oneof![
                            Just(0.0_f32),
                            Just(0.0_f32),
                            Just(1.0_f32),
                            (-3i32..3).prop_map(|v| v as f32 / 4.0),
                        ],
                        size,
                    ),
                )
                    .prop_map(move |(data, x)| (Tile::from_vec(size, data).unwrap(), x))
            })
        }

        proptest! {
            #[test]
            fn sparse_forward_bitwise_equals_dense((tile, x) in arb_tile(24)) {
                let csr = SparseCsr::from_tile(&tile).unwrap();
                let mut dense = vec![0.0_f32; tile.size()];
                let mut sparse = vec![0.0_f32; tile.size()];
                tile.mvm(&x, &mut dense);
                csr.matvec(&x, &mut sparse);
                for i in 0..tile.size() {
                    prop_assert_eq!(dense[i].to_bits(), sparse[i].to_bits());
                }
            }

            #[test]
            fn sparse_transposed_bitwise_equals_dense((tile, x) in arb_tile(24)) {
                let csr = SparseCsr::from_tile(&tile).unwrap();
                let csr_t = csr.transposed();
                let mut dense = vec![0.0_f32; tile.size()];
                let mut scatter = vec![0.0_f32; tile.size()];
                let mut rowdot = vec![0.0_f32; tile.size()];
                tile.mvm_transposed(&x, &mut dense);
                csr.matvec_transposed(&x, &mut scatter);
                csr_t.matvec(&x, &mut rowdot);
                for i in 0..tile.size() {
                    prop_assert_eq!(dense[i].to_bits(), scatter[i].to_bits());
                    prop_assert_eq!(dense[i].to_bits(), rowdot[i].to_bits());
                }
            }
        }
    }
}
