//! Cache-blocked register-blocking kernels and the fused pair kernel.
//!
//! The speed here comes entirely from instruction-level parallelism
//! *across outputs*: a block of `L` outputs is held in registers and the
//! k-loop feeds all `L` chains per iteration (one broadcast `x[k]`, `L`
//! unit-stride loads, `L` independent mul-then-add chains). Each chain is
//! still one output's sequential ascending-k sum from `+0.0`, so every
//! `(L, U)` shape is bit-identical to the scalar reference — LLVM can
//! vectorize the lane loop into f32x8 ops precisely because the lanes are
//! independent, and it cannot reassociate within a chain (no `-ffast-math`
//! in Rust) or contract to FMA (never implicit).
//!
//! `U` unrolls the k-loop of the *same* chains — more in-flight adds per
//! lane without extra accumulators (extra accumulators per output would
//! reassociate the sum and change bits; deliberately not offered).

/// Register-blocked k-major sweep: `y[o] = Σ_k mat_km[k·t + o]·x[k]` for
/// `o < out_used`, zero above. `L` = output lanes per block, `U` = k-loop
/// unroll.
pub fn sweep<const L: usize, const U: usize>(
    mat_km: &[f32],
    t: usize,
    k_used: usize,
    out_used: usize,
    x: &[f32],
    y: &mut [f32],
) {
    let mut o = 0;
    while o + L <= out_used {
        let mut acc = [0.0_f32; L];
        let mut k = 0;
        while k + U <= k_used {
            for u in 0..U {
                let xk = x[k + u];
                let row = &mat_km[(k + u) * t + o..(k + u) * t + o + L];
                for l in 0..L {
                    acc[l] += xk * row[l];
                }
            }
            k += U;
        }
        while k < k_used {
            let xk = x[k];
            let row = &mat_km[k * t + o..k * t + o + L];
            for l in 0..L {
                acc[l] += xk * row[l];
            }
            k += 1;
        }
        y[o..o + L].copy_from_slice(&acc);
        o += L;
    }
    // Tail outputs: strided scalar chains, same ascending-k order.
    for (out, yo) in y.iter_mut().enumerate().take(out_used).skip(o) {
        let mut acc = 0.0_f32;
        for (k, &xk) in x.iter().take(k_used).enumerate() {
            acc += xk * mat_km[k * t + out];
        }
        *yo = acc;
    }
    y[out_used..].fill(0.0);
}

/// Fused symmetric-pair kernel: one pass over the row-major tile serves
/// `y_f = T·x_f` and `y_t = Tᵀ·x_t` together, reading each stored weight
/// once instead of twice. Columns are processed in 8-wide blocks; within
/// a block, rows sweep `0..rows_used`:
///
/// * the transposed half keeps 8 column accumulators (`acc_t[l] +=
///   x_t[r]·T[r][cb+l]`) — each is column `cb+l`'s sequential ascending-r
///   chain;
/// * the forward half resumes each row's accumulator from `y_f[r]`
///   (`y_f[r] += Σ_l T[r][cb+l]·x_f[cb+l]`, `l` ascending) — because the
///   column blocks advance left to right, the total per-row order is
///   ascending-c, exactly the reference order.
///
/// Tail columns (`cb..cols_used` when not a multiple of 8) run
/// column-outer / row-inner for the same reason. Bit-identical to two
/// independent reference calls.
#[allow(clippy::too_many_arguments)]
pub fn fused8(
    mat_rm: &[f32],
    t: usize,
    rows_used: usize,
    cols_used: usize,
    x_f: &[f32],
    y_f: &mut [f32],
    x_t: &[f32],
    y_t: &mut [f32],
) {
    const L: usize = 8;
    y_f[..rows_used].fill(0.0);
    let mut cb = 0;
    while cb + L <= cols_used {
        let mut acc_t = [0.0_f32; L];
        let xf8: [f32; L] = x_f[cb..cb + L].try_into().unwrap();
        for (r, yfr) in y_f.iter_mut().enumerate().take(rows_used) {
            let row8 = &mat_rm[r * t + cb..r * t + cb + L];
            let xtr = x_t[r];
            let mut s = *yfr;
            for l in 0..L {
                acc_t[l] += xtr * row8[l];
                s += row8[l] * xf8[l];
            }
            *yfr = s;
        }
        y_t[cb..cb + L].copy_from_slice(&acc_t);
        cb += L;
    }
    for c in cb..cols_used {
        let xfc = x_f[c];
        let mut acc_t = 0.0_f32;
        for (r, yfr) in y_f.iter_mut().enumerate().take(rows_used) {
            let w = mat_rm[r * t + c];
            acc_t += x_t[r] * w;
            *yfr += w * xfc;
        }
        y_t[c] = acc_t;
    }
    y_f[rows_used..].fill(0.0);
    y_t[cols_used..].fill(0.0);
}
