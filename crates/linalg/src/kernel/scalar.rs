//! Scalar reference kernels and the deduped sequential helpers.
//!
//! This file is the single home of the plain sequential inner loops that
//! `vector.rs`, `tile.rs`, and `sparse.rs` used to duplicate. Everything
//! here accumulates in ascending index order from `+0.0` — the canonical
//! order the whole kernel stack is bit-identical to.

/// `y[i] += alpha * x[i]` — the sequential axpy every kernel and the
/// public [`crate::vector::axpy_f32`] delegate to.
#[inline]
pub fn seq_axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Sequential dot product `Σ_i x[i]·y[i]`, ascending `i`, from `+0.0`.
///
/// This is *not* the lane-reduced [`crate::vector::dot_f32`]: that one
/// trades the canonical order for speed and serves thresholds/row-sums;
/// this one is the bitwise reference the MVM kernels are held to.
#[inline]
#[must_use]
pub fn seq_dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0_f32;
    for (xi, yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// Sequential indexed dot `Σ_j vals[j]·x[cols[j]]` — the CSR row-dot
/// inner loop shared by `SparseCsr::row_dot` and `SparseCsr::matvec`.
#[inline]
#[must_use]
pub fn seq_dot_indexed(cols: &[u32], vals: &[f32], x: &[f32]) -> f32 {
    let mut acc = 0.0_f32;
    for (&c, &v) in cols.iter().zip(vals) {
        acc += v * x[c as usize];
    }
    acc
}

/// Sequential indexed scatter `y[cols[j]] += alpha·vals[j]` — the CSR
/// transposed-matvec inner loop.
#[inline]
pub fn seq_scatter_axpy(alpha: f32, cols: &[u32], vals: &[f32], y: &mut [f32]) {
    for (&c, &v) in cols.iter().zip(vals) {
        y[c as usize] += alpha * v;
    }
}

/// The scalar reference MVM: for each live output, a unit-stride
/// sequential row dot over the output-major operand; padded outputs are
/// zeroed. Every other variant in the stack must match this bitwise.
pub fn scalar_sweep(
    mat_om: &[f32],
    t: usize,
    k_used: usize,
    out_used: usize,
    x: &[f32],
    y: &mut [f32],
) {
    for (o, yo) in y.iter_mut().take(out_used).enumerate() {
        *yo = seq_dot(&mat_om[o * t..o * t + k_used], &x[..k_used]);
    }
    y[out_used..].fill(0.0);
}

/// The pre-refactor `Tile::mvm` shape: a k-major sweep of axpy calls
/// skipping exact-zero inputs. Zero terms are bitwise invisible to a
/// `+0.0`-seeded ascending sum, so the skip cannot change any output
/// bit — only wall-clock on sparse inputs.
pub fn axpy_sweep(
    mat_km: &[f32],
    t: usize,
    k_used: usize,
    out_used: usize,
    x: &[f32],
    y: &mut [f32],
) {
    y.fill(0.0);
    for (k, &xk) in x.iter().take(k_used).enumerate() {
        if xk != 0.0 {
            seq_axpy(xk, &mat_km[k * t..k * t + out_used], &mut y[..out_used]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_f32() -> impl Strategy<Value = f32> {
        (-16i32..=16).prop_map(|v| if v % 4 == 0 { 0.0 } else { v as f32 / 2.0 })
    }

    proptest! {
        /// Satellite (a): the deduped helpers agree bitwise with their
        /// literal sequential definitions, including the indexed forms.
        #[test]
        fn helpers_match_literal_sequential_loops(
            x in (1usize..40).prop_flat_map(|n| proptest::collection::vec(small_f32(), n)),
            alpha in small_f32(),
            seed in 0u64..u64::MAX,
        ) {
            let n = x.len();
            let y0: Vec<f32> = (0..n).map(|i| ((seed >> (i % 48)) & 7) as f32 - 3.0).collect();

            // seq_axpy
            let mut got = y0.clone();
            seq_axpy(alpha, &x, &mut got);
            let want: Vec<f32> = y0.iter().zip(&x).map(|(yi, xi)| yi + alpha * xi).collect();
            prop_assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );

            // seq_dot
            let mut acc = 0.0_f32;
            for i in 0..n { acc += x[i] * y0[i]; }
            prop_assert_eq!(seq_dot(&x, &y0).to_bits(), acc.to_bits());

            // seq_dot_indexed over a strided index pattern
            let cols: Vec<u32> = (0..n as u32).filter(|c| c % 3 != 1).collect();
            let vals: Vec<f32> = cols.iter().map(|&c| x[c as usize] - 1.5).collect();
            let mut acc = 0.0_f32;
            for (j, &c) in cols.iter().enumerate() { acc += vals[j] * y0[c as usize]; }
            prop_assert_eq!(seq_dot_indexed(&cols, &vals, &y0).to_bits(), acc.to_bits());

            // seq_scatter_axpy
            let mut got = y0.clone();
            seq_scatter_axpy(alpha, &cols, &vals, &mut got);
            let mut want = y0.clone();
            for (j, &c) in cols.iter().enumerate() { want[c as usize] += alpha * vals[j]; }
            prop_assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// The axpy sweep's zero-skip is bitwise invisible next to the
        /// scalar reference on a transpose-consistent operand pair.
        #[test]
        fn axpy_sweep_matches_scalar_sweep(
            t in 1usize..24,
            seed in 0u64..u64::MAX,
        ) {
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32) / ((1u64 << 22) as f32) - 2.0
            };
            let mat_om: Vec<f32> = (0..t * t)
                .map(|i| if i % 5 == 0 { 0.0 } else { next() })
                .collect();
            let mut mat_km = vec![0.0_f32; t * t];
            for r in 0..t {
                for c in 0..t {
                    mat_km[c * t + r] = mat_om[r * t + c];
                }
            }
            let x: Vec<f32> = (0..t).map(|i| if i % 3 == 0 { 0.0 } else { next() }).collect();
            let used = t - (seed as usize % t).min(t - 1);
            let mut want = vec![f32::NAN; t];
            scalar_sweep(&mat_om, t, used, used, &x, &mut want);
            let mut got = vec![f32::NAN; t];
            axpy_sweep(&mat_km, t, used, used, &x, &mut got);
            prop_assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
