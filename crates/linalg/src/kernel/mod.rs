//! The tile-MVM kernel component stack.
//!
//! Modeled on kubecl's matmul component layering, the hottest loops of the
//! codebase are decomposed into small interchangeable micro-kernels behind
//! one dispatch type:
//!
//! * [`scalar`] — the canonical scalar reference kernel plus the deduped
//!   sequential helpers (`seq_axpy`, `seq_dot`, `seq_dot_indexed`) that
//!   `vector`, `tile`, and `sparse` all delegate to;
//! * [`blocked`] — cache-blocked, explicitly unrolled register-blocking
//!   variants (`L` output lanes × `U`-way k-unroll) plus the fused
//!   symmetric-pair kernel that serves both optical directions in one pass
//!   over the tile;
//! * [`tune`] — a startup autotuner that micro-benchmarks the candidate
//!   variants per tile size, caches the winner in a versioned host-keyed
//!   file, and can be overridden with `SOPHIE_KERNEL` for determinism
//!   tests;
//! * [`KernelPlan`] — the dispatch layer: everything above `sophie-linalg`
//!   (the engine's queue executor, the ideal/sparse backends) calls tile
//!   kernels only through a plan.
//!
//! # Bit-identity contract
//!
//! Every variant accumulates each output element as a *sequential sum of
//! its terms in ascending index order starting from `+0.0`*, exactly like
//! the scalar reference. Vectorization happens only **across** outputs
//! (each of the `L` register lanes owns one output's chain), never within
//! one output's chain, and Rust never contracts `mul`+`add` into a fused
//! multiply-add — so every variant, every block shape, and the fused pair
//! kernel are bit-identical to [`KernelVariant::Scalar`]. Terms that are
//! exact zeros (zero weight or zero input) are bitwise invisible to such
//! a sum (the accumulator can never become `-0.0`), which is why the
//! zero-input-skipping [`KernelVariant::Axpy`] and the zero-weight-skipping
//! sparse kernels agree with the no-skip variants bit for bit. Kernel
//! choice is therefore a pure wall-clock knob: solver outcomes and event
//! streams are byte-identical under every plan.

pub mod blocked;
pub mod scalar;
pub mod tune;

use crate::tile::Tile;

/// One MVM micro-kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KernelVariant {
    /// Sequential per-output row dot over the output-major mirror — the
    /// canonical reference every other variant must match bitwise.
    Scalar,
    /// k-major column sweep of unit-stride `seq_axpy` calls, skipping
    /// zero inputs (the pre-refactor `Tile::mvm` shape).
    Axpy,
    /// Register-blocked: 8 output lanes, no k-unroll.
    B8U1,
    /// Register-blocked: 8 output lanes, 4-way k-unroll.
    B8U4,
    /// Register-blocked: 16 output lanes, 4-way k-unroll.
    B16U4,
    /// Register-blocked: 32 output lanes, 2-way k-unroll.
    B32U2,
}

impl KernelVariant {
    /// Every variant, in canonical (autotune candidate) order.
    pub const ALL: [KernelVariant; 6] = [
        KernelVariant::Scalar,
        KernelVariant::Axpy,
        KernelVariant::B8U1,
        KernelVariant::B8U4,
        KernelVariant::B16U4,
        KernelVariant::B32U2,
    ];

    /// Canonical lowercase name (`"scalar"`, `"axpy"`, `"b8u4"`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Axpy => "axpy",
            KernelVariant::B8U1 => "b8u1",
            KernelVariant::B8U4 => "b8u4",
            KernelVariant::B16U4 => "b16u4",
            KernelVariant::B32U2 => "b32u2",
        }
    }

    /// Parses a canonical name back into a variant.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        KernelVariant::ALL.into_iter().find(|v| v.name() == name)
    }
}

/// How a fused forward + transposed pair request is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PairKernel {
    /// Two independent single-direction kernel calls.
    Sequential,
    /// One pass over the row-major tile serving both directions with
    /// 8-wide column blocks ([`blocked::fused8`]); each stored weight is
    /// read once instead of twice.
    Fused8,
}

impl PairKernel {
    /// Canonical lowercase name (`"sequential"` / `"fused8"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PairKernel::Sequential => "sequential",
            PairKernel::Fused8 => "fused8",
        }
    }

    /// Parses a canonical name back into a pair kernel.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "sequential" => Some(PairKernel::Sequential),
            "fused8" => Some(PairKernel::Fused8),
            _ => None,
        }
    }
}

/// Configuration-level kernel selection: let the autotuner pick, or pin
/// one variant for both directions.
///
/// The `SOPHIE_KERNEL` environment variable (read at plan-resolution
/// time, i.e. per run) overrides either value — `"auto"` forces the
/// tuned plan, any variant name pins it — so determinism tests can flip
/// kernels without touching configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KernelChoice {
    /// Benchmark-at-startup autotuned plan for the host ([`tune`]).
    #[default]
    Auto,
    /// One fixed variant for both directions, no fusion.
    Pinned(KernelVariant),
}

impl KernelChoice {
    /// Canonical lowercase name (`"auto"` or the pinned variant's name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Pinned(v) => v.name(),
        }
    }

    /// Parses `"auto"` or a variant name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        if name == "auto" {
            return Some(KernelChoice::Auto);
        }
        KernelVariant::parse(name).map(KernelChoice::Pinned)
    }
}

/// A resolved kernel selection for one tile size on this host: which
/// variant runs each direction and whether eligible forward + transposed
/// pairs run fused. This is the only type through which engine and
/// backend code reach the tile kernels (CI grep-gates direct
/// `Tile::mvm` calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelPlan {
    /// Variant executing `y = T·x`.
    pub forward: KernelVariant,
    /// Variant executing `y = Tᵀ·x`.
    pub transposed: KernelVariant,
    /// Pair execution strategy for fused requests.
    pub pair: PairKernel,
}

/// A direction resolved to the generic sweep layout: both directions are
/// `y[o] = Σ_k mat[k·t + o] · x[k]` over a k-major buffer, with the
/// output-major mirror available for unit-stride row dots.
struct Sweep<'a> {
    /// k-major operand (`data_t` forward, `data` transposed).
    km: &'a [f32],
    /// Output-major mirror (`data` forward, `data_t` transposed).
    om: &'a [f32],
    t: usize,
    /// Trimmed k extent (zero-padded fringe excluded; bit-invisible).
    k_used: usize,
    /// Trimmed output extent (padded outputs are exactly `+0.0`).
    out_used: usize,
}

impl<'a> Sweep<'a> {
    fn forward(tile: &'a Tile) -> Self {
        Sweep {
            km: tile.data_t_slice(),
            om: tile.as_slice(),
            t: tile.size(),
            k_used: tile.cols_used(),
            out_used: tile.rows_used(),
        }
    }

    fn transposed(tile: &'a Tile) -> Self {
        Sweep {
            km: tile.as_slice(),
            om: tile.data_t_slice(),
            t: tile.size(),
            k_used: tile.rows_used(),
            out_used: tile.cols_used(),
        }
    }
}

/// Runs one variant over a resolved sweep.
fn run_sweep(variant: KernelVariant, s: &Sweep<'_>, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), s.t, "kernel: input length mismatch");
    assert_eq!(y.len(), s.t, "kernel: output length mismatch");
    match variant {
        KernelVariant::Scalar => scalar::scalar_sweep(s.om, s.t, s.k_used, s.out_used, x, y),
        KernelVariant::Axpy => scalar::axpy_sweep(s.km, s.t, s.k_used, s.out_used, x, y),
        KernelVariant::B8U1 => blocked::sweep::<8, 1>(s.km, s.t, s.k_used, s.out_used, x, y),
        KernelVariant::B8U4 => blocked::sweep::<8, 4>(s.km, s.t, s.k_used, s.out_used, x, y),
        KernelVariant::B16U4 => blocked::sweep::<16, 4>(s.km, s.t, s.k_used, s.out_used, x, y),
        KernelVariant::B32U2 => blocked::sweep::<32, 2>(s.km, s.t, s.k_used, s.out_used, x, y),
    }
}

impl KernelPlan {
    /// The all-scalar reference plan.
    #[must_use]
    pub fn scalar() -> Self {
        KernelPlan::pinned(KernelVariant::Scalar)
    }

    /// One fixed variant for both directions, sequential pairs.
    #[must_use]
    pub fn pinned(variant: KernelVariant) -> Self {
        KernelPlan {
            forward: variant,
            transposed: variant,
            pair: PairKernel::Sequential,
        }
    }

    /// The autotuned plan for tiles of edge length `t` on this host
    /// (measures once per process per size; see [`tune`]).
    #[must_use]
    pub fn for_size(t: usize) -> Self {
        tune::tuned_plan(t)
    }

    /// Resolves a configuration choice, honoring the `SOPHIE_KERNEL`
    /// environment override first (`"auto"` → tuned plan, a variant name
    /// → pinned; unparseable values are ignored). Called at run /
    /// unit-creation time, so flipping the variable between runs takes
    /// effect without rebuilding anything.
    #[must_use]
    pub fn for_choice(choice: KernelChoice, t: usize) -> Self {
        if let Ok(name) = std::env::var("SOPHIE_KERNEL") {
            if let Some(over) = KernelChoice::parse(name.trim()) {
                return match over {
                    KernelChoice::Auto => Self::for_size(t),
                    KernelChoice::Pinned(v) => Self::pinned(v),
                };
            }
        }
        match choice {
            KernelChoice::Auto => Self::for_size(t),
            KernelChoice::Pinned(v) => Self::pinned(v),
        }
    }

    /// `y = T·x` through the plan's forward variant.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn forward(&self, tile: &Tile, x: &[f32], y: &mut [f32]) {
        run_sweep(self.forward, &Sweep::forward(tile), x, y);
    }

    /// `y = Tᵀ·x` through the plan's transposed variant.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn transposed(&self, tile: &Tile, x: &[f32], y: &mut [f32]) {
        run_sweep(self.transposed, &Sweep::transposed(tile), x, y);
    }

    /// Executes a forward and a transposed MVM on the same tile —
    /// fused into one pass over the stored weights when the plan says
    /// [`PairKernel::Fused8`], as two independent kernel calls otherwise.
    /// Bit-identical to calling [`Self::forward`] then
    /// [`Self::transposed`] either way.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn forward_transposed(
        &self,
        tile: &Tile,
        x_f: &[f32],
        y_f: &mut [f32],
        x_t: &[f32],
        y_t: &mut [f32],
    ) {
        match self.pair {
            PairKernel::Sequential => {
                self.forward(tile, x_f, y_f);
                self.transposed(tile, x_t, y_t);
            }
            PairKernel::Fused8 => {
                let t = tile.size();
                assert_eq!(x_f.len(), t, "kernel: input length mismatch");
                assert_eq!(y_f.len(), t, "kernel: output length mismatch");
                assert_eq!(x_t.len(), t, "kernel: input length mismatch");
                assert_eq!(y_t.len(), t, "kernel: output length mismatch");
                blocked::fused8(
                    tile.as_slice(),
                    t,
                    tile.rows_used(),
                    tile.cols_used(),
                    x_f,
                    y_f,
                    x_t,
                    y_t,
                );
            }
        }
    }

    /// Human-readable plan description, e.g. `"fwd=b8u4 trn=axpy pair=fused8"`.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "fwd={} trn={} pair={}",
            self.forward.name(),
            self.transposed.name(),
            self.pair.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic LCG stream for cheap large-size property inputs.
    fn lcg_fill(seed: u64, out: &mut [f32], zero_every: usize) {
        let mut state = seed | 1;
        for (i, v) in out.iter_mut().enumerate() {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            *v = if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                ((state >> 40) as f32) / ((1u64 << 24) as f32) - 0.5
            };
        }
    }

    /// Builds a trimmed tile: `used × used` live block inside a `t × t`
    /// zero-padded tile, mirroring `Tile::from_matrix` fringe handling.
    fn trimmed_tile(t: usize, used: usize, seed: u64) -> Tile {
        let mut live = vec![0.0_f32; used * used];
        lcg_fill(seed, &mut live, 7);
        let mut data = vec![0.0_f32; t * t];
        for r in 0..used {
            data[r * t..r * t + used].copy_from_slice(&live[r * used..(r + 1) * used]);
        }
        let mut tile = Tile::from_vec(t, data).unwrap();
        tile.set_used(used, used);
        tile
    }

    fn reference(tile: &Tile, x: &[f32], forward: bool) -> Vec<f32> {
        let t = tile.size();
        let mut y = vec![0.0_f32; t];
        for (o, yo) in y.iter_mut().enumerate() {
            let mut acc = 0.0_f32;
            for (k, &xk) in x.iter().enumerate().take(t) {
                let w = if forward {
                    tile.as_slice()[o * t + k]
                } else {
                    tile.as_slice()[k * t + o]
                };
                acc += w * xk;
            }
            *yo = acc;
        }
        y
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Satellite acceptance sweep: every variant × tile size ∈
    /// {7, 64, 256, 500} × direction is bit-identical to the scalar
    /// reference, with and without fringe trims.
    #[test]
    fn every_variant_matches_reference_bitwise_at_acceptance_sizes() {
        for &t in &[7usize, 64, 256, 500] {
            for &used in &[t, t - t / 3] {
                let tile = trimmed_tile(t, used, 0xBEEF ^ t as u64);
                let mut x = vec![0.0_f32; t];
                lcg_fill(t as u64 + 1, &mut x[..used], 3);
                for forward in [true, false] {
                    let want = reference(&tile, &x, forward);
                    for v in KernelVariant::ALL {
                        let plan = KernelPlan::pinned(v);
                        let mut y = vec![f32::NAN; t];
                        if forward {
                            plan.forward(&tile, &x, &mut y);
                        } else {
                            plan.transposed(&tile, &x, &mut y);
                        }
                        assert_eq!(
                            bits(&y),
                            bits(&want),
                            "t={t} used={used} forward={forward} variant={}",
                            v.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_pair_matches_sequential_bitwise() {
        for &(t, used) in &[(7usize, 7usize), (16, 11), (64, 64), (64, 40), (100, 99)] {
            let tile = trimmed_tile(t, used, 0xF00D ^ t as u64);
            let mut xf = vec![0.0_f32; t];
            let mut xt = vec![0.0_f32; t];
            lcg_fill(3, &mut xf[..used], 4);
            lcg_fill(5, &mut xt[..used], 2);
            let want_f = reference(&tile, &xf, true);
            let want_t = reference(&tile, &xt, false);
            let plan = KernelPlan {
                forward: KernelVariant::B8U4,
                transposed: KernelVariant::B8U4,
                pair: PairKernel::Fused8,
            };
            let mut yf = vec![f32::NAN; t];
            let mut yt = vec![f32::NAN; t];
            plan.forward_transposed(&tile, &xf, &mut yf, &xt, &mut yt);
            assert_eq!(bits(&yf), bits(&want_f), "fused forward t={t} used={used}");
            assert_eq!(
                bits(&yt),
                bits(&want_t),
                "fused transposed t={t} used={used}"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for v in KernelVariant::ALL {
            assert_eq!(KernelVariant::parse(v.name()), Some(v));
        }
        for c in [
            KernelChoice::Auto,
            KernelChoice::Pinned(KernelVariant::B8U4),
        ] {
            assert_eq!(KernelChoice::parse(c.name()), Some(c));
        }
        for p in [PairKernel::Sequential, PairKernel::Fused8] {
            assert_eq!(PairKernel::parse(p.name()), Some(p));
        }
        assert_eq!(KernelVariant::parse("fancy"), None);
        assert_eq!(KernelChoice::parse("fancy"), None);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(
            KernelPlan::scalar().describe(),
            "fwd=scalar trn=scalar pair=sequential"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Property form of the acceptance sweep: random seeds, random
        /// trims, all variants, both directions, bitwise against the
        /// scalar reference. Inputs are LCG-generated from the seed so
        /// size-500 cases stay cheap to shrink.
        #[test]
        fn variants_bitwise_match_scalar_reference(
            seed in 0u64..u64::MAX,
            size_idx in 0usize..4,
            trim in 0usize..5,
            forward in proptest::bool::ANY,
        ) {
            let t = [7usize, 64, 256, 500][size_idx];
            let used = (t - trim.min(t - 1)).max(1);
            let tile = trimmed_tile(t, used, seed);
            let mut x = vec![0.0_f32; t];
            lcg_fill(seed ^ 0xA5A5, &mut x[..used], 3);
            let want = reference(&tile, &x, forward);
            for v in KernelVariant::ALL {
                let plan = KernelPlan::pinned(v);
                let mut y = vec![f32::NAN; t];
                if forward {
                    plan.forward(&tile, &x, &mut y);
                } else {
                    plan.transposed(&tile, &x, &mut y);
                }
                prop_assert_eq!(bits(&y), bits(&want), "variant {}", v.name());
            }
            let mut yf = vec![f32::NAN; t];
            let mut yt = vec![f32::NAN; t];
            let fused = KernelPlan { forward: KernelVariant::B16U4, transposed: KernelVariant::Axpy, pair: PairKernel::Fused8 };
            fused.forward_transposed(&tile, &x, &mut yf, &x, &mut yt);
            prop_assert_eq!(bits(&yf), bits(&reference(&tile, &x, true)));
            prop_assert_eq!(bits(&yt), bits(&reference(&tile, &x, false)));
        }
    }
}
