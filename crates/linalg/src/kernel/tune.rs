//! Startup autotuner: micro-benchmarks the kernel variants per tile size
//! and caches the winning [`KernelPlan`] in a versioned host-keyed file.
//!
//! Resolution is layered: a process-wide memo (one measurement per tile
//! size per process) over the cache file over a fresh measurement. The
//! file lives at `$SOPHIE_KERNEL_CACHE`, else
//! `$XDG_CACHE_HOME/sophie/kernel-tune`, else
//! `$HOME/.cache/sophie/kernel-tune`, else the system temp dir, and is
//! ignored wholesale if its version header or host key doesn't match —
//! a new kernel set or a new machine re-tunes from scratch. Write
//! failures are tolerated (the plan just isn't persisted).
//!
//! Because every variant is bit-identical (see the module docs of
//! [`crate::kernel`]), a noisy winner is harmless: any plan produces the
//! same solver bits, so tuning only has to be *roughly* right to collect
//! the wall-clock win.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use super::{KernelPlan, KernelVariant, PairKernel, Sweep};
use crate::tile::Tile;

/// Cache file format version; bump whenever the variant set or the
/// measurement protocol changes so stale winners are re-measured.
const CACHE_VERSION: &str = "sophie-kernel-tune-v1";

/// Per-variant, per-direction measurement for one tile size, plus the
/// pair-kernel comparison — what `repro tune` records into
/// `BENCH_sophie.json`.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Tile edge length measured.
    pub tile_size: usize,
    /// `(variant, forward ns, transposed ns)` per candidate, in
    /// [`KernelVariant::ALL`] order.
    pub table: Vec<(KernelVariant, f64, f64)>,
    /// Best sequential forward + transposed time (ns).
    pub pair_sequential_ns: f64,
    /// Fused pair kernel time (ns).
    pub pair_fused_ns: f64,
    /// The plan the measurements select.
    pub plan: KernelPlan,
}

impl TuneReport {
    /// Nanoseconds measured for `variant` in the given direction.
    #[must_use]
    pub fn ns_for(&self, variant: KernelVariant, forward: bool) -> f64 {
        self.table
            .iter()
            .find(|(v, _, _)| *v == variant)
            .map(|&(_, f, t)| if forward { f } else { t })
            .unwrap_or(f64::NAN)
    }
}

/// The autotuned plan for tiles of edge length `t`: memoized per
/// process, persisted per host.
#[must_use]
pub fn tuned_plan(t: usize) -> KernelPlan {
    static MEMO: OnceLock<Mutex<HashMap<usize, KernelPlan>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(plan) = memo.lock().unwrap().get(&t) {
        return *plan;
    }
    // Measure outside the lock: concurrent first-callers may race to
    // measure, but every answer is valid (bit-identity) and the map
    // settles on one.
    let plan = match load_cached(t) {
        Some(plan) => plan,
        None => {
            let plan = measure(t).plan;
            store_cached(t, plan);
            plan
        }
    };
    memo.lock().unwrap().insert(t, plan);
    plan
}

/// Runs a fresh measurement (ignoring memo and cache) and returns the
/// full timing table — the entry point for `repro tune`.
#[must_use]
pub fn measure(t: usize) -> TuneReport {
    let tile = bench_tile(t);
    let x = bench_input(t);
    let mut y = vec![0.0_f32; t];
    let reps = ((1usize << 20) / (t * t).max(1)).clamp(8, 256);

    let mut table = Vec::with_capacity(KernelVariant::ALL.len());
    let (mut best_f, mut best_t) = (KernelVariant::Scalar, KernelVariant::Scalar);
    let (mut best_f_ns, mut best_t_ns) = (f64::INFINITY, f64::INFINITY);
    for v in KernelVariant::ALL {
        let fwd = Sweep::forward(&tile);
        let f_ns = time_ns(reps, || super::run_sweep(v, &fwd, &x, &mut y));
        let trn = Sweep::transposed(&tile);
        let t_ns = time_ns(reps, || super::run_sweep(v, &trn, &x, &mut y));
        if f_ns < best_f_ns {
            best_f_ns = f_ns;
            best_f = v;
        }
        if t_ns < best_t_ns {
            best_t_ns = t_ns;
            best_t = v;
        }
        table.push((v, f_ns, t_ns));
    }

    let x_t: Vec<f32> = (0..t)
        .map(|i| match i % 4 {
            0 => 0.0,
            1 | 2 => -1.0,
            _ => 1.0,
        })
        .collect();
    let mut y_t = vec![0.0_f32; t];
    let seq_plan = KernelPlan {
        forward: best_f,
        transposed: best_t,
        pair: PairKernel::Sequential,
    };
    let pair_sequential_ns = time_ns(reps, || {
        seq_plan.forward_transposed(&tile, &x, &mut y, &x_t, &mut y_t);
    });
    let fused_plan = KernelPlan {
        pair: PairKernel::Fused8,
        ..seq_plan
    };
    let pair_fused_ns = time_ns(reps, || {
        fused_plan.forward_transposed(&tile, &x, &mut y, &x_t, &mut y_t);
    });

    let plan = if pair_fused_ns < pair_sequential_ns {
        fused_plan
    } else {
        seq_plan
    };
    TuneReport {
        tile_size: t,
        table,
        pair_sequential_ns,
        pair_fused_ns,
        plan,
    }
}

/// Median-free robust timing: best (minimum) of 3 passes of `reps`
/// runs each, after 2 warmup runs. Returns ns per run.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / reps as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Deterministic LCG-filled benchmark tile, dense with a sprinkling of
/// exact zeros so zero-skipping variants see realistic work.
fn bench_tile(t: usize) -> Tile {
    let mut state = 0x5EED_0000_u64 | t as u64;
    let data: Vec<f32> = (0..t * t)
        .map(|i| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            if i % 17 == 0 {
                0.0
            } else {
                ((state >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
            }
        })
        .collect();
    Tile::from_vec(t, data).expect("bench tile dimensions are consistent")
}

/// Spin-like benchmark input: about a third exact zeros, the rest ±1-ish.
fn bench_input(t: usize) -> Vec<f32> {
    (0..t)
        .map(|i| {
            if i % 3 == 0 {
                0.0
            } else if i % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

/// Host key: hostname (if known) plus target arch — plans don't travel
/// between machines. Public so `repro tune` records the same key next to
/// the timing table it persists.
#[must_use]
pub fn host_key() -> String {
    let host = std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".to_string());
    let host = if host.trim().is_empty() {
        "unknown".to_string()
    } else {
        host.trim().to_string()
    };
    format!("{host}-{}", std::env::consts::ARCH)
}

/// Cache file location (see module docs). `None` disables persistence.
fn cache_path() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("SOPHIE_KERNEL_CACHE") {
        if !p.trim().is_empty() {
            return Some(PathBuf::from(p));
        }
    }
    let base = std::env::var("XDG_CACHE_HOME")
        .ok()
        .filter(|p| !p.trim().is_empty())
        .map(PathBuf::from)
        .or_else(|| {
            std::env::var("HOME")
                .ok()
                .filter(|p| !p.trim().is_empty())
                .map(|h| PathBuf::from(h).join(".cache"))
        })
        .unwrap_or_else(std::env::temp_dir);
    Some(base.join("sophie").join("kernel-tune"))
}

/// Parses one `plan <t> <fwd> <trn> <pair>` line.
fn parse_plan_line(line: &str) -> Option<(usize, KernelPlan)> {
    let mut it = line.split_whitespace();
    if it.next()? != "plan" {
        return None;
    }
    let t: usize = it.next()?.parse().ok()?;
    let forward = KernelVariant::parse(it.next()?)?;
    let transposed = KernelVariant::parse(it.next()?)?;
    let pair = PairKernel::parse(it.next()?)?;
    Some((
        t,
        KernelPlan {
            forward,
            transposed,
            pair,
        },
    ))
}

fn load_cached(t: usize) -> Option<KernelPlan> {
    let text = std::fs::read_to_string(cache_path()?).ok()?;
    let mut lines = text.lines();
    if lines.next()?.trim() != CACHE_VERSION {
        return None;
    }
    if lines.next()?.trim() != format!("host {}", host_key()) {
        return None;
    }
    lines
        .filter_map(parse_plan_line)
        .find(|&(pt, _)| pt == t)
        .map(|(_, plan)| plan)
}

/// Merges the plan for `t` into the cache file, rewriting it whole.
/// All failures are swallowed: the cache is an optimization.
fn store_cached(t: usize, plan: KernelPlan) {
    let Some(path) = cache_path() else { return };
    let mut plans: Vec<(usize, KernelPlan)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| {
            let mut lines = text.lines();
            (lines.next()?.trim() == CACHE_VERSION
                && lines.next()?.trim() == format!("host {}", host_key()))
            .then(|| lines.filter_map(parse_plan_line).collect())
        })
        .unwrap_or_default();
    plans.retain(|&(pt, _)| pt != t);
    plans.push((t, plan));
    plans.sort_by_key(|&(pt, _)| pt);

    if let Some(dir) = path.parent() {
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let Ok(mut f) = std::fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(f, "{CACHE_VERSION}");
    let _ = writeln!(f, "host {}", host_key());
    for (pt, p) in plans {
        let _ = writeln!(
            f,
            "plan {pt} {} {} {}",
            p.forward.name(),
            p.transposed.name(),
            p.pair.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_full_table_and_valid_plan() {
        let report = measure(16);
        assert_eq!(report.tile_size, 16);
        assert_eq!(report.table.len(), KernelVariant::ALL.len());
        for &(_, f_ns, t_ns) in &report.table {
            assert!(f_ns > 0.0 && f_ns.is_finite());
            assert!(t_ns > 0.0 && t_ns.is_finite());
        }
        assert!(report.pair_sequential_ns > 0.0);
        assert!(report.pair_fused_ns > 0.0);
        assert!(report.ns_for(KernelVariant::Scalar, true) > 0.0);
    }

    #[test]
    fn plan_lines_round_trip() {
        let plan = KernelPlan {
            forward: KernelVariant::B16U4,
            transposed: KernelVariant::Axpy,
            pair: PairKernel::Fused8,
        };
        let line = format!(
            "plan 64 {} {} {}",
            plan.forward.name(),
            plan.transposed.name(),
            plan.pair.name()
        );
        assert_eq!(parse_plan_line(&line), Some((64, plan)));
        assert_eq!(parse_plan_line("plan x scalar scalar sequential"), None);
        assert_eq!(parse_plan_line("nonsense"), None);
    }

    #[test]
    fn cache_file_round_trips_through_env_override() {
        // Serialize access to the env var within this test binary.
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("sophie-tune-test-{}", std::process::id()));
        let path = dir.join("cache");
        std::env::set_var("SOPHIE_KERNEL_CACHE", &path);
        let plan = KernelPlan {
            forward: KernelVariant::B8U4,
            transposed: KernelVariant::B32U2,
            pair: PairKernel::Sequential,
        };
        store_cached(96, plan);
        store_cached(32, KernelPlan::scalar());
        assert_eq!(load_cached(96), Some(plan));
        assert_eq!(load_cached(32), Some(KernelPlan::scalar()));
        assert_eq!(load_cached(64), None);
        // A version bump (simulated by corrupting the header) invalidates.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace(CACHE_VERSION, "sophie-kernel-tune-v0")).unwrap();
        assert_eq!(load_cached(96), None);
        std::env::remove_var("SOPHIE_KERNEL_CACHE");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuned_plan_is_memoized() {
        let a = tuned_plan(8);
        let b = tuned_plan(8);
        assert_eq!(a, b);
    }
}
