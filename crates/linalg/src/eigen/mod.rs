//! Symmetric eigendecomposition.
//!
//! The production pipeline is Householder tridiagonalization
//! (`tridiagonal`) followed by implicit-shift QL iteration (`ql`) — the
//! same O(n³) direct method dense LAPACK uses (`dsyev` family), implemented
//! from scratch because SOPHIE's eigenvalue-dropout preprocessing (paper
//! §II-C) needs the full spectrum of coupling matrices up to a few thousand
//! nodes. A cyclic [`jacobi_eigen`] solver provides an independent implementation
//! for cross-validation.

mod jacobi;
mod ql;
mod tridiagonal;

pub use jacobi::{jacobi_eigen, JacobiEigen};

use crate::error::{LinalgError, Result};
use crate::Matrix;

/// Full eigendecomposition `A = U D Uᵀ` of a real symmetric matrix.
///
/// Produced by [`symmetric_eigen`]. Eigenvalues are sorted ascending and the
/// columns of [`SymmetricEigen::vectors`] are the matching orthonormal
/// eigenvectors.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose column `k` is the eigenvector for `values[k]`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Dimension of the decomposed matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Rebuilds the original matrix `U D Uᵀ` (mainly for testing).
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        self.apply_fn(|x| x)
    }

    /// Builds `U f(D) Uᵀ` for an arbitrary spectral function `f`.
    ///
    /// When `f` is non-negative over the spectrum the construction uses the
    /// factored form `(U √f)(U √f)ᵀ`, halving the cost; otherwise it falls
    /// back to two general products.
    #[must_use]
    pub fn apply_fn<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        let n = self.dim();
        let fv: Vec<f64> = self.values.iter().map(|&x| f(x)).collect();
        if fv.iter().all(|&x| x >= 0.0) {
            // B = U diag(√f); result = B Bᵀ.
            let mut b = Matrix::zeros(n, n);
            for r in 0..n {
                let urow = self.vectors.row(r);
                let brow = b.row_mut(r);
                for c in 0..n {
                    brow[c] = urow[c] * fv[c].sqrt();
                }
            }
            b.gram()
        } else {
            let mut ud = Matrix::zeros(n, n);
            for r in 0..n {
                let urow = self.vectors.row(r);
                let drow = ud.row_mut(r);
                for c in 0..n {
                    drow[c] = urow[c] * fv[c];
                }
            }
            ud.matmul(&self.vectors.transposed())
                .expect("shapes are square by construction")
        }
    }
}

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`LinalgError::Empty`] / [`LinalgError::NotSquare`] for malformed input.
/// * [`LinalgError::NotSymmetric`] if asymmetry exceeds `1e-9 · (1 + max|a|)`.
/// * [`LinalgError::ConvergenceFailure`] if QL iteration stalls
///   (practically unreachable).
///
/// ```
/// use sophie_linalg::{Matrix, eigen::symmetric_eigen};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])?;
/// let eig = symmetric_eigen(&a)?;
/// assert!((eig.values[0] + 1.0).abs() < 1e-12);
/// assert!((eig.values[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if a.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let asym = a.max_asymmetry();
    if asym > 1e-9 * (1.0 + a.max_abs()) {
        return Err(LinalgError::NotSymmetric {
            max_asymmetry: asym,
        });
    }

    let n = a.rows();
    let mut z = a.as_slice().to_vec();
    let (mut d, mut e) = tridiagonal::tridiagonalize(&mut z, n);

    // Transpose Q in place so QL rotations act on contiguous rows.
    for r in 0..n {
        for c in (r + 1)..n {
            z.swap(r * n + c, c * n + r);
        }
    }
    ql::ql_implicit(&mut d, &mut e, &mut z, n)?;

    // Sort eigenvalues ascending and emit eigenvectors as columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| z[order[c] * n + r]);
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudorandom_symmetric(n: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the test needs no RNG dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let raw = Matrix::from_fn(n, n, |_, _| next());
        Matrix::from_fn(n, n, |r, c| raw[(r, c)] + raw[(c, r)])
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn reconstruct_roundtrips() {
        let a = pseudorandom_symmetric(31, 7);
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = pseudorandom_symmetric(20, 3);
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transposed().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(20)) < 1e-10);
    }

    #[test]
    fn values_sorted_and_match_trace() {
        let a = pseudorandom_symmetric(25, 11);
        let e = symmetric_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let trace: f64 = (0..25).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn agrees_with_jacobi_solver() {
        let a = pseudorandom_symmetric(16, 42);
        let ql = symmetric_eigen(&a).unwrap();
        let jac = jacobi_eigen(&a).unwrap();
        for (x, y) in ql.values.iter().zip(&jac.values) {
            assert!((x - y).abs() < 1e-8, "eigenvalue mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn apply_fn_identity_equals_reconstruct() {
        let a = pseudorandom_symmetric(12, 5);
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.apply_fn(|x| x).max_abs_diff(&e.reconstruct()) < 1e-12);
    }

    #[test]
    fn apply_fn_square_matches_matrix_square() {
        let a = pseudorandom_symmetric(14, 9);
        let e = symmetric_eigen(&a).unwrap();
        let a2 = a.matmul(&a).unwrap();
        // x² ≥ 0 so this exercises the factored (gram) path.
        assert!(e.apply_fn(|x| x * x).max_abs_diff(&a2) < 1e-8);
    }

    #[test]
    fn apply_fn_negative_branch_matches_general_path() {
        let a = pseudorandom_symmetric(10, 13);
        let e = symmetric_eigen(&a).unwrap();
        // f(x) = x keeps negatives, exercising the two-product fallback;
        // compare against reconstruct (which routes through the same fn) and
        // the original matrix.
        assert!(e.apply_fn(|x| x).max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[7.5]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.5]);
        assert!((e.vectors[(0, 0)].abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn repeated_eigenvalues_are_handled() {
        let a = Matrix::identity(8);
        let e = symmetric_eigen(&a).unwrap();
        for &v in &e.values {
            assert!((v - 1.0).abs() < 1e-12);
        }
        let vtv = e.vectors.transposed().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(8)) < 1e-10);
    }
}
