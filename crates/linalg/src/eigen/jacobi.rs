//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Slower than the Householder + QL pipeline but extremely robust and simple,
//! so it serves as an independent cross-check in tests and as the solver of
//! choice for tiny systems.

use crate::error::{LinalgError, Result};
use crate::Matrix;

/// Maximum number of full Jacobi sweeps.
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition computed by [`jacobi_eigen`]; same layout as
/// [`crate::eigen::SymmetricEigen`] but kept separate so tests can compare
/// the two solvers as genuinely independent implementations.
#[derive(Debug, Clone)]
pub struct JacobiEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose columns are the matching eigenvectors.
    pub vectors: Matrix,
}

/// Diagonalizes a symmetric matrix with cyclic Jacobi rotations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for malformed
/// input and [`LinalgError::ConvergenceFailure`] if the off-diagonal mass has
/// not vanished after the maximum sweep count (64).
///
/// ```
/// use sophie_linalg::{Matrix, eigen::jacobi_eigen};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = jacobi_eigen(&a)?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-12);
/// assert!((eig.values[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn jacobi_eigen(a: &Matrix) -> Result<JacobiEigen> {
    if a.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() <= 1e-14 * (1.0 + m.max_abs()) {
            return Ok(finish(m, v));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = {
                    let t = 1.0 / (theta.abs() + (theta * theta + 1.0).sqrt());
                    if theta >= 0.0 {
                        t
                    } else {
                        -t
                    }
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Update rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into v.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::ConvergenceFailure {
        index: 0,
        iterations: MAX_SWEEPS,
    })
}

fn finish(m: Matrix, v: Matrix) -> JacobiEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].total_cmp(&m[(j, j)]));
    let values = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    JacobiEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            jacobi_eigen(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert!(matches!(jacobi_eigen(&a), Err(LinalgError::Empty)));
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert_eq!(e.values, vec![-1.0, 3.0]);
    }

    #[test]
    fn reconstruction_matches_input() {
        let raw = Matrix::from_fn(9, 9, |r, c| (((r * 13 + c * 5) % 11) as f64) - 5.0);
        let a = Matrix::from_fn(9, 9, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]));
        let e = jacobi_eigen(&a).unwrap();
        let mut d = Matrix::zeros(9, 9);
        for i in 0..9 {
            d[(i, i)] = e.values[i];
        }
        let back = e
            .vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transposed())
            .unwrap();
        assert!(back.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a =
            Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 2.0]]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        let vtv = e.vectors.transposed().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-11);
    }

    #[test]
    fn values_are_ascending() {
        let raw = Matrix::from_fn(7, 7, |r, c| ((r * 3 + c * 19) % 17) as f64 / 3.0);
        let a = Matrix::from_fn(7, 7, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]));
        let e = jacobi_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
