//! Implicit-shift QL iteration on a symmetric tridiagonal matrix.
//!
//! This is the `tql2`/`tqli` routine. For cache friendliness the
//! accumulated transformation is kept *transposed* (`zt`, eigenvectors as
//! rows): each Givens rotation then touches two adjacent contiguous rows
//! instead of two strided columns, which matters at `n ≈ 2000`.

use crate::error::{LinalgError, Result};

/// Maximum QL iterations per eigenvalue before reporting failure.
const MAX_ITERS: usize = 64;

/// `sign(a, b)`: magnitude of `a`, sign of `b` (Fortran SIGN intrinsic).
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Diagonalizes the tridiagonal matrix `(d, e)` in place and accumulates the
/// rotations into `zt` (row-major `n × n`, interpreted as the *transpose* of
/// the eigenvector matrix: row `k` of `zt` converges to eigenvector `k`).
///
/// On success `d` holds the (unsorted) eigenvalues. `e` is destroyed.
///
/// # Errors
///
/// Returns [`LinalgError::ConvergenceFailure`] if any eigenvalue fails to
/// converge within [`MAX_ITERS`] iterations (practically unreachable for
/// well-scaled input).
pub(crate) fn ql_implicit(d: &mut [f64], e: &mut [f64], zt: &mut [f64], n: usize) -> Result<()> {
    debug_assert_eq!(d.len(), n);
    debug_assert_eq!(e.len(), n);
    debug_assert_eq!(zt.len(), n * n);
    if n <= 1 {
        return Ok(());
    }

    // Shift the subdiagonal so e[i] couples d[i] and d[i+1].
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Look for a single small subdiagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_ITERS {
                return Err(LinalgError::ConvergenceFailure {
                    index: l,
                    iterations: iter,
                });
            }
            // Form the implicit Wilkinson-like shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + sign(r, g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            let mut i = m - 1;
            // A sequence of plane rotations to restore tridiagonal form.
            loop {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Apply the rotation to eigenvector rows i and i+1 of zt.
                let (row_i, row_i1) = zt[i * n..(i + 2) * n].split_at_mut(n);
                for (zi, zi1) in row_i.iter_mut().zip(row_i1.iter_mut()) {
                    f = *zi1;
                    *zi1 = s * *zi + c * f;
                    *zi = c * *zi - s * f;
                }
                if i == l {
                    break;
                }
                i -= 1;
            }
            if underflow && i > l {
                continue;
            }
            if !underflow {
                d[l] -= p;
                e[l] = g;
                e[m] = 0.0;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    /// Diagonalizes a tridiagonal `(d, e)` and checks `T v = λ v` per pair.
    fn check(diag: &[f64], sub: &[f64]) {
        let n = diag.len();
        let mut d = diag.to_vec();
        // Convention: e[i] couples d[i-1] and d[i], e[0] unused.
        let mut e = vec![0.0; n];
        e[1..n].copy_from_slice(&sub[..n - 1]);
        let mut zt = Matrix::identity(n).into_vec();
        ql_implicit(&mut d, &mut e, &mut zt, n).unwrap();

        let t = {
            let mut t = Matrix::zeros(n, n);
            for i in 0..n {
                t[(i, i)] = diag[i];
                if i > 0 {
                    t[(i, i - 1)] = sub[i - 1];
                    t[(i - 1, i)] = sub[i - 1];
                }
            }
            t
        };
        for k in 0..n {
            let v: Vec<f64> = (0..n).map(|j| zt[k * n + j]).collect();
            let tv = t.matvec(&v);
            for j in 0..n {
                assert!(
                    (tv[j] - d[k] * v[j]).abs() < 1e-8,
                    "eigenpair {k} residual too large"
                );
            }
        }
        // Eigenvalue sum equals trace.
        let trace: f64 = diag.iter().sum();
        let sum: f64 = d.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        check(&[3.0, 1.0, -2.0, 7.0], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn small_coupled_chain() {
        check(&[2.0, 2.0, 2.0], &[1.0, 1.0]);
    }

    #[test]
    fn known_two_by_two() {
        // [[0,1],[1,0]] has eigenvalues ±1.
        let mut d = vec![0.0, 0.0];
        let mut e = vec![0.0, 1.0];
        let mut zt = Matrix::identity(2).into_vec();
        ql_implicit(&mut d, &mut e, &mut zt, 2).unwrap();
        let mut vals = d.clone();
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] + 1.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_chain_eigenvalues_match_closed_form() {
        // Path-graph Laplacian-like tridiagonal [2, -1] has eigenvalues
        // 2 - 2 cos(kπ/(n+1)) for the [-1,2,-1] Toeplitz with Dirichlet ends.
        let n = 12;
        let diag = vec![2.0; n];
        let sub = vec![-1.0; n - 1];
        let mut d = diag.clone();
        let mut e = vec![0.0; n];
        e[1..].copy_from_slice(&sub);
        let mut zt = Matrix::identity(n).into_vec();
        ql_implicit(&mut d, &mut e, &mut zt, n).unwrap();
        d.sort_by(f64::total_cmp);
        for (k, &lam) in d.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / (n + 1) as f64).cos();
            assert!((lam - expect).abs() < 1e-10, "λ_{k}");
        }
    }

    #[test]
    fn single_element_is_noop() {
        let mut d = vec![42.0];
        let mut e = vec![0.0];
        let mut zt = vec![1.0];
        ql_implicit(&mut d, &mut e, &mut zt, 1).unwrap();
        assert_eq!(d, vec![42.0]);
    }

    #[test]
    fn eigenvectors_stay_orthonormal() {
        check(
            &[1.0, -1.0, 0.5, 2.5, -3.0, 0.0],
            &[0.7, 0.2, 0.9, 0.1, 0.4],
        );
    }
}
