//! Householder reduction of a real symmetric matrix to tridiagonal form.
//!
//! This is the classic `tred2` routine (EISPACK / Numerical Recipes
//! lineage): a sequence of Householder reflections zeroes out everything
//! below the first subdiagonal while the product of the reflections is
//! accumulated so the caller can recover eigenvectors of the original
//! matrix.
//!
//! The implementation reorganizes the textbook inner loops for cache
//! friendliness: the `A·w` product over the shrinking symmetric submatrix
//! (the dominant O(n³) term) walks the packed lower triangle row-wise in
//! two unit-stride passes instead of the strided column traversal of the
//! original, and the rank-2 update runs on parallel row chunks.

use crate::par;

/// Reduces the symmetric matrix stored row-major in `z` (size `n × n`) to
/// tridiagonal form.
///
/// On return, `z` holds the accumulated orthogonal transformation `Q`
/// (`A = Q T Qᵀ`), and the returned `(d, e)` hold the diagonal and
/// subdiagonal of `T` (`e[0]` is unused and set to zero, `e[i]` couples
/// `d[i-1]` and `d[i]`).
///
/// The caller guarantees `z.len() == n * n` and symmetry of the input; this
/// is enforced by [`crate::eigen::symmetric_eigen`].
pub(crate) fn tridiagonalize(z: &mut [f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    debug_assert_eq!(z.len(), n * n);
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    if n == 0 {
        return (d, e);
    }
    if n == 1 {
        d[0] = z[0];
        z[0] = 1.0;
        return (d, e);
    }

    let mut g_vec = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[i * n + k].abs();
            }
            if scale == 0.0 {
                e[i] = z[i * n + l];
            } else {
                for k in 0..=l {
                    z[i * n + k] /= scale;
                    h += z[i * n + k] * z[i * n + k];
                }
                let mut f = z[i * n + l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[i * n + l] = f - g;

                // ---- g_vec = A · w over the (l+1)×(l+1) symmetric
                // submatrix stored in the lower triangle, row-wise. ----
                g_vec[..=l].fill(0.0);
                {
                    let (lower, wrow) = z.split_at_mut(i * n);
                    let w = &wrow[..=l];
                    for k in 0..=l {
                        let row = &lower[k * n..k * n + k];
                        let wk = w[k];
                        let gk = &mut g_vec[..=l];
                        // Diagonal element.
                        let mut acc = lower[k * n + k] * wk;
                        // Row part: A[k][0..k] · w[0..k] …
                        for (j, &a) in row.iter().enumerate() {
                            acc += a * w[j];
                            // … and its mirrored column contribution.
                            gk[j] += a * wk;
                        }
                        gk[k] += acc;
                    }
                }

                f = 0.0;
                for j in 0..=l {
                    z[j * n + i] = z[i * n + j] / h;
                    e[j] = g_vec[j] / h;
                    f += e[j] * z[i * n + j];
                }
                let hh = f / (h + h);
                // New e holds g_j = e_j − hh·w_j (finalize before the
                // rank-2 update so rows become independent).
                for j in 0..=l {
                    e[j] -= hh * z[i * n + j];
                }
                // ---- Rank-2 update of the lower triangle:
                // A[j][k] -= w_j·e_k + g_j·w_k, rows in parallel. ----
                let (lower, wrow) = z.split_at_mut(i * n);
                let w = &wrow[..=l];
                let ev = &e[..=l];
                let rows = l + 1;
                let workers = par::worker_count(rows.div_ceil(64));
                par::for_each_row_chunk_mut(&mut lower[..rows * n], n, workers, |row0, chunk| {
                    for (local_j, row) in chunk.chunks_mut(n).enumerate() {
                        let j = row0 + local_j;
                        let fj = w[j];
                        let gj = ev[j];
                        for (k, a) in row[..=j].iter_mut().enumerate() {
                            *a -= fj * ev[k] + gj * w[k];
                        }
                    }
                });
            }
        } else {
            e[i] = z[i * n + l];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the transformation. Reorganized row-wise: with
    // w = z[i][0..i] (the scaled Householder vector) and v = z[0..i][i]
    // (w/h), the textbook column loops are g = Zᵀw followed by the rank-1
    // update Z -= v gᵀ — both expressible as unit-stride row operations.
    let mut v = vec![0.0; n];
    for i in 0..n {
        if d[i] != 0.0 {
            g_vec[..i].fill(0.0);
            for k in 0..i {
                v[k] = z[k * n + i];
            }
            {
                let (lower, wrow) = z.split_at(i * n);
                let w = &wrow[..i];
                for k in 0..i {
                    let wk = w[k];
                    if wk != 0.0 {
                        let row = &lower[k * n..k * n + i];
                        for (gj, &a) in g_vec[..i].iter_mut().zip(row) {
                            *gj += wk * a;
                        }
                    }
                }
            }
            let gv = &g_vec[..i];
            let vv = &v[..i];
            let workers = par::worker_count(i.div_ceil(128));
            par::for_each_row_chunk_mut(&mut z[..i * n], n, workers, |row0, chunk| {
                for (local_k, row) in chunk.chunks_mut(n).enumerate() {
                    let vk = vv[row0 + local_k];
                    if vk != 0.0 {
                        for (a, &g) in row[..i].iter_mut().zip(gv) {
                            *a -= vk * g;
                        }
                    }
                }
            });
        }
        d[i] = z[i * n + i];
        z[i * n + i] = 1.0;
        for j in 0..i {
            z[j * n + i] = 0.0;
            z[i * n + j] = 0.0;
        }
    }
    (d, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    /// Rebuilds `Q T Qᵀ` from the tridiagonalization output.
    fn reconstruct(q: &[f64], d: &[f64], e: &[f64], n: usize) -> Matrix {
        let qm = Matrix::from_vec(n, n, q.to_vec()).unwrap();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = d[i];
            if i > 0 {
                t[(i, i - 1)] = e[i];
                t[(i - 1, i)] = e[i];
            }
        }
        qm.matmul(&t).unwrap().matmul(&qm.transposed()).unwrap()
    }

    fn check_roundtrip(a: &Matrix) {
        let n = a.rows();
        let mut z = a.as_slice().to_vec();
        let (d, e) = tridiagonalize(&mut z, n);
        let back = reconstruct(&z, &d, &e, n);
        assert!(
            back.max_abs_diff(a) < 1e-9 * (1.0 + a.max_abs()),
            "reconstruction error {:e}",
            back.max_abs_diff(a)
        );
        // Q must be orthogonal.
        let qm = Matrix::from_vec(n, n, z).unwrap();
        let qtq = qm.transposed().matmul(&qm).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(n)) < 1e-10);
    }

    #[test]
    fn roundtrip_small_dense() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap();
        check_roundtrip(&a);
    }

    #[test]
    fn roundtrip_pseudorandom_symmetric() {
        let n = 24;
        let raw = Matrix::from_fn(n, n, |r, c| (((r * 37 + c * 17) % 29) as f64) / 7.0 - 2.0);
        let a = Matrix::from_fn(n, n, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]));
        check_roundtrip(&a);
    }

    #[test]
    fn roundtrip_large_enough_for_parallel_chunks() {
        let n = 150;
        let raw = Matrix::from_fn(n, n, |r, c| (((r * 13 + c * 41) % 53) as f64) / 9.0 - 2.5);
        let a = Matrix::from_fn(n, n, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]));
        check_roundtrip(&a);
    }

    #[test]
    fn handles_one_by_one() {
        let mut z = vec![5.0];
        let (d, e) = tridiagonalize(&mut z, 1);
        assert_eq!(d, vec![5.0]);
        assert_eq!(e, vec![0.0]);
        assert_eq!(z, vec![1.0]);
    }

    #[test]
    fn handles_two_by_two() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        check_roundtrip(&a);
    }

    #[test]
    fn already_tridiagonal_input_stays_faithful() {
        let mut a = Matrix::zeros(6, 6);
        for i in 0..6 {
            a[(i, i)] = i as f64 + 1.0;
            if i > 0 {
                a[(i, i - 1)] = 0.5;
                a[(i - 1, i)] = 0.5;
            }
        }
        check_roundtrip(&a);
    }

    #[test]
    fn zero_matrix_roundtrips() {
        check_roundtrip(&Matrix::zeros(5, 5));
    }
}
