//! Error types for the linear-algebra substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix construction and decomposition routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands have incompatible shapes.
    DimensionMismatch {
        /// Shape expected by the operation, `(rows, cols)`.
        expected: (usize, usize),
        /// Shape actually supplied, `(rows, cols)`.
        found: (usize, usize),
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A symmetric matrix was required but the input was not symmetric
    /// within the stated tolerance.
    NotSymmetric {
        /// Largest absolute difference between `a[i][j]` and `a[j][i]`.
        max_asymmetry: f64,
    },
    /// An iterative eigensolver failed to converge.
    ConvergenceFailure {
        /// Index of the eigenvalue being isolated when iteration stalled.
        index: usize,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A zero-sized matrix was supplied where a non-empty one is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, found {rows}x{cols}")
            }
            LinalgError::NotSymmetric { max_asymmetry } => {
                write!(f, "matrix is not symmetric (max asymmetry {max_asymmetry:e})")
            }
            LinalgError::ConvergenceFailure { index, iterations } => write!(
                f,
                "eigensolver failed to converge for eigenvalue {index} after {iterations} iterations"
            ),
            LinalgError::Empty => write!(f, "matrix must be non-empty"),
        }
    }
}

impl Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: (3, 4),
            found: (4, 3),
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3x4, found 4x3");
        let e = LinalgError::NotSquare { rows: 2, cols: 5 };
        assert_eq!(e.to_string(), "matrix must be square, found 2x5");
        let e = LinalgError::Empty;
        assert_eq!(e.to_string(), "matrix must be non-empty");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn convergence_failure_mentions_iterations() {
        let e = LinalgError::ConvergenceFailure {
            index: 7,
            iterations: 50,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains("50"));
    }
}
