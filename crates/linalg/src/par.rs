//! Minimal data-parallel helpers built on scoped threads.
//!
//! The heavy kernels in this crate (matrix products, spectral
//! reconstruction) are embarrassingly parallel over output rows. Rather than
//! pulling in a work-stealing runtime, we split the output into contiguous
//! row chunks and hand each chunk to a scoped thread; this is enough to
//! saturate memory bandwidth for the sizes SOPHIE works with (N ≤ ~4k for
//! functional simulation).

use std::num::NonZeroUsize;

/// Returns the number of worker threads to use for a job with `items`
/// independent units of work.
///
/// Capped by available hardware parallelism and by `items` itself, and at
/// least 1. Honors the `SOPHIE_THREADS` environment variable when set, which
/// keeps experiment runs reproducible on shared machines.
#[must_use]
pub fn worker_count(items: usize) -> usize {
    let hw = std::env::var("SOPHIE_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    hw.min(items).max(1)
}

/// Runs `f(chunk_index, chunk)` over mutable chunks of `out`, where `out`
/// is split into `chunks` nearly-equal contiguous pieces, each processed on
/// its own scoped thread. `chunk_rows` is the number of items per chunk
/// except possibly the last.
///
/// Returns the chunk size used so callers can map chunk indices back to
/// global offsets.
///
/// # Panics
///
/// Panics if `chunks == 0`.
pub fn for_each_chunk_mut<T, F>(out: &mut [T], chunks: usize, f: F) -> usize
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunks > 0, "for_each_chunk_mut: chunks must be positive");
    if out.is_empty() {
        return 0;
    }
    let chunk_len = out.len().div_ceil(chunks);
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx, chunk));
        }
    });
    chunk_len
}

/// Like [`for_each_chunk_mut`], but for a matrix buffer of `row_len`-wide
/// rows: chunks are always whole numbers of rows, so `f(first_row, rows)`
/// can safely reinterpret its chunk with `chunks_mut(row_len)`.
///
/// # Panics
///
/// Panics if `chunks == 0`, `row_len == 0`, or `out.len()` is not a
/// multiple of `row_len`.
pub fn for_each_row_chunk_mut<T, F>(out: &mut [T], row_len: usize, chunks: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunks > 0, "for_each_row_chunk_mut: chunks must be positive");
    assert!(row_len > 0, "for_each_row_chunk_mut: row_len must be positive");
    assert_eq!(
        out.len() % row_len,
        0,
        "for_each_row_chunk_mut: buffer is not whole rows"
    );
    let rows = out.len() / row_len;
    if rows == 0 {
        return;
    }
    let rows_per_chunk = rows.div_ceil(chunks).max(1);
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(rows_per_chunk * row_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx * rows_per_chunk, chunk));
        }
    });
}

/// Maps `f` over `0..jobs` in parallel and collects results in order.
///
/// Used by the experiment harness to fan independent simulation runs across
/// cores. Each job index is executed exactly once.
pub fn parallel_map<R, F>(jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count(jobs);
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    for_each_chunk_mut(&mut slots, workers, |chunk_idx, chunk| {
        let chunk_len = jobs.div_ceil(workers);
        let base = chunk_idx * chunk_len;
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(base + i));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map: job not executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_at_least_one_and_at_most_items() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(3) <= 3);
    }

    #[test]
    fn chunks_cover_all_elements() {
        let mut data = vec![0u32; 101];
        for_each_chunk_mut(&mut data, 7, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_map_to_offsets() {
        let mut data = vec![0usize; 100];
        let chunk_len = for_each_chunk_mut(&mut data, 4, |idx, chunk| {
            for x in chunk.iter_mut() {
                *x = idx;
            }
        });
        assert_eq!(chunk_len, 25);
        assert_eq!(data[0], 0);
        assert_eq!(data[99], 3);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares = parallel_map(50, |i| i * i);
        assert_eq!(squares.len(), 50);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn parallel_map_zero_jobs_is_empty() {
        let out: Vec<u8> = parallel_map(0, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        let n = for_each_chunk_mut(&mut data, 3, |_, _| panic!("should not run"));
        assert_eq!(n, 0);
    }
}

#[cfg(test)]
mod row_chunk_tests {
    use super::*;

    #[test]
    fn row_chunks_are_always_whole_rows() {
        // 97 rows of width 61, split into 16 chunks: the naive
        // element-count split would break mid-row; this must not.
        let rows = 97;
        let width = 61;
        let mut data = vec![0usize; rows * width];
        for_each_row_chunk_mut(&mut data, width, 16, |first_row, chunk| {
            assert_eq!(chunk.len() % width, 0, "chunk splits a row");
            for (local, row) in chunk.chunks_mut(width).enumerate() {
                for x in row {
                    *x = first_row + local;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(data[r * width + c], r, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn more_chunks_than_rows_is_fine() {
        let mut data = vec![0u8; 3 * 5];
        for_each_row_chunk_mut(&mut data, 5, 10, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn partial_rows_are_rejected() {
        let mut data = vec![0u8; 7];
        for_each_row_chunk_mut(&mut data, 5, 2, |_, _| {});
    }
}
