//! Data-parallel helpers built on a persistent worker pool.
//!
//! The heavy kernels in this crate (matrix products, spectral
//! reconstruction) and the engine's per-round tile-pair execution are
//! embarrassingly parallel. Earlier revisions spawned fresh scoped threads
//! for every call, which costs tens of microseconds per fork — small for a
//! one-off dense matmul, but ruinous inside the solver's round loop, which
//! fans out thousands of times per anneal. This module instead keeps one
//! process-wide pool of long-lived workers that sleep on a condvar between
//! jobs, so steady-state dispatch is a mutex lock plus a wakeup.
//!
//! Design notes:
//!
//! * **One job at a time.** A job is a counter of `tasks` indices plus an
//!   erased `Fn(usize)` closure; workers and the calling thread pull
//!   indices from a shared atomic until the range is drained, which gives
//!   dynamic load balancing for free. Posting while another job is in
//!   flight blocks until the slot frees — jobs are short and callers that
//!   overlap are themselves pool tasks (see next point).
//! * **Nested calls run inline.** Pool tasks that call back into this
//!   module execute serially on their own thread; the outermost level of
//!   parallelism wins. This keeps batch sweeps (outer [`parallel_map`])
//!   from deadlocking against, or oversubscribing with, the engine's inner
//!   per-pair parallelism.
//! * **Thread count is policy, not topology.** `SOPHIE_THREADS` is read at
//!   every call, so a single process can observe different settings (the
//!   determinism tests rely on this). The pool lazily grows to the largest
//!   concurrency ever requested and parks surplus workers; correctness
//!   never depends on the count because callers are required to make task
//!   results independent of execution order.
//! * **Panics propagate.** A panicking task poisons the job; the posting
//!   thread re-panics after the job drains, and the pool stays usable.
//! * **Observation happens off the pool.** Solver instrumentation
//!   (`sophie-solve`'s `SolveObserver` events) is emitted only from the
//!   thread that posted the job, after the posting call returns — never
//!   from inside a pool task. Observers therefore need no synchronization,
//!   and event order is independent of `SOPHIE_THREADS`.
//!
//! This is the only module in the crate allowed to use `unsafe`: handing a
//! borrowing closure to long-lived threads requires erasing its lifetime
//! (sound because the posting call blocks until every task has executed),
//! and the chunking helpers share one base pointer across tasks that write
//! provably disjoint regions. Each block carries its SAFETY argument.

#![allow(unsafe_code)]

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Returns the number of worker threads to use for a job with `items`
/// independent units of work.
///
/// Capped by available hardware parallelism and by `items` itself, and at
/// least 1. Honors the `SOPHIE_THREADS` environment variable when set, which
/// keeps experiment runs reproducible on shared machines. Results of the
/// helpers in this module never depend on the value — only wall-clock time
/// does.
#[must_use]
pub fn worker_count(items: usize) -> usize {
    let hw = std::env::var("SOPHIE_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    hw.min(items).max(1)
}

/// Hard cap on pool size, protecting against absurd `SOPHIE_THREADS`.
const MAX_POOL_WORKERS: usize = 128;

thread_local! {
    /// Set while the current thread is executing pool tasks (worker threads
    /// permanently; the posting thread for the duration of its job). Nested
    /// parallel calls observe it and degrade to serial inline execution.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A posted job: `tasks` indices to feed through an erased closure.
struct Job {
    /// Erased `&'call (dyn Fn(usize) + Sync)`. Soundness: the posting
    /// thread does not return from [`Pool::run`] until `completed == tasks`,
    /// and workers only dereference this for indices claimed below `tasks`,
    /// every one of which is counted in `completed` — so the closure is
    /// alive for every dereference.
    task: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Number of task indices fully executed.
    completed: AtomicUsize,
    /// Total task indices.
    tasks: usize,
    /// Worker seats still available (the posting thread is not counted).
    seats: AtomicUsize,
    /// Set if any task panicked.
    panicked: AtomicBool,
}

// SAFETY: the raw closure pointer is only dereferenced while the posting
// thread provably keeps the closure alive (see the `task` field contract),
// and `dyn Fn(usize) + Sync` is safe to call from many threads at once.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Pulls and executes task indices until the range drains.
    fn work(&self, shared: &PoolShared) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                return;
            }
            // SAFETY: `i < self.tasks`, so per the `task` field contract the
            // closure is still alive.
            let task = unsafe { &*self.task };
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.tasks {
                // Lock before notifying so the posting thread cannot check
                // the condition and sleep between our increment and notify.
                drop(shared.inner.lock().unwrap());
                shared.done_cv.notify_all();
            }
        }
    }
}

struct PoolInner {
    /// Bumped on every post; sleeping workers watch it for new work.
    epoch: u64,
    /// The in-flight job, if any.
    job: Option<Arc<Job>>,
    /// Worker threads spawned so far.
    workers: usize,
}

struct PoolShared {
    inner: Mutex<PoolInner>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The posting thread sleeps here until its job drains.
    done_cv: Condvar,
    /// Posting threads sleep here while another job occupies the slot.
    free_cv: Condvar,
}

fn pool() -> &'static Arc<PoolShared> {
    static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();
    POOL.get_or_init(|| {
        Arc::new(PoolShared {
            inner: Mutex::new(PoolInner {
                epoch: 0,
                job: None,
                workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            free_cv: Condvar::new(),
        })
    })
}

fn worker_loop(shared: Arc<PoolShared>) {
    IN_POOL_TASK.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if inner.epoch != seen_epoch {
                    seen_epoch = inner.epoch;
                    if let Some(job) = inner.job.clone() {
                        break job;
                    }
                }
                inner = shared.work_cv.wait(inner).unwrap();
            }
        };
        // Respect the job's requested concurrency: claim a seat or skip.
        if job
            .seats
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
            .is_ok()
        {
            job.work(&shared);
        }
    }
}

/// Grows the pool to at least `wanted` workers (capped).
fn ensure_workers(shared: &'static Arc<PoolShared>, wanted: usize) {
    let wanted = wanted.min(MAX_POOL_WORKERS);
    let mut inner = shared.inner.lock().unwrap();
    while inner.workers < wanted {
        let id = inner.workers;
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("sophie-pool-{id}"))
            .spawn(move || worker_loop(shared))
            .expect("failed to spawn pool worker");
        inner.workers += 1;
    }
}

/// Runs `f(0)..f(tasks-1)` exactly once each, possibly concurrently on the
/// persistent pool, returning once all have finished.
///
/// The closure must make its result independent of which thread runs which
/// index and in what order (the usual contract: disjoint writes, no
/// order-sensitive accumulation). Concurrency is `worker_count(tasks)`;
/// with a count of 1, inside an existing pool task, or for trivial jobs the
/// indices run inline on the calling thread.
///
/// # Panics
///
/// Panics if any task panicked (after all tasks have drained, so the pool
/// and all borrowed data are back in a consistent state).
pub fn for_each_task<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if tasks == 0 {
        return;
    }
    let threads = worker_count(tasks);
    if threads <= 1 || tasks == 1 || IN_POOL_TASK.with(std::cell::Cell::get) {
        for i in 0..tasks {
            f(i);
        }
        return;
    }

    let shared = pool();
    ensure_workers(shared, threads - 1);

    let narrowed: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY: lifetime erasure only; see the `Job::task` field contract —
    // this function does not return until every claimed index has executed.
    let erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(narrowed)
    };
    let job = Arc::new(Job {
        task: erased,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        tasks,
        seats: AtomicUsize::new(threads - 1),
        panicked: AtomicBool::new(false),
    });

    {
        let mut inner = shared.inner.lock().unwrap();
        while inner.job.is_some() {
            inner = shared.free_cv.wait(inner).unwrap();
        }
        inner.job = Some(Arc::clone(&job));
        inner.epoch += 1;
        shared.work_cv.notify_all();
    }

    // Participate from the posting thread; nested calls inside our tasks
    // must inline, exactly as they do on dedicated workers.
    IN_POOL_TASK.with(|flag| flag.set(true));
    job.work(shared);
    IN_POOL_TASK.with(|flag| flag.set(false));

    {
        let mut inner = shared.inner.lock().unwrap();
        while job.completed.load(Ordering::Acquire) < tasks {
            inner = shared.done_cv.wait(inner).unwrap();
        }
        inner.job = None;
        shared.free_cv.notify_one();
    }

    assert!(
        !job.panicked.load(Ordering::Relaxed),
        "a parallel task panicked"
    );
}

/// Pointer wrapper asserting that tasks touch disjoint regions.
struct SyncPtr<T>(*mut T);
// SAFETY: callers hand each task index a region no other index touches.
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Runs `f(chunk_index, chunk)` over mutable chunks of `out`, where `out`
/// is split into `chunks` nearly-equal contiguous pieces, each processed as
/// one pool task. `chunk_rows` is the number of items per chunk except
/// possibly the last.
///
/// Returns the chunk size used so callers can map chunk indices back to
/// global offsets.
///
/// # Panics
///
/// Panics if `chunks == 0`.
pub fn for_each_chunk_mut<T, F>(out: &mut [T], chunks: usize, f: F) -> usize
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunks > 0, "for_each_chunk_mut: chunks must be positive");
    if out.is_empty() {
        return 0;
    }
    let len = out.len();
    let chunk_len = len.div_ceil(chunks);
    let n_chunks = len.div_ceil(chunk_len);
    let base = SyncPtr(out.as_mut_ptr());
    for_each_task(n_chunks, |idx| {
        let start = idx * chunk_len;
        let this_len = chunk_len.min(len - start);
        // SAFETY: chunk `idx` covers `start..start + this_len`; ranges for
        // distinct indices are disjoint and within `out`.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), this_len) };
        f(idx, chunk);
    });
    chunk_len
}

/// Like [`for_each_chunk_mut`], but for a matrix buffer of `row_len`-wide
/// rows: chunks are always whole numbers of rows, so `f(first_row, rows)`
/// can safely reinterpret its chunk with `chunks_mut(row_len)`.
///
/// # Panics
///
/// Panics if `chunks == 0`, `row_len == 0`, or `out.len()` is not a
/// multiple of `row_len`.
pub fn for_each_row_chunk_mut<T, F>(out: &mut [T], row_len: usize, chunks: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        chunks > 0,
        "for_each_row_chunk_mut: chunks must be positive"
    );
    assert!(
        row_len > 0,
        "for_each_row_chunk_mut: row_len must be positive"
    );
    assert_eq!(
        out.len() % row_len,
        0,
        "for_each_row_chunk_mut: buffer is not whole rows"
    );
    let rows = out.len() / row_len;
    if rows == 0 {
        return;
    }
    let rows_per_chunk = rows.div_ceil(chunks).max(1);
    let n_chunks = rows.div_ceil(rows_per_chunk);
    let base = SyncPtr(out.as_mut_ptr());
    for_each_task(n_chunks, |idx| {
        let first_row = idx * rows_per_chunk;
        let n_rows = rows_per_chunk.min(rows - first_row);
        // SAFETY: chunk `idx` covers rows `first_row..first_row + n_rows`;
        // row ranges for distinct indices are disjoint and within `out`.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(first_row * row_len), n_rows * row_len)
        };
        f(first_row, chunk);
    });
}

/// Maps `f` over `0..jobs` in parallel and collects results in order.
///
/// Used by the experiment harness to fan independent simulation runs across
/// cores. Each job index is executed exactly once, one pool task per index
/// (dynamic load balancing across workers).
pub fn parallel_map<R, F>(jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    let base = SyncPtr(slots.as_mut_ptr());
    for_each_task(jobs, |i| {
        // SAFETY: each index writes only its own slot, exactly once.
        unsafe { base.get().add(i).write(Some(f(i))) };
    });
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map: job not executed"))
        .collect()
}

/// Number of persistent worker threads currently alive in the pool
/// (diagnostics only; the posting thread is not counted).
#[must_use]
pub fn pool_workers() -> usize {
    pool().inner.lock().unwrap().workers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_at_least_one_and_at_most_items() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(3) <= 3);
    }

    #[test]
    fn chunks_cover_all_elements() {
        let mut data = vec![0u32; 101];
        for_each_chunk_mut(&mut data, 7, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_map_to_offsets() {
        let mut data = vec![0usize; 100];
        let chunk_len = for_each_chunk_mut(&mut data, 4, |idx, chunk| {
            for x in chunk.iter_mut() {
                *x = idx;
            }
        });
        assert_eq!(chunk_len, 25);
        assert_eq!(data[0], 0);
        assert_eq!(data[99], 3);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares = parallel_map(50, |i| i * i);
        assert_eq!(squares.len(), 50);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn parallel_map_zero_jobs_is_empty() {
        let out: Vec<u8> = parallel_map(0, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        let n = for_each_chunk_mut(&mut data, 3, |_, _| panic!("should not run"));
        assert_eq!(n, 0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counters: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        for_each_task(counters.len(), |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        // An outer parallel map whose tasks themselves call parallel
        // helpers; inner calls must inline rather than re-enter the pool.
        let sums = parallel_map(8, |i| {
            let inner = parallel_map(16, move |j| i * 16 + j);
            inner.iter().sum::<usize>()
        });
        for (i, &s) in sums.iter().enumerate() {
            let expect: usize = (0..16).map(|j| i * 16 + j).sum();
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn pool_threads_are_reused_across_jobs() {
        // Warm the pool, then check that repeated jobs don't grow it
        // beyond the requested concurrency cap.
        for _ in 0..50 {
            let _ = parallel_map(32, |i| i);
        }
        assert!(pool_workers() <= MAX_POOL_WORKERS);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            for_each_task(64, |i| {
                assert!(i != 13, "injected failure");
            });
        });
        // On single-threaded hosts the inline path panics directly at
        // i == 13; on the pool path the posting thread re-panics after the
        // job drains. Either way the panic must surface...
        assert!(result.is_err());
        // ...and the pool must still work afterwards.
        let v = parallel_map(40, |i| i + 1);
        assert_eq!(v.iter().sum::<usize>(), (1..=40).sum::<usize>());
    }
}

#[cfg(test)]
mod row_chunk_tests {
    use super::*;

    #[test]
    fn row_chunks_are_always_whole_rows() {
        // 97 rows of width 61, split into 16 chunks: the naive
        // element-count split would break mid-row; this must not.
        let rows = 97;
        let width = 61;
        let mut data = vec![0usize; rows * width];
        for_each_row_chunk_mut(&mut data, width, 16, |first_row, chunk| {
            assert_eq!(chunk.len() % width, 0, "chunk splits a row");
            for (local, row) in chunk.chunks_mut(width).enumerate() {
                for x in row {
                    *x = first_row + local;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(data[r * width + c], r, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn more_chunks_than_rows_is_fine() {
        let mut data = vec![0u8; 3 * 5];
        for_each_row_chunk_mut(&mut data, 5, 10, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn partial_rows_are_rejected() {
        let mut data = vec![0u8; 7];
        for_each_row_chunk_mut(&mut data, 5, 2, |_, _| {});
    }
}
