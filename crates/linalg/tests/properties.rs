//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use sophie_linalg::eigen::{jacobi_eigen, symmetric_eigen};
use sophie_linalg::tile::TileIndex;
use sophie_linalg::{Matrix, Tile, TileGrid, TiledMatrix};

/// Strategy: a symmetric n×n matrix with entries in [-5, 5].
fn symmetric_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-5.0_f64..5.0, n * n).prop_map(move |v| {
            let raw = Matrix::from_vec(n, n, v).unwrap();
            Matrix::from_fn(n, n, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]))
        })
    })
}

fn any_matrix(max_n: usize) -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (1..=max_n, 1..=max_n).prop_flat_map(|(r, c)| {
        (
            proptest::collection::vec(-5.0_f64..5.0, r * c)
                .prop_map(move |v| Matrix::from_vec(r, c, v).unwrap()),
            proptest::collection::vec(-5.0_f64..5.0, c),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_reconstruction_roundtrips(a in symmetric_matrix(12)) {
        let e = symmetric_eigen(&a).unwrap();
        prop_assert!(e.reconstruct().max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn eigenvalues_match_between_independent_solvers(a in symmetric_matrix(10)) {
        let ql = symmetric_eigen(&a).unwrap();
        let jac = jacobi_eigen(&a).unwrap();
        for (x, y) in ql.values.iter().zip(&jac.values) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal(a in symmetric_matrix(10)) {
        let e = symmetric_eigen(&a).unwrap();
        let n = a.rows();
        let vtv = e.vectors.transposed().matmul(&e.vectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Matrix::identity(n)) < 1e-8);
    }

    #[test]
    fn eigenvalue_sum_equals_trace(a in symmetric_matrix(12)) {
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..a.rows()).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7);
    }

    #[test]
    fn matvec_is_linear((a, x) in any_matrix(12), alpha in -3.0_f64..3.0) {
        let scaled: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let lhs = a.matvec(&scaled);
        let rhs: Vec<f64> = a.matvec(&x).iter().map(|v| alpha * v).collect();
        for (p, q) in lhs.iter().zip(&rhs) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_matvec_consistency((a, x) in any_matrix(10)) {
        // (Aᵀ)ᵀ x == A x
        let via_double_transpose = a.transposed().transposed().matvec(&x);
        let direct = a.matvec(&x);
        for (p, q) in via_double_transpose.iter().zip(&direct) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal((a, _x) in any_matrix(9)) {
        let g = a.gram();
        prop_assert!(g.is_symmetric(1e-9));
        for i in 0..g.rows() {
            prop_assert!(g[(i, i)] >= -1e-12); // diagonal of B·Bᵀ is ‖row‖² ≥ 0
        }
    }

    #[test]
    fn tiled_matvec_matches_dense(a in symmetric_matrix(24), tile in 1_usize..9) {
        let tm = TiledMatrix::new(&a, tile).unwrap();
        let x: Vec<f64> = (0..a.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let dense = a.matvec(&x);
        let tiled = tm.matvec(&x);
        for (p, q) in dense.iter().zip(&tiled) {
            // f32 tiles: tolerance scales with n and magnitudes.
            prop_assert!((p - q).abs() < 1e-3, "{p} vs {q}");
        }
    }

    #[test]
    fn symmetric_pairs_partition_logical_tiles(n in 1_usize..200, tile in 1_usize..65) {
        let g = TileGrid::new(n, tile).unwrap();
        let total: usize = g.symmetric_pairs().iter().map(|p| p.logical_tiles()).sum();
        prop_assert_eq!(total, g.logical_tiles());
        let b = g.blocks();
        prop_assert_eq!(g.symmetric_pairs().len(), b * (b + 1) / 2);
    }

    #[test]
    fn mvm_transposed_equals_transpose_then_mvm(
        (a, xf) in any_matrix(24),
        tile in 1_usize..9,
        sparsify in proptest::bool::ANY,
    ) {
        // The bidirectional OPCM read (`Tᵀ·x` on the stored array) must
        // agree with physically transposing the matrix first, for every
        // tile including zero-padded fringe tiles, and regardless of the
        // sparse-input skip in the kernel.
        let n = a.rows().min(a.cols());
        let square = Matrix::from_fn(n, n, |r, c| a[(r, c)]);
        let grid = TileGrid::new(n, tile).unwrap();
        let t = grid.tile();
        let mut x: Vec<f32> = xf.iter().take(t).map(|&v| v as f32).collect();
        x.resize(t, 0.5);
        if sparsify {
            for (i, v) in x.iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v = 0.0;
                }
            }
        }
        let transposed = square.transposed();
        for br in 0..grid.blocks() {
            for bc in 0..grid.blocks() {
                let fwd = Tile::from_matrix(&square, &grid, TileIndex { row: br, col: bc });
                let flipped = Tile::from_matrix(&transposed, &grid, TileIndex { row: bc, col: br });
                let mut via_bidirectional = vec![0.0_f32; t];
                let mut via_transpose = vec![0.0_f32; t];
                fwd.mvm_transposed(&x, &mut via_bidirectional);
                flipped.mvm(&x, &mut via_transpose);
                for (p, q) in via_bidirectional.iter().zip(&via_transpose) {
                    prop_assert!((p - q).abs() < 1e-3, "tile ({br},{bc}): {p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn spectral_fn_square_is_psd(a in symmetric_matrix(8)) {
        let e = symmetric_eigen(&a).unwrap();
        let sq = e.apply_fn(|x| x * x);
        // A² is PSD: xᵀA²x = ‖Ax‖² ≥ 0 for a few probe vectors.
        for probe in 0..4_usize {
            let x: Vec<f64> = (0..a.rows()).map(|i| ((i + probe) % 3) as f64 - 1.0).collect();
            let ax = sq.matvec(&x);
            let quad: f64 = x.iter().zip(&ax).map(|(p, q)| p * q).sum();
            prop_assert!(quad >= -1e-6);
        }
    }
}
