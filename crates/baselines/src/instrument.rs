//! Shared event-emission plumbing for the baseline solvers.
//!
//! Every baseline exposes a `*_observed` variant that streams
//! [`sophie_solve::SolveEvent`]s at its natural iteration granularity
//! (sweeps, integration steps, exchange rounds, or perturbation rounds).
//! The events never touch a solver's RNG path, so the plain entry points
//! delegate to the observed ones with a
//! [`NullObserver`](sophie_solve::NullObserver) and stay bit-identical.

use sophie_solve::{OpCounts, SolveEvent, SolveObserver};

/// Hamming distance between two spin assignments.
pub(crate) fn spin_flips(a: &[i8], b: &[i8]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Tracks the target crossing and best round for event emission, alongside
/// (not replacing) a baseline's own best bookkeeping.
///
/// `TargetReached` fires when the solver's best-so-far first meets the
/// target, checked at each round boundary — for solvers that capture the
/// best mid-round (e.g. per-flip in SA), this is the round in which the
/// crossing happened, not an after-the-fact resync.
pub(crate) struct BaselineEvents {
    target: Option<f64>,
    hit: bool,
}

impl BaselineEvents {
    /// Emits `RunStarted` and the round-0 `GlobalSync` for the initial
    /// state (plus `TargetReached` if it already meets the target).
    pub fn start(
        solver: &'static str,
        dimension: usize,
        planned_iterations: usize,
        seed: u64,
        target: Option<f64>,
        initial_cut: f64,
        observer: &mut dyn SolveObserver,
    ) -> Self {
        observer.on_event(&SolveEvent::RunStarted {
            solver,
            dimension,
            planned_iterations,
            seed,
            target,
        });
        observer.on_event(&SolveEvent::GlobalSync {
            round: 0,
            cut: initial_cut,
            activity: 0,
            ops_delta: OpCounts::default(),
        });
        let mut ev = BaselineEvents { target, hit: false };
        ev.check_target(0, initial_cut, observer);
        ev
    }

    /// Emits the `GlobalSync` for one finished round and the
    /// `TargetReached` if `best_cut` crossed the target this round.
    pub fn round(
        &mut self,
        round: usize,
        cut: f64,
        activity: usize,
        best_cut: f64,
        observer: &mut dyn SolveObserver,
    ) {
        observer.on_event(&SolveEvent::GlobalSync {
            round,
            cut,
            activity,
            ops_delta: OpCounts::default(),
        });
        self.check_target(round, best_cut, observer);
    }

    /// Emits `RunFinished`.
    pub fn finish(
        self,
        best_cut: f64,
        best_round: usize,
        rounds_run: usize,
        observer: &mut dyn SolveObserver,
    ) {
        observer.on_event(&SolveEvent::RunFinished {
            best_cut,
            best_round,
            rounds_run,
            ops: OpCounts::default(),
        });
    }

    fn check_target(&mut self, round: usize, best_cut: f64, observer: &mut dyn SolveObserver) {
        if self.hit {
            return;
        }
        if let Some(t) = self.target {
            if best_cut >= t {
                self.hit = true;
                observer.on_event(&SolveEvent::TargetReached {
                    round,
                    cut: best_cut,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use sophie_graph::generate::{gnm, WeightDist};
    use sophie_solve::{SolveReport, TraceRecorder};

    /// Every observed baseline must (a) leave the plain outcome
    /// bit-identical and (b) produce a well-formed report: one cut per
    /// round plus the initial state, one activity per round, and a
    /// consistent best.
    fn check_report(report: &SolveReport, solver: &str, rounds: usize, best_cut: f64) {
        assert_eq!(report.solver, solver);
        assert_eq!(report.iterations_run, rounds);
        assert_eq!(report.cut_trace.len(), rounds + 1);
        assert_eq!(report.activity_trace.len(), rounds);
        assert_eq!(report.best_cut, best_cut);
        assert!(
            report.iterations_to_target.is_some(),
            "{solver}: easy target must be reached"
        );
    }

    #[test]
    fn observed_variants_match_plain_and_emit_reports() {
        let g = gnm(40, 160, WeightDist::Unit, 5).unwrap();
        let easy_target = Some(1.0);

        let sa_cfg = crate::sa::SaConfig {
            sweeps: 30,
            ..Default::default()
        };
        let plain = crate::sa::anneal(&g, &sa_cfg);
        let mut rec = TraceRecorder::new();
        let obs = crate::sa::anneal_observed(&g, &sa_cfg, easy_target, &mut rec);
        assert_eq!(plain.best_cut, obs.best_cut);
        assert_eq!(plain.best_spins, obs.best_spins);
        assert_eq!(plain.attempts, obs.attempts);
        check_report(&rec.report(), "sa", 30, plain.best_cut);

        let sb_cfg = crate::sb::SbConfig {
            steps: 40,
            ..Default::default()
        };
        let plain = crate::sb::bifurcate(&g, &sb_cfg);
        let mut rec = TraceRecorder::new();
        let obs = crate::sb::bifurcate_observed(&g, &sb_cfg, easy_target, &mut rec);
        assert_eq!(plain.best_cut, obs.best_cut);
        assert_eq!(plain.best_spins, obs.best_spins);
        check_report(&rec.report(), "sb", 40, plain.best_cut);

        let pt_cfg = crate::tempering::PtConfig {
            exchanges: 10,
            ..Default::default()
        };
        let plain = crate::tempering::temper(&g, &pt_cfg);
        let mut rec = TraceRecorder::new();
        let obs = crate::tempering::temper_observed(&g, &pt_cfg, easy_target, &mut rec);
        assert_eq!(plain.best_cut, obs.best_cut);
        assert_eq!(plain.swaps_accepted, obs.swaps_accepted);
        check_report(&rec.report(), "pt", 10, plain.best_cut);

        let bls_cfg = crate::local_search::BlsConfig {
            rounds: 8,
            ..Default::default()
        };
        let plain = crate::local_search::search(&g, &bls_cfg);
        let mut rec = TraceRecorder::new();
        let obs = crate::local_search::search_observed(&g, &bls_cfg, easy_target, &mut rec);
        assert_eq!(plain.best_cut, obs.best_cut);
        assert_eq!(plain.moves, obs.moves);
        check_report(&rec.report(), "bls", 8, plain.best_cut);
    }
}
