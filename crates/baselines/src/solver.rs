//! [`Solver`] trait impls for the four software baselines.
//!
//! Each adapter wraps one baseline config and runs the corresponding
//! `*_controlled` loop through a [`TraceRecorder`], so `Solver::solve`
//! emits exactly the event stream the legacy `*_observed` entry point
//! emits and returns the same [`SolveReport`] a caller-side recorder
//! would have rebuilt. Construction validates the config (the conditions
//! the legacy entry points `assert!`) and returns a typed
//! [`SolveError::BadConfig`] instead of panicking. Per [`Solver`]
//! contract, the job's seed overrides the config seed and the job budget
//! caps the baseline's iteration knob (sweeps / steps / exchanges /
//! rounds); for SA a capped sweep count also recomputes the geometric
//! cooling exponent, exactly as running the legacy entry point with that
//! smaller `sweeps` would.

use sophie_graph::cut::spins_to_binary;
use sophie_solve::{
    Capabilities, SolveError, SolveJob, SolveObserver, SolveReport, Solver, Tee, TraceRecorder,
};

use crate::local_search::{search_controlled, BlsConfig};
use crate::sa::{anneal_controlled, SaConfig};
use crate::sb::{bifurcate_controlled, SbConfig};
use crate::tempering::{temper_controlled, PtConfig};

fn bad_config(solver: &str, message: &str) -> SolveError {
    SolveError::BadConfig {
        solver: solver.to_string(),
        message: message.to_string(),
    }
}

fn bad_budget(solver: &str, knob: &str) -> SolveError {
    SolveError::BadJob {
        solver: solver.to_string(),
        message: format!("budget caps {knob} to 0; this solver needs at least one"),
    }
}

/// Registry-constructible simulated-annealing solver.
#[derive(Debug, Clone)]
pub struct SaSolver {
    config: SaConfig,
}

impl SaSolver {
    /// Wraps the config, validating the conditions [`crate::sa::anneal`]
    /// would panic on.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for zero sweeps or non-positive /
    /// mis-ordered temperatures.
    pub fn new(config: SaConfig) -> Result<Self, SolveError> {
        if config.sweeps == 0 {
            return Err(bad_config("sa", "sweeps must be positive"));
        }
        if !(config.t_initial >= config.t_final && config.t_final > 0.0) {
            return Err(bad_config(
                "sa",
                "temperatures must satisfy t_initial >= t_final > 0",
            ));
        }
        Ok(SaSolver { config })
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &SaConfig {
        &self.config
    }
}

impl Solver for SaSolver {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError> {
        let sweeps = job.budget.cap(self.config.sweeps);
        if sweeps == 0 {
            return Err(bad_budget("sa", "sweeps"));
        }
        let config = SaConfig {
            sweeps,
            seed: job.seed,
            ..self.config
        };
        let control = job.control();
        let mut recorder = TraceRecorder::new();
        let out = {
            let mut tee = Tee::new(&mut recorder, observer);
            anneal_controlled(&job.graph, &config, job.target, &control, &mut tee)
        };
        let mut report = recorder.into_report();
        // Events carry no bits; attach the winning state out-of-band.
        report.best_bits = spins_to_binary(&out.best_spins);
        Ok(report)
    }
}

/// Registry-constructible simulated-bifurcation solver.
#[derive(Debug, Clone)]
pub struct SbSolver {
    config: SbConfig,
}

impl SbSolver {
    /// Wraps the config, validating the conditions
    /// [`crate::sb::bifurcate`] would panic on.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for zero steps or non-positive `dt`.
    pub fn new(config: SbConfig) -> Result<Self, SolveError> {
        if config.steps == 0 {
            return Err(bad_config("sb", "steps must be positive"));
        }
        if config.dt <= 0.0 {
            return Err(bad_config("sb", "dt must be positive"));
        }
        Ok(SbSolver { config })
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &SbConfig {
        &self.config
    }
}

impl Solver for SbSolver {
    fn name(&self) -> &'static str {
        "sb"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError> {
        let steps = job.budget.cap(self.config.steps);
        if steps == 0 {
            return Err(bad_budget("sb", "steps"));
        }
        let config = SbConfig {
            steps,
            seed: job.seed,
            ..self.config
        };
        let control = job.control();
        let mut recorder = TraceRecorder::new();
        let out = {
            let mut tee = Tee::new(&mut recorder, observer);
            bifurcate_controlled(&job.graph, &config, job.target, &control, &mut tee)
        };
        let mut report = recorder.into_report();
        report.best_bits = spins_to_binary(&out.best_spins);
        Ok(report)
    }
}

/// Registry-constructible parallel-tempering solver.
#[derive(Debug, Clone)]
pub struct PtSolver {
    config: PtConfig,
}

impl PtSolver {
    /// Wraps the config, validating the conditions [`crate::tempering::temper`]
    /// would panic on.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for fewer than two replicas or
    /// non-positive / mis-ordered temperatures.
    pub fn new(config: PtConfig) -> Result<Self, SolveError> {
        if config.replicas < 2 {
            return Err(bad_config("pt", "need at least 2 replicas"));
        }
        if !(config.t_min > 0.0 && config.t_min <= config.t_max) {
            return Err(bad_config(
                "pt",
                "temperatures must satisfy 0 < t_min <= t_max",
            ));
        }
        Ok(PtSolver { config })
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &PtConfig {
        &self.config
    }
}

impl Solver for PtSolver {
    fn name(&self) -> &'static str {
        "pt"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError> {
        let config = PtConfig {
            exchanges: job.budget.cap(self.config.exchanges),
            seed: job.seed,
            ..self.config
        };
        let control = job.control();
        let mut recorder = TraceRecorder::new();
        let out = {
            let mut tee = Tee::new(&mut recorder, observer);
            temper_controlled(&job.graph, &config, job.target, &control, &mut tee)
        };
        let mut report = recorder.into_report();
        report.best_bits = spins_to_binary(&out.best_spins);
        Ok(report)
    }
}

/// Registry-constructible breakout-local-search solver.
#[derive(Debug, Clone)]
pub struct BlsSolver {
    config: BlsConfig,
}

impl BlsSolver {
    /// Wraps the config, validating the conditions
    /// [`crate::local_search::search`] would panic on.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for zero rounds.
    pub fn new(config: BlsConfig) -> Result<Self, SolveError> {
        if config.rounds == 0 {
            return Err(bad_config("bls", "rounds must be positive"));
        }
        Ok(BlsSolver { config })
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &BlsConfig {
        &self.config
    }
}

impl Solver for BlsSolver {
    fn name(&self) -> &'static str {
        "bls"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError> {
        let rounds = job.budget.cap(self.config.rounds);
        if rounds == 0 {
            return Err(bad_budget("bls", "rounds"));
        }
        let config = BlsConfig {
            rounds,
            seed: job.seed,
            ..self.config
        };
        let control = job.control();
        let mut recorder = TraceRecorder::new();
        let out = {
            let mut tee = Tee::new(&mut recorder, observer);
            search_controlled(&job.graph, &config, job.target, &control, &mut tee)
        };
        let mut report = recorder.into_report();
        report.best_bits = spins_to_binary(&out.best_spins);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use sophie_graph::generate::{gnm, WeightDist};
    use sophie_graph::Graph;
    use sophie_solve::{EventLog, JobBudget};

    use super::*;

    fn graph() -> Arc<Graph> {
        Arc::new(gnm(40, 160, WeightDist::PlusMinusOne, 7).unwrap())
    }

    fn job(g: &Arc<Graph>, seed: u64) -> SolveJob {
        SolveJob::new(Arc::clone(g), seed).with_target(Some(40.0))
    }

    #[test]
    fn sa_trait_solve_matches_legacy_observed_exactly() {
        let g = graph();
        let config = SaConfig {
            sweeps: 30,
            seed: 3,
            ..SaConfig::default()
        };
        let mut legacy = EventLog::new();
        let out = crate::sa::anneal_observed(&g, &config, Some(40.0), &mut legacy);

        let solver = SaSolver::new(SaConfig { seed: 0, ..config }).unwrap();
        let mut modern = EventLog::new();
        let report = solver.solve(&job(&g, 3), &mut modern).unwrap();

        assert_eq!(legacy.events(), modern.events());
        assert_eq!(report.best_cut, out.best_cut);
        assert_eq!(report.solver, "sa");
        assert_eq!(report.iterations_run, 30);
    }

    #[test]
    fn sb_trait_solve_matches_legacy_observed_exactly() {
        let g = graph();
        let config = SbConfig {
            steps: 25,
            seed: 5,
            ..SbConfig::default()
        };
        let mut legacy = EventLog::new();
        let out = crate::sb::bifurcate_observed(&g, &config, Some(40.0), &mut legacy);

        let solver = SbSolver::new(SbConfig { seed: 0, ..config }).unwrap();
        let mut modern = EventLog::new();
        let report = solver.solve(&job(&g, 5), &mut modern).unwrap();

        assert_eq!(legacy.events(), modern.events());
        assert_eq!(report.best_cut, out.best_cut);
        assert_eq!(report.solver, "sb");
    }

    #[test]
    fn pt_trait_solve_matches_legacy_observed_exactly() {
        let g = graph();
        let config = PtConfig {
            exchanges: 10,
            seed: 11,
            ..PtConfig::default()
        };
        let mut legacy = EventLog::new();
        let out = crate::tempering::temper_observed(&g, &config, Some(40.0), &mut legacy);

        let solver = PtSolver::new(PtConfig { seed: 0, ..config }).unwrap();
        let mut modern = EventLog::new();
        let report = solver.solve(&job(&g, 11), &mut modern).unwrap();

        assert_eq!(legacy.events(), modern.events());
        assert_eq!(report.best_cut, out.best_cut);
        assert_eq!(report.solver, "pt");
    }

    #[test]
    fn bls_trait_solve_matches_legacy_observed_exactly() {
        let g = graph();
        let config = BlsConfig {
            rounds: 8,
            seed: 13,
            ..BlsConfig::default()
        };
        let mut legacy = EventLog::new();
        let out = crate::local_search::search_observed(&g, &config, Some(40.0), &mut legacy);

        let solver = BlsSolver::new(BlsConfig { seed: 0, ..config }).unwrap();
        let mut modern = EventLog::new();
        let report = solver.solve(&job(&g, 13), &mut modern).unwrap();

        assert_eq!(legacy.events(), modern.events());
        assert_eq!(report.best_cut, out.best_cut);
        assert_eq!(report.solver, "bls");
    }

    #[test]
    fn budget_caps_the_iteration_knob_and_recools() {
        let g = graph();
        let solver = SaSolver::new(SaConfig {
            sweeps: 100,
            ..SaConfig::default()
        })
        .unwrap();
        let budget = JobBudget {
            max_iterations: Some(12),
            time_limit: None,
        };
        let mut log = EventLog::new();
        let report = solver
            .solve(
                &SolveJob::new(Arc::clone(&g), 1).with_budget(budget),
                &mut log,
            )
            .unwrap();
        assert_eq!(report.iterations_run, 12);
        assert_eq!(report.cut_trace.len(), 13);

        // Capping is equivalent to configuring the smaller sweep count
        // directly (the cooling schedule recomputes from it).
        let mut direct = EventLog::new();
        let _ = crate::sa::anneal_observed(
            &g,
            &SaConfig {
                sweeps: 12,
                seed: 1,
                ..SaConfig::default()
            },
            None,
            &mut direct,
        );
        assert_eq!(log.events(), direct.events());
    }

    #[test]
    fn invalid_configs_are_rejected_at_wrap_time() {
        assert!(SaSolver::new(SaConfig {
            t_initial: 0.1,
            t_final: 1.0,
            ..SaConfig::default()
        })
        .is_err());
        assert!(SbSolver::new(SbConfig {
            dt: 0.0,
            ..SbConfig::default()
        })
        .is_err());
        assert!(PtSolver::new(PtConfig {
            replicas: 1,
            ..PtConfig::default()
        })
        .is_err());
        assert!(BlsSolver::new(BlsConfig {
            rounds: 0,
            ..BlsConfig::default()
        })
        .is_err());
    }
}
