//! Local search with breakout perturbations.
//!
//! A simplified take on Breakout Local Search (BLS \[5\], the CPU solver in
//! Table II): steepest-ascent one-flip moves to a local optimum, then a
//! random multi-flip "breakout" perturbation, repeated for a fixed budget.
//! Also used to polish the best-known reference cuts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sophie_graph::cut::{cut_value, flip_gain, random_spins};
use sophie_graph::Graph;
use sophie_solve::{NullObserver, RunControl, SolveObserver};

use crate::instrument::{spin_flips, BaselineEvents};

/// Configuration for one breakout-local-search run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlsConfig {
    /// Perturbation rounds (each = descend to local optimum + breakout).
    pub rounds: usize,
    /// Spins flipped by one breakout perturbation.
    pub perturbation: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlsConfig {
    fn default() -> Self {
        BlsConfig {
            rounds: 20,
            perturbation: 8,
            seed: 0,
        }
    }
}

/// Result of a local-search run.
#[derive(Debug, Clone)]
pub struct BlsOutcome {
    /// Best cut value reached.
    pub best_cut: f64,
    /// Spin assignment attaining it.
    pub best_spins: Vec<i8>,
    /// One-flip moves applied in total.
    pub moves: u64,
}

/// Steepest-ascent one-flip descent to a local optimum, in place.
/// Returns the resulting cut and the number of moves.
fn descend(graph: &Graph, spins: &mut [i8], mut cut: f64) -> (f64, u64) {
    let n = graph.num_nodes();
    let mut gains: Vec<f64> = (0..n).map(|u| flip_gain(graph, spins, u)).collect();
    let mut moves = 0u64;
    while let Some((u, &g)) = gains.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) {
        if g <= 1e-12 {
            break;
        }
        spins[u] = -spins[u];
        cut += g;
        moves += 1;
        // Incremental gain maintenance: flipping u negates its own gain and
        // shifts neighbors by ±2·w·σ_u·σ_v (recompute locally, O(deg)).
        gains[u] = -g;
        for &(v, _) in graph.neighbors(u) {
            gains[v] = flip_gain(graph, spins, v);
        }
    }
    (cut, moves)
}

/// Runs breakout local search for max-cut on `graph`.
///
/// # Panics
///
/// Panics if `config.rounds == 0`.
#[must_use]
pub fn search(graph: &Graph, config: &BlsConfig) -> BlsOutcome {
    search_observed(graph, config, None, &mut NullObserver)
}

/// Runs breakout local search like [`search`] while emitting
/// [`sophie_solve::SolveEvent`]s to `observer`.
///
/// One perturbation round (descent to a local optimum, preceded by a
/// breakout from round 2 on) maps to one event round: its `GlobalSync`
/// scores the local optimum reached, with `activity` the Hamming distance
/// to the previous round's optimum. Round 0 scores the initial random
/// state. The event stream does not perturb the RNG path — [`search`]
/// delegates here and produces bit-identical outcomes.
///
/// # Panics
///
/// Panics if `config.rounds == 0`.
#[must_use]
pub fn search_observed(
    graph: &Graph,
    config: &BlsConfig,
    target: Option<f64>,
    observer: &mut dyn SolveObserver,
) -> BlsOutcome {
    search_controlled(graph, config, target, &RunControl::unrestricted(), observer)
}

/// The controllable core of [`search_observed`]: polls `control` between
/// perturbation rounds and winds down early (still emitting `RunFinished`,
/// with `rounds_run` reflecting the rounds actually executed) when it
/// requests a stop. The first descent (round 1) always runs. With an
/// unrestricted control this is exactly [`search_observed`].
pub(crate) fn search_controlled(
    graph: &Graph,
    config: &BlsConfig,
    target: Option<f64>,
    control: &RunControl,
    observer: &mut dyn SolveObserver,
) -> BlsOutcome {
    assert!(config.rounds > 0, "rounds must be positive");
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut spins = random_spins(n, &mut rng);
    let mut cut = cut_value(graph, &spins);
    let mut total_moves = 0u64;

    let mut events =
        BaselineEvents::start("bls", n, config.rounds, config.seed, target, cut, observer);
    let mut prev_spins = spins.clone();
    let mut best_round = 1usize;

    let (c, m) = descend(graph, &mut spins, cut);
    cut = c;
    total_moves += m;
    let mut best_cut = cut;
    let mut best_spins = spins.clone();
    events.round(1, cut, spin_flips(&prev_spins, &spins), best_cut, observer);
    prev_spins.copy_from_slice(&spins);

    let mut executed = 1usize;
    for round in 1..config.rounds {
        if control.should_stop() {
            break;
        }
        executed = round + 1;
        // Breakout: random multi-flip perturbation from the best state.
        spins.copy_from_slice(&best_spins);
        for _ in 0..config.perturbation.min(n) {
            let u = rng.gen_range(0..n);
            spins[u] = -spins[u];
        }
        cut = cut_value(graph, &spins);
        let (c, m) = descend(graph, &mut spins, cut);
        cut = c;
        total_moves += m;
        if cut > best_cut {
            best_cut = cut;
            best_spins.copy_from_slice(&spins);
            best_round = round + 1;
        }
        events.round(
            round + 1,
            cut,
            spin_flips(&prev_spins, &spins),
            best_cut,
            observer,
        );
        prev_spins.copy_from_slice(&spins);
    }
    events.finish(best_cut, best_round, executed, observer);
    BlsOutcome {
        best_cut,
        best_spins,
        moves: total_moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, gnm, WeightDist};

    #[test]
    fn solves_k6_exactly() {
        let g = complete(6, WeightDist::Unit, 0).unwrap();
        let out = search(&g, &BlsConfig::default());
        assert_eq!(out.best_cut, 9.0); // 3-3 split of K6
    }

    #[test]
    fn local_optimum_has_no_improving_flip() {
        let g = gnm(60, 240, WeightDist::Unit, 3).unwrap();
        let out = search(
            &g,
            &BlsConfig {
                rounds: 1,
                ..BlsConfig::default()
            },
        );
        for u in 0..60 {
            assert!(
                flip_gain(&g, &out.best_spins, u) <= 1e-9,
                "node {u} improvable"
            );
        }
    }

    #[test]
    fn breakouts_improve_over_single_descent() {
        let g = gnm(120, 700, WeightDist::PlusMinusOne, 11).unwrap();
        let single = search(
            &g,
            &BlsConfig {
                rounds: 1,
                ..BlsConfig::default()
            },
        );
        let multi = search(
            &g,
            &BlsConfig {
                rounds: 30,
                ..BlsConfig::default()
            },
        );
        assert!(multi.best_cut >= single.best_cut);
    }

    #[test]
    fn reported_spins_match_reported_cut() {
        let g = gnm(50, 220, WeightDist::Unit, 5).unwrap();
        let out = search(&g, &BlsConfig::default());
        assert_eq!(cut_value(&g, &out.best_spins), out.best_cut);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(40, 140, WeightDist::Unit, 2).unwrap();
        assert_eq!(
            search(&g, &BlsConfig::default()).best_cut,
            search(&g, &BlsConfig::default()).best_cut
        );
    }
}
