//! Parallel tempering (replica exchange) baseline.
//!
//! Runs several Metropolis replicas at different temperatures and
//! periodically swaps neighboring replicas with the detailed-balance
//! acceptance rule. Stronger than plain annealing on rugged landscapes
//! (e.g. ±1 spin glasses) at the cost of more sweeps; included as the
//! strongest software baseline in the comparison suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sophie_graph::cut::{cut_value, flip_gain, random_spins};
use sophie_graph::Graph;
use sophie_solve::{NullObserver, RunControl, SolveObserver};

use crate::instrument::BaselineEvents;

/// Configuration for a parallel-tempering run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PtConfig {
    /// Number of temperature replicas.
    pub replicas: usize,
    /// Coldest temperature.
    pub t_min: f64,
    /// Hottest temperature.
    pub t_max: f64,
    /// Monte-Carlo sweeps between replica-exchange attempts.
    pub sweeps_per_exchange: usize,
    /// Replica-exchange rounds.
    pub exchanges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PtConfig {
    fn default() -> Self {
        PtConfig {
            replicas: 8,
            t_min: 0.05,
            t_max: 4.0,
            sweeps_per_exchange: 5,
            exchanges: 40,
            seed: 0,
        }
    }
}

/// Result of a parallel-tempering run.
#[derive(Debug, Clone)]
pub struct PtOutcome {
    /// Best cut value reached by any replica.
    pub best_cut: f64,
    /// Spin assignment attaining it.
    pub best_spins: Vec<i8>,
    /// Replica swaps accepted.
    pub swaps_accepted: u64,
    /// Replica swaps attempted.
    pub swaps_attempted: u64,
}

struct Replica {
    spins: Vec<i8>,
    cut: f64,
    temp: f64,
}

/// Runs parallel tempering for max-cut on `graph`.
///
/// # Panics
///
/// Panics if `replicas < 2`, temperatures are non-positive, or
/// `t_min > t_max`.
#[must_use]
pub fn temper(graph: &Graph, config: &PtConfig) -> PtOutcome {
    temper_observed(graph, config, None, &mut NullObserver)
}

/// Runs parallel tempering like [`temper`] while emitting
/// [`sophie_solve::SolveEvent`]s to `observer`.
///
/// One exchange round maps to one event round: each round's `GlobalSync`
/// scores the current best replica (the max of the per-replica cuts) and
/// reports `activity` 0 — with many replicas there is no single spin state
/// whose flips would be meaningful. Round 0 scores the best initial
/// replica. The event stream does not perturb the RNG path — [`temper`]
/// delegates here and produces bit-identical outcomes.
///
/// # Panics
///
/// Panics if `replicas < 2`, temperatures are non-positive, or
/// `t_min > t_max`.
#[must_use]
pub fn temper_observed(
    graph: &Graph,
    config: &PtConfig,
    target: Option<f64>,
    observer: &mut dyn SolveObserver,
) -> PtOutcome {
    temper_controlled(graph, config, target, &RunControl::unrestricted(), observer)
}

/// The controllable core of [`temper_observed`]: polls `control` between
/// exchange rounds and winds down early (still emitting `RunFinished`,
/// with `rounds_run` reflecting the exchanges actually executed) when it
/// requests a stop. With an unrestricted control this is exactly
/// [`temper_observed`].
pub(crate) fn temper_controlled(
    graph: &Graph,
    config: &PtConfig,
    target: Option<f64>,
    control: &RunControl,
    observer: &mut dyn SolveObserver,
) -> PtOutcome {
    assert!(config.replicas >= 2, "need at least 2 replicas");
    assert!(
        config.t_min > 0.0 && config.t_min <= config.t_max,
        "temperatures must satisfy 0 < t_min <= t_max"
    );
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Geometric temperature ladder.
    let ratio = if config.replicas == 1 {
        1.0
    } else {
        (config.t_max / config.t_min).powf(1.0 / (config.replicas - 1) as f64)
    };
    let mut replicas: Vec<Replica> = (0..config.replicas)
        .map(|i| {
            let spins = random_spins(n, &mut rng);
            let cut = cut_value(graph, &spins);
            Replica {
                spins,
                cut,
                temp: config.t_min * ratio.powi(i as i32),
            }
        })
        .collect();

    let mut best_cut = replicas
        .iter()
        .map(|r| r.cut)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut best_spins = replicas
        .iter()
        .max_by(|a, b| a.cut.total_cmp(&b.cut))
        .expect("at least two replicas")
        .spins
        .clone();
    let mut swaps_accepted = 0u64;
    let mut swaps_attempted = 0u64;

    let mut events = BaselineEvents::start(
        "pt",
        n,
        config.exchanges,
        config.seed,
        target,
        best_cut,
        observer,
    );
    let mut best_round = 0usize;

    let mut executed = 0usize;
    for exchange in 0..config.exchanges {
        if control.should_stop() {
            break;
        }
        executed = exchange + 1;
        // Metropolis sweeps within each replica.
        for rep in &mut replicas {
            for _ in 0..config.sweeps_per_exchange * n {
                let u = rng.gen_range(0..n);
                let gain = flip_gain(graph, &rep.spins, u);
                if gain >= 0.0 || rng.gen::<f64>() < (gain / rep.temp).exp() {
                    rep.spins[u] = -rep.spins[u];
                    rep.cut += gain;
                    if rep.cut > best_cut {
                        best_cut = rep.cut;
                        best_spins.copy_from_slice(&rep.spins);
                        best_round = exchange + 1;
                    }
                }
            }
        }
        // Neighbor exchanges: maximizing the cut ⇔ minimizing E = −cut, so
        // accept with min(1, exp(Δβ·ΔE)) = min(1, exp((β_hot−β_cold)(cut_cold−cut_hot))).
        for i in 0..config.replicas - 1 {
            swaps_attempted += 1;
            let beta_lo = 1.0 / replicas[i].temp; // colder (smaller temp → larger beta)
            let beta_hi = 1.0 / replicas[i + 1].temp;
            let delta = (beta_lo - beta_hi) * (replicas[i + 1].cut - replicas[i].cut);
            if delta >= 0.0 || rng.gen::<f64>() < delta.exp() {
                // Swap configurations, keep temperatures in place.
                let (a, b) = replicas.split_at_mut(i + 1);
                std::mem::swap(&mut a[i].spins, &mut b[0].spins);
                std::mem::swap(&mut a[i].cut, &mut b[0].cut);
                swaps_accepted += 1;
            }
        }
        let ensemble_best = replicas
            .iter()
            .map(|r| r.cut)
            .fold(f64::NEG_INFINITY, f64::max);
        events.round(exchange + 1, ensemble_best, 0, best_cut, observer);
    }
    events.finish(best_cut, best_round, executed, observer);
    PtOutcome {
        best_cut,
        best_spins,
        swaps_accepted,
        swaps_attempted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, gnm, WeightDist};

    #[test]
    fn solves_k6_exactly() {
        let g = complete(6, WeightDist::Unit, 0).unwrap();
        let out = temper(&g, &PtConfig::default());
        assert_eq!(out.best_cut, 9.0);
    }

    #[test]
    fn beats_plain_annealing_on_a_spin_glass() {
        let g = complete(60, WeightDist::PlusMinusOne, 11).unwrap();
        let pt = temper(&g, &PtConfig::default());
        let sa = crate::sa::anneal(
            &g,
            &crate::sa::SaConfig {
                sweeps: PtConfig::default().replicas
                    * PtConfig::default().sweeps_per_exchange
                    * PtConfig::default().exchanges,
                ..crate::sa::SaConfig::default()
            },
        );
        // Same sweep budget: PT should match or beat SA.
        assert!(
            pt.best_cut >= sa.best_cut - 2.0,
            "pt {} sa {}",
            pt.best_cut,
            sa.best_cut
        );
    }

    #[test]
    fn reported_spins_match_reported_cut() {
        let g = gnm(50, 200, WeightDist::PlusMinusOne, 3).unwrap();
        let out = temper(&g, &PtConfig::default());
        assert_eq!(cut_value(&g, &out.best_spins), out.best_cut);
    }

    #[test]
    fn swaps_actually_happen() {
        let g = gnm(40, 160, WeightDist::Unit, 5).unwrap();
        let out = temper(&g, &PtConfig::default());
        assert!(out.swaps_attempted > 0);
        assert!(out.swaps_accepted > 0);
        assert!(out.swaps_accepted <= out.swaps_attempted);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(30, 100, WeightDist::Unit, 2).unwrap();
        let a = temper(&g, &PtConfig::default());
        let b = temper(&g, &PtConfig::default());
        assert_eq!(a.best_cut, b.best_cut);
    }

    #[test]
    #[should_panic(expected = "at least 2 replicas")]
    fn rejects_single_replica() {
        let g = complete(4, WeightDist::Unit, 0).unwrap();
        let _ = temper(
            &g,
            &PtConfig {
                replicas: 1,
                ..PtConfig::default()
            },
        );
    }
}
