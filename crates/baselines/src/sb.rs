//! Simulated bifurcation (SB) baseline.
//!
//! SB \[40\] evolves classical oscillator positions `x_i` and momenta `y_i`
//! under a Hamiltonian whose bifurcation parameter ramps up during the
//! run; as the oscillators bifurcate, `sign(x_i)` converges to a
//! low-energy Ising state. The *ballistic* (bSB) variant couples through
//! `x_j`, the *discrete* (dSB) variant through `sign(x_j)` — dSB is the
//! stronger combinatorial solver and the algorithm behind the multi-FPGA
//! machine SOPHIE compares against in Table III \[37\].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sophie_graph::cut::cut_value;
use sophie_graph::Graph;
use sophie_solve::{NullObserver, RunControl, SolveObserver};

use crate::instrument::{spin_flips, BaselineEvents};

/// Coupling variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SbVariant {
    /// Ballistic SB: force uses the continuous positions.
    Ballistic,
    /// Discrete SB: force uses `sign(x_j)` (default; best quality).
    #[default]
    Discrete,
}

/// Configuration for one SB run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SbConfig {
    /// Integration steps.
    pub steps: usize,
    /// Time step Δt (paper values ≈ 0.5–1.25).
    pub dt: f64,
    /// Detuning/positive-bifurcation constant `a0` (usually 1).
    pub a0: f64,
    /// Coupling variant.
    pub variant: SbVariant,
    /// RNG seed for the initial state.
    pub seed: u64,
}

impl Default for SbConfig {
    fn default() -> Self {
        SbConfig {
            steps: 1000,
            dt: 1.0,
            a0: 1.0,
            variant: SbVariant::Discrete,
            seed: 0,
        }
    }
}

/// Result of one SB run.
#[derive(Debug, Clone)]
pub struct SbOutcome {
    /// Best cut value reached (evaluated at `sign(x)` each step).
    pub best_cut: f64,
    /// Spin assignment attaining it.
    pub best_spins: Vec<i8>,
    /// Step at which the best cut was first reached.
    pub best_step: usize,
}

/// Runs simulated bifurcation for max-cut on `graph`.
///
/// The Ising coupling is `J = -A` (max-cut mapping); the coupling strength
/// is normalized per Goto et al. as `c0 = 0.5 / (√N · σ_J)` with `σ_J` the
/// RMS coupling.
///
/// # Panics
///
/// Panics if `config.steps == 0` or `config.dt <= 0`.
#[must_use]
pub fn bifurcate(graph: &Graph, config: &SbConfig) -> SbOutcome {
    bifurcate_observed(graph, config, None, &mut NullObserver)
}

/// Runs simulated bifurcation like [`bifurcate`] while emitting
/// [`sophie_solve::SolveEvent`]s to `observer`.
///
/// One integration step maps to one round: each step ends with a
/// `GlobalSync` scoring `sign(x)`, with `activity` the Hamming distance to
/// the previous step's signs. Round 0 scores the initial oscillator signs
/// (which the plain solver never evaluates — its best tracking starts at
/// the first step, and that is unchanged here). The event stream does not
/// perturb the RNG path — [`bifurcate`] delegates here and produces
/// bit-identical outcomes.
///
/// # Panics
///
/// Panics if `config.steps == 0` or `config.dt <= 0`.
#[must_use]
pub fn bifurcate_observed(
    graph: &Graph,
    config: &SbConfig,
    target: Option<f64>,
    observer: &mut dyn SolveObserver,
) -> SbOutcome {
    bifurcate_controlled(graph, config, target, &RunControl::unrestricted(), observer)
}

/// The controllable core of [`bifurcate_observed`]: polls `control`
/// between integration steps and winds down early (still emitting
/// `RunFinished`, with `rounds_run` reflecting the steps actually
/// executed) when it requests a stop. With an unrestricted control this is
/// exactly [`bifurcate_observed`].
pub(crate) fn bifurcate_controlled(
    graph: &Graph,
    config: &SbConfig,
    target: Option<f64>,
    control: &RunControl,
    observer: &mut dyn SolveObserver,
) -> SbOutcome {
    assert!(config.steps > 0, "steps must be positive");
    assert!(config.dt > 0.0, "dt must be positive");
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // c0 normalization: RMS of the coupling matrix entries.
    let sum_sq: f64 = graph.edges().map(|e| 2.0 * e.w * e.w).sum();
    let sigma_j = (sum_sq / (n.max(2) * (n - 1).max(1)) as f64).sqrt();
    let c0 = if sigma_j > 0.0 {
        0.5 / ((n as f64).sqrt() * sigma_j)
    } else {
        0.0
    };

    let mut x: Vec<f64> = (0..n).map(|_| 0.02 * (rng.gen::<f64>() - 0.5)).collect();
    let mut y: Vec<f64> = (0..n).map(|_| 0.02 * (rng.gen::<f64>() - 0.5)).collect();
    let mut force = vec![0.0_f64; n];
    let mut spins: Vec<i8> = vec![1; n];

    let mut best_cut = f64::NEG_INFINITY;
    let mut best_spins = spins.clone();
    let mut best_step = 0;

    // Round 0 scores the initial oscillator signs; best tracking still
    // starts at the first integration step, exactly as before.
    for (s, &xi) in spins.iter_mut().zip(&x) {
        *s = if xi >= 0.0 { 1 } else { -1 };
    }
    let cut0 = cut_value(graph, &spins);
    let mut events =
        BaselineEvents::start("sb", n, config.steps, config.seed, target, cut0, observer);
    let mut prev_spins = spins.clone();

    let mut executed = 0usize;
    for step in 0..config.steps {
        if control.should_stop() {
            break;
        }
        executed = step + 1;
        let a_t = config.a0 * (step as f64 + 1.0) / config.steps as f64;
        // Force from the coupling: f_i = c0 Σ_j J_ij s_j with J = -w.
        force.fill(0.0);
        match config.variant {
            SbVariant::Discrete => {
                for (u, f) in force.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for &(v, w) in graph.neighbors(u) {
                        acc += -w * x[v].signum();
                    }
                    *f = c0 * acc;
                }
            }
            SbVariant::Ballistic => {
                for (u, f) in force.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for &(v, w) in graph.neighbors(u) {
                        acc += -w * x[v];
                    }
                    *f = c0 * acc;
                }
            }
        }
        for i in 0..n {
            y[i] += (-(config.a0 - a_t) * x[i] + force[i]) * config.dt;
            x[i] += config.a0 * y[i] * config.dt;
            // Inelastic walls at |x| = 1.
            if x[i].abs() > 1.0 {
                x[i] = x[i].signum();
                y[i] = 0.0;
            }
        }
        for (s, &xi) in spins.iter_mut().zip(&x) {
            *s = if xi >= 0.0 { 1 } else { -1 };
        }
        let cut = cut_value(graph, &spins);
        if cut > best_cut {
            best_cut = cut;
            best_spins.copy_from_slice(&spins);
            best_step = step;
        }
        events.round(
            step + 1,
            cut,
            spin_flips(&prev_spins, &spins),
            best_cut,
            observer,
        );
        prev_spins.copy_from_slice(&spins);
    }
    events.finish(best_cut, best_step + 1, executed, observer);
    SbOutcome {
        best_cut,
        best_spins,
        best_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, gnm, WeightDist};

    #[test]
    fn solves_k4_exactly() {
        let g = complete(4, WeightDist::Unit, 0).unwrap();
        let out = bifurcate(&g, &SbConfig::default());
        assert_eq!(out.best_cut, 4.0);
    }

    #[test]
    fn discrete_beats_random_clearly() {
        let g = gnm(100, 500, WeightDist::Unit, 7).unwrap();
        let out = bifurcate(&g, &SbConfig::default());
        assert!(out.best_cut > 300.0, "cut {}", out.best_cut); // random ≈ 250
    }

    #[test]
    fn ballistic_variant_also_works() {
        let g = gnm(80, 400, WeightDist::Unit, 3).unwrap();
        let out = bifurcate(
            &g,
            &SbConfig {
                variant: SbVariant::Ballistic,
                ..SbConfig::default()
            },
        );
        assert!(out.best_cut > 230.0, "cut {}", out.best_cut); // random ≈ 200
    }

    #[test]
    fn reported_spins_match_reported_cut() {
        let g = gnm(50, 200, WeightDist::PlusMinusOne, 9).unwrap();
        let out = bifurcate(&g, &SbConfig::default());
        assert_eq!(cut_value(&g, &out.best_spins), out.best_cut);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(40, 160, WeightDist::Unit, 1).unwrap();
        let a = bifurcate(&g, &SbConfig::default());
        let b = bifurcate(&g, &SbConfig::default());
        assert_eq!(a.best_cut, b.best_cut);
    }

    #[test]
    fn handles_weightless_degenerate_graph() {
        // All-zero weights: c0 = 0 and every cut is 0.
        let mut b = sophie_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 0.0).unwrap();
        let g = b.build().unwrap();
        let out = bifurcate(
            &g,
            &SbConfig {
                steps: 10,
                ..SbConfig::default()
            },
        );
        assert_eq!(out.best_cut, 0.0);
    }
}
