//! Published results of competing Ising machines (paper Tables II & III).
//!
//! The paper takes every competitor number from the cited publication
//! rather than re-running the hardware; we keep them as typed constants so
//! the comparison tables can be regenerated with the provenance explicit.
//! `time_s` is the reported run time per job (ranges keep their lower and
//! upper ends); `quality` preserves the footnote semantics of Table II.

/// Hardware substrate of a published result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Substrate {
    /// Photonic accelerator.
    Photonic,
    /// FPGA implementation.
    Fpga,
    /// Analog/mixed-signal electronics.
    Electronic,
    /// CPU software.
    Cpu,
    /// Quantum annealer.
    Quantum,
}

/// How a published result reports solution quality.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QualityNote {
    /// Time to reach the ground state with 90 % probability.
    T90,
    /// Average error relative to the best-known solution.
    AvgError(f64),
    /// Best-case error relative to the best-known solution.
    BestError(f64),
    /// Not reported for this graph.
    Unreported,
}

/// One published (architecture, graph) data point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReferencePoint {
    /// Architecture name as used in the paper's tables.
    pub architecture: &'static str,
    /// Hardware substrate.
    pub substrate: Substrate,
    /// Benchmark graph name.
    pub graph: &'static str,
    /// Reported run time in seconds (lower bound of a range).
    pub time_s: f64,
    /// Upper bound when the paper reports a range (else equals `time_s`).
    pub time_hi_s: f64,
    /// Quality annotation.
    pub quality: QualityNote,
    /// Accelerator/chip/FPGA count, when stated.
    pub instances: Option<u32>,
}

/// Table II reference rows (small graphs).
pub const TABLE2: &[ReferencePoint] = &[
    ReferencePoint {
        architecture: "INPRIS",
        substrate: Substrate::Photonic,
        graph: "K100",
        time_s: 1e-6,
        time_hi_s: 10e-6,
        quality: QualityNote::T90,
        instances: None,
    },
    ReferencePoint {
        architecture: "PRIS",
        substrate: Substrate::Fpga,
        graph: "K100",
        time_s: 50e-6,
        time_hi_s: 1e-3,
        quality: QualityNote::T90,
        instances: None,
    },
    ReferencePoint {
        architecture: "CIM",
        substrate: Substrate::Photonic,
        graph: "K100",
        time_s: 2.3e-3,
        time_hi_s: 2.3e-3,
        quality: QualityNote::T90,
        instances: None,
    },
    ReferencePoint {
        architecture: "CIM",
        substrate: Substrate::Photonic,
        graph: "G22",
        time_s: 5e-3,
        time_hi_s: 5e-3,
        quality: QualityNote::BestError(0.008),
        instances: None,
    },
    ReferencePoint {
        architecture: "BRIM",
        substrate: Substrate::Electronic,
        graph: "G22",
        time_s: 0.25e-6,
        time_hi_s: 0.25e-6,
        quality: QualityNote::BestError(0.003),
        instances: None,
    },
    ReferencePoint {
        architecture: "BLS",
        substrate: Substrate::Cpu,
        graph: "G1",
        time_s: 13.0,
        time_hi_s: 13.0,
        quality: QualityNote::AvgError(0.001),
        instances: None,
    },
    ReferencePoint {
        architecture: "BLS",
        substrate: Substrate::Cpu,
        graph: "G22",
        time_s: 560.0,
        time_hi_s: 560.0,
        quality: QualityNote::AvgError(0.001),
        instances: None,
    },
    ReferencePoint {
        architecture: "D-Wave",
        substrate: Substrate::Quantum,
        graph: "K100",
        time_s: 5e18,
        time_hi_s: 5e18,
        quality: QualityNote::T90,
        instances: None,
    },
];

/// Table II rows reported for SOPHIE itself (for cross-checking our model
/// output against the paper's).
pub const TABLE2_SOPHIE: &[ReferencePoint] = &[
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "K100",
        time_s: 0.31e-6,
        time_hi_s: 0.31e-6,
        quality: QualityNote::T90,
        instances: Some(4),
    },
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "G1",
        time_s: 0.096e-6,
        time_hi_s: 0.096e-6,
        quality: QualityNote::AvgError(0.041),
        instances: Some(4),
    },
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "G22",
        time_s: 0.2e-6,
        time_hi_s: 0.2e-6,
        quality: QualityNote::AvgError(0.039),
        instances: Some(4),
    },
];

/// Table III reference rows (large graphs).
pub const TABLE3: &[ReferencePoint] = &[
    ReferencePoint {
        architecture: "SB",
        substrate: Substrate::Fpga,
        graph: "K16384",
        time_s: 1.21e-3,
        time_hi_s: 1.21e-3,
        quality: QualityNote::Unreported,
        instances: Some(8),
    },
    ReferencePoint {
        architecture: "mBRIM3D",
        substrate: Substrate::Electronic,
        graph: "K16384",
        time_s: 1.1e-6,
        time_hi_s: 1.1e-6,
        quality: QualityNote::Unreported,
        instances: Some(4),
    },
];

/// Table III rows reported for SOPHIE itself.
pub const TABLE3_SOPHIE: &[ReferencePoint] = &[
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "K16384",
        time_s: 38.25e-6,
        time_hi_s: 38.25e-6,
        quality: QualityNote::Unreported,
        instances: Some(1),
    },
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "K16384",
        time_s: 20.40e-6,
        time_hi_s: 20.40e-6,
        quality: QualityNote::Unreported,
        instances: Some(2),
    },
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "K16384",
        time_s: 9.69e-6,
        time_hi_s: 9.69e-6,
        quality: QualityNote::Unreported,
        instances: Some(4),
    },
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "K32768",
        time_s: 129.0e-6,
        time_hi_s: 129.0e-6,
        quality: QualityNote::Unreported,
        instances: Some(1),
    },
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "K32768",
        time_s: 68.80e-6,
        time_hi_s: 68.80e-6,
        quality: QualityNote::Unreported,
        instances: Some(2),
    },
    ReferencePoint {
        architecture: "SOPHIE (paper)",
        substrate: Substrate::Photonic,
        graph: "K32768",
        time_s: 32.34e-6,
        time_hi_s: 32.34e-6,
        quality: QualityNote::Unreported,
        instances: Some(4),
    },
];

/// All reference points for a given graph name.
#[must_use]
pub fn for_graph(graph: &str) -> Vec<ReferencePoint> {
    TABLE2
        .iter()
        .chain(TABLE3)
        .filter(|p| p.graph == graph)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_speedup_claims_hold_within_the_tables() {
        // SOPHIE ≥3× faster than INPRIS on K100.
        let sophie_k100 = TABLE2_SOPHIE.iter().find(|p| p.graph == "K100").unwrap();
        let inpris = TABLE2.iter().find(|p| p.architecture == "INPRIS").unwrap();
        assert!(inpris.time_s / sophie_k100.time_s >= 3.0);
        // SOPHIE (4 accel) ≥125× faster than 8-FPGA SB on K16384.
        let sophie_k16384 = TABLE3_SOPHIE
            .iter()
            .find(|p| p.graph == "K16384" && p.instances == Some(4))
            .unwrap();
        let sb = TABLE3.iter().find(|p| p.architecture == "SB").unwrap();
        assert!(sb.time_s / sophie_k16384.time_s >= 124.0);
        // mBRIM3D is still faster than 4-accelerator SOPHIE (by ≈8.8×).
        let mbrim = TABLE3.iter().find(|p| p.architecture == "mBRIM3D").unwrap();
        let ratio = sophie_k16384.time_s / mbrim.time_s;
        assert!((8.0..10.0).contains(&ratio));
    }

    #[test]
    fn k32768_is_about_3x_k16384_for_sophie() {
        let t16 = TABLE3_SOPHIE
            .iter()
            .find(|p| p.graph == "K16384" && p.instances == Some(1))
            .unwrap();
        let t32 = TABLE3_SOPHIE
            .iter()
            .find(|p| p.graph == "K32768" && p.instances == Some(1))
            .unwrap();
        let ratio = t32.time_s / t16.time_s;
        assert!((3.0..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn for_graph_filters_correctly() {
        let pts = for_graph("G22");
        assert!(pts.iter().all(|p| p.graph == "G22"));
        assert!(pts.iter().any(|p| p.architecture == "BRIM"));
        assert!(pts.iter().any(|p| p.architecture == "CIM"));
    }

    #[test]
    fn ranges_are_ordered() {
        for p in TABLE2.iter().chain(TABLE3) {
            assert!(p.time_hi_s >= p.time_s, "{}", p.architecture);
        }
    }
}
