//! Baseline Ising/max-cut solvers and published comparison numbers.
//!
//! SOPHIE's evaluation (Tables II & III) compares against software and
//! hardware competitors. This crate provides:
//!
//! * [`sa`] — simulated annealing (Metropolis, geometric cooling);
//! * [`sb`] — ballistic and discrete simulated bifurcation, the algorithm
//!   behind the multi-FPGA machine of Table III;
//! * [`tempering`] — parallel tempering (replica exchange);
//! * [`local_search`] — breakout-style local search (the BLS row);
//! * [`best_known`] — the reference pipeline computing best-known-quality
//!   cuts for regenerated instances;
//! * [`mod@reference`] — the published numbers of INPRIS/PRIS/CIM/BRIM/BLS/
//!   D-Wave/SB/mBRIM as typed constants with provenance.
//!
//! Every solver also has an `*_observed` entry point
//! ([`sa::anneal_observed`], [`sb::bifurcate_observed`],
//! [`tempering::temper_observed`], [`local_search::search_observed`]) that
//! streams `sophie_solve::SolveEvent`s to a `SolveObserver`, so these
//! baselines and the SOPHIE engine can be compared through one
//! instrumentation vocabulary — and a [`sophie_solve::Solver`] adapter
//! ([`SaSolver`], [`SbSolver`], [`PtSolver`], [`BlsSolver`]) so they run
//! through the shared registry and batch scheduler.
//!
//! # Example
//!
//! ```
//! use sophie_baselines::sb::{bifurcate, SbConfig};
//! use sophie_graph::generate::{complete, WeightDist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = complete(8, WeightDist::Unit, 0)?;
//! let out = bifurcate(&g, &SbConfig::default());
//! assert!(out.best_cut >= 14.0); // optimum of K8 is 16
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod best_known;
mod instrument;
pub mod local_search;
pub mod reference;
pub mod sa;
pub mod sb;
mod solver;
pub mod tempering;

pub use best_known::{best_known_cut, Effort};
pub use local_search::{BlsConfig, BlsOutcome};
pub use sa::{SaConfig, SaOutcome};
pub use sb::{SbConfig, SbOutcome, SbVariant};
pub use solver::{BlsSolver, PtSolver, SaSolver, SbSolver};
pub use tempering::{PtConfig, PtOutcome};
