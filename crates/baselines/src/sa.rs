//! Simulated annealing baseline.
//!
//! Single-spin Metropolis dynamics with a geometric cooling schedule — the
//! classic software solver every Ising-machine paper measures against, and
//! one leg of the best-known-cut reference pipeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sophie_graph::cut::{cut_value, flip_gain, random_spins};
use sophie_graph::Graph;
use sophie_solve::{NullObserver, RunControl, SolveObserver};

use crate::instrument::{spin_flips, BaselineEvents};

/// Configuration for one annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SaConfig {
    /// Full sweeps (each sweep attempts one flip per node).
    pub sweeps: usize,
    /// Initial temperature (in units of cut weight).
    pub t_initial: f64,
    /// Final temperature.
    pub t_final: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            sweeps: 200,
            t_initial: 4.0,
            t_final: 0.05,
            seed: 0,
        }
    }
}

/// Result of one annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// Best cut value reached.
    pub best_cut: f64,
    /// Spin assignment attaining it.
    pub best_spins: Vec<i8>,
    /// Sweep at which the best cut was first reached.
    pub best_sweep: usize,
    /// Flip attempts accepted.
    pub accepted: u64,
    /// Total flip attempts.
    pub attempts: u64,
}

/// Runs simulated annealing for max-cut on `graph`.
///
/// # Panics
///
/// Panics if `config.sweeps == 0` temperatures are non-positive or
/// mis-ordered.
#[must_use]
pub fn anneal(graph: &Graph, config: &SaConfig) -> SaOutcome {
    anneal_observed(graph, config, None, &mut NullObserver)
}

/// Runs simulated annealing like [`anneal`] while emitting
/// [`sophie_solve::SolveEvent`]s to `observer`.
///
/// One sweep maps to one round: each sweep ends with a `GlobalSync` whose
/// `cut` is the current (not best) cut and whose `activity` is the Hamming
/// distance to the sweep-start state. Because SA captures its best
/// per-flip, `TargetReached` fires at the end of the sweep in which the
/// best first crossed `target`. The event stream does not perturb the
/// Metropolis RNG path — [`anneal`] delegates here and produces
/// bit-identical outcomes.
///
/// # Panics
///
/// Panics if `config.sweeps == 0` or temperatures are non-positive or
/// mis-ordered.
#[must_use]
pub fn anneal_observed(
    graph: &Graph,
    config: &SaConfig,
    target: Option<f64>,
    observer: &mut dyn SolveObserver,
) -> SaOutcome {
    anneal_controlled(graph, config, target, &RunControl::unrestricted(), observer)
}

/// The controllable core of [`anneal_observed`]: polls `control` between
/// sweeps and winds down early (still emitting `RunFinished`, with
/// `rounds_run` reflecting the sweeps actually executed) when it requests
/// a stop. With an unrestricted control this is exactly
/// [`anneal_observed`].
pub(crate) fn anneal_controlled(
    graph: &Graph,
    config: &SaConfig,
    target: Option<f64>,
    control: &RunControl,
    observer: &mut dyn SolveObserver,
) -> SaOutcome {
    assert!(config.sweeps > 0, "sweeps must be positive");
    assert!(
        config.t_initial >= config.t_final && config.t_final > 0.0,
        "temperatures must satisfy t_initial >= t_final > 0"
    );
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut spins = random_spins(n, &mut rng);
    let mut cut = cut_value(graph, &spins);
    let mut best_cut = cut;
    let mut best_spins = spins.clone();
    let mut best_sweep = 0;
    let mut accepted = 0u64;
    let mut attempts = 0u64;

    let mut events =
        BaselineEvents::start("sa", n, config.sweeps, config.seed, target, cut, observer);
    let mut best_round = 0usize;
    let mut sweep_start = spins.clone();

    let cooling = (config.t_final / config.t_initial).powf(1.0 / config.sweeps as f64);
    let mut temp = config.t_initial;

    let mut executed = 0usize;
    for sweep in 0..config.sweeps {
        if control.should_stop() {
            break;
        }
        executed = sweep + 1;
        sweep_start.copy_from_slice(&spins);
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let gain = flip_gain(graph, &spins, u);
            attempts += 1;
            // Metropolis on -cut (we maximize the cut).
            if gain >= 0.0 || rng.gen::<f64>() < (gain / temp).exp() {
                spins[u] = -spins[u];
                cut += gain;
                accepted += 1;
                if cut > best_cut {
                    best_cut = cut;
                    best_spins.copy_from_slice(&spins);
                    best_sweep = sweep;
                    best_round = sweep + 1;
                }
            }
        }
        temp *= cooling;
        events.round(
            sweep + 1,
            cut,
            spin_flips(&sweep_start, &spins),
            best_cut,
            observer,
        );
    }
    events.finish(best_cut, best_round, executed, observer);
    SaOutcome {
        best_cut,
        best_spins,
        best_sweep,
        accepted,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, gnm, WeightDist};

    #[test]
    fn solves_k4_exactly() {
        let g = complete(4, WeightDist::Unit, 0).unwrap();
        let out = anneal(&g, &SaConfig::default());
        assert_eq!(out.best_cut, 4.0);
    }

    #[test]
    fn tracked_cut_matches_final_spins() {
        let g = gnm(60, 240, WeightDist::PlusMinusOne, 3).unwrap();
        let out = anneal(&g, &SaConfig::default());
        assert_eq!(cut_value(&g, &out.best_spins), out.best_cut);
    }

    #[test]
    fn beats_random_assignments() {
        let g = gnm(100, 500, WeightDist::Unit, 5).unwrap();
        let out = anneal(&g, &SaConfig::default());
        assert!(out.best_cut > 290.0, "cut {}", out.best_cut); // random ≈ 250
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(40, 120, WeightDist::Unit, 1).unwrap();
        let a = anneal(&g, &SaConfig::default());
        let b = anneal(&g, &SaConfig::default());
        assert_eq!(a.best_cut, b.best_cut);
        assert_eq!(a.best_spins, b.best_spins);
    }

    #[test]
    fn acceptance_rate_is_sane() {
        let g = gnm(50, 200, WeightDist::Unit, 2).unwrap();
        let out = anneal(&g, &SaConfig::default());
        assert!(out.accepted > 0);
        assert!(out.accepted <= out.attempts);
        assert_eq!(out.attempts, (200 * 50) as u64);
    }

    #[test]
    #[should_panic(expected = "temperatures")]
    fn rejects_bad_temperatures() {
        let g = complete(4, WeightDist::Unit, 0).unwrap();
        let _ = anneal(
            &g,
            &SaConfig {
                t_initial: 0.1,
                t_final: 1.0,
                ..SaConfig::default()
            },
        );
    }
}
