//! Best-known cut references for generated instances.
//!
//! The paper normalizes solution quality against "best-known" cuts from
//! the max-cut literature. Our instances are regenerated (same
//! order/degree/weights as GSET but different seeds), so their best-known
//! values must be computed: a multi-restart discrete-SB sweep polished by
//! breakout local search, which reaches literature-quality cuts on graphs
//! of this size.

use sophie_graph::Graph;

use crate::local_search::{search, BlsConfig};
use crate::sb::{bifurcate, SbConfig};

/// Effort levels for the reference computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Effort {
    /// A couple of restarts — for tests and fast mode.
    Quick,
    /// The default: several restarts, longer schedules.
    #[default]
    Standard,
    /// Many restarts — for the full experiment runs.
    Thorough,
}

impl Effort {
    fn restarts(self) -> u64 {
        match self {
            Effort::Quick => 2,
            Effort::Standard => 6,
            Effort::Thorough => 16,
        }
    }

    fn sb_steps(self, n: usize) -> usize {
        let base = match self {
            Effort::Quick => 400,
            Effort::Standard => 1500,
            Effort::Thorough => 4000,
        };
        base.max(n / 2)
    }
}

/// Computes a best-known-quality reference cut for `graph`.
///
/// Deterministic for a given `(graph, effort)`: restart seeds are fixed.
#[must_use]
pub fn best_known_cut(graph: &Graph, effort: Effort) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for restart in 0..effort.restarts() {
        let sb = bifurcate(
            graph,
            &SbConfig {
                steps: effort.sb_steps(graph.num_nodes()),
                seed: 1000 + restart,
                ..SbConfig::default()
            },
        );
        best = best.max(sb.best_cut);
        // Polish the SB solution with local search from the same seed.
        let bls = search(
            graph,
            &BlsConfig {
                rounds: 10,
                perturbation: 6,
                seed: 2000 + restart,
            },
        );
        best = best.max(bls.best_cut);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, gnm, WeightDist};

    #[test]
    fn exact_on_tiny_complete_graphs() {
        // Optimum of K_n (unit weights) is ⌊n/2⌋·⌈n/2⌉.
        for n in [4usize, 5, 6, 8] {
            let g = complete(n, WeightDist::Unit, 0).unwrap();
            let want = (n / 2 * n.div_ceil(2)) as f64;
            assert_eq!(best_known_cut(&g, Effort::Quick), want, "K{n}");
        }
    }

    #[test]
    fn monotone_in_effort() {
        let g = gnm(80, 400, WeightDist::PlusMinusOne, 4).unwrap();
        let quick = best_known_cut(&g, Effort::Quick);
        let std = best_known_cut(&g, Effort::Standard);
        assert!(std >= quick);
    }

    #[test]
    fn deterministic() {
        let g = gnm(60, 240, WeightDist::Unit, 9).unwrap();
        assert_eq!(
            best_known_cut(&g, Effort::Quick),
            best_known_cut(&g, Effort::Quick)
        );
    }
}
