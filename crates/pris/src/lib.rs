//! Reference implementation of the photonic recurrent Ising sampler (PRIS).
//!
//! PRIS (Roques-Carmes et al., *Nature Communications* 2020 — reference
//! \[15\] of the SOPHIE paper) finds low-energy states of an Ising model by
//! iterating a noisy thresholded matrix-vector recurrence. SOPHIE's core
//! contribution is a tiled, communication-avoiding modification of this
//! algorithm, so the unmodified version implemented here serves both as the
//! mathematical foundation (`sophie-core` reuses the preprocessing and
//! trackers) and as the software baseline in Table II.
//!
//! Pipeline:
//!
//! 1. [`dropout`] — eigenvalue dropout `C = U·Sq_α(D)·Uᵀ` (Eq. 2–4);
//! 2. [`sampler`] — the recurrence `X = C·S + η`, `S' = [X ≥ θ]` (Eq. 5–7);
//! 3. [`runner`] — end-to-end max-cut runs with [`convergence`] tracking.
//!
//! # Example
//!
//! ```
//! use sophie_graph::generate::{complete, WeightDist};
//! use sophie_pris::runner::{solve_max_cut, RunConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = complete(8, WeightDist::Unit, 0)?;
//! let out = solve_max_cut(&g, 0.0, &RunConfig { iterations: 200, phi: 0.3, seed: 1, target_cut: None })?;
//! assert!(out.best_cut >= 12.0); // optimum for K8 is 16
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod convergence;
pub mod dropout;
mod error;
pub mod noise;
pub mod runner;
pub mod sampler;
mod solver;
pub mod tuning;

pub use convergence::CutTracker;
pub use dropout::{DeltaVariant, Preprocessor};
pub use error::{PrisError, Result};
pub use runner::{RunConfig, RunOutcome};
pub use sampler::PrisModel;
pub use solver::{PrisJobConfig, PrisSolver};
pub use tuning::{TuningEntry, TuningTable};
