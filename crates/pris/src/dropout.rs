//! Eigenvalue dropout preprocessing (paper §II-C, Eq. 2–4).
//!
//! The PRIS algorithm replaces the coupling matrix `K` by
//! `C = U · Sq_α(D) · Uᵀ` where `K = U D Uᵀ` and
//! `Sq_α(D) = 2·Re(√(D + αΔ))`. Taking the real part of the square root
//! zeroes every negative shifted eigenvalue — "dropping" them — while `α`
//! controls how much of the spectrum survives: `α = 0` keeps only the
//! non-negative eigenvalues; `α = 1` shifts by the Gershgorin radius so the
//! whole spectrum becomes non-negative.
//!
//! The paper defines `Δ_ii = Σ_{j≠i} |K_ij|` (a node-indexed quantity) but
//! applies it inside the eigenbasis, leaving the pairing between eigenvalue
//! index and node index unspecified. Two faithful readings are provided:
//!
//! * [`DeltaVariant::Gershgorin`] (default) — the uniform bound
//!   `Δ = (max_i Δ_ii)·I`, which guarantees `D + αΔ ⪰ 0` at `α = 1` by the
//!   Gershgorin circle theorem and keeps the knob's documented behaviour;
//! * [`DeltaVariant::SortedPerNode`] — pairs the ascending eigenvalues with
//!   the ascending per-node sums, preserving the per-node scale.

use sophie_linalg::eigen::{symmetric_eigen, SymmetricEigen};
use sophie_linalg::Matrix;

use crate::error::{PrisError, Result};

/// How the dropout shift `Δ` is paired with the eigenvalues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeltaVariant {
    /// Uniform Gershgorin shift `max_i Σ_{j≠i}|K_ij|` (default).
    #[default]
    Gershgorin,
    /// Ascending per-node sums paired with ascending eigenvalues.
    SortedPerNode,
}

/// Caches the eigendecomposition of `K` so the transformation matrix can be
/// rebuilt cheaply while sweeping `α` (Fig. 6 runs a whole grid of `α`
/// values per graph).
#[derive(Debug, Clone)]
pub struct Preprocessor {
    eigen: SymmetricEigen,
    delta: Vec<f64>,
    variant: DeltaVariant,
}

impl Preprocessor {
    /// Decomposes the coupling matrix once.
    ///
    /// `delta` is the node-indexed `Δ_ii = Σ_{j≠i}|K_ij|` vector, available
    /// from [`sophie_graph::coupling::delta_diagonal`] without touching `K`.
    ///
    /// # Errors
    ///
    /// * [`PrisError::BadDelta`] if `delta.len() != k.rows()`.
    /// * [`PrisError::Linalg`] if `k` is not square/symmetric or the
    ///   eigensolver fails.
    pub fn new(k: &Matrix, delta: Vec<f64>, variant: DeltaVariant) -> Result<Self> {
        if delta.len() != k.rows() {
            return Err(PrisError::BadDelta {
                expected: k.rows(),
                found: delta.len(),
            });
        }
        let eigen = symmetric_eigen(k)?;
        Ok(Preprocessor {
            eigen,
            delta,
            variant,
        })
    }

    /// Dimension of the problem.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.eigen.dim()
    }

    /// Borrow the cached eigendecomposition.
    #[must_use]
    pub fn eigen(&self) -> &SymmetricEigen {
        &self.eigen
    }

    /// Shift applied to eigenvalue index `i` before the square root.
    fn shift(&self, i: usize, sorted_delta: &[f64]) -> f64 {
        match self.variant {
            DeltaVariant::Gershgorin => sorted_delta[sorted_delta.len() - 1],
            DeltaVariant::SortedPerNode => sorted_delta[i],
        }
    }

    /// Builds the transformation matrix `C = U · Sq_α(D) · Uᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`PrisError::BadAlpha`] unless `0 ≤ α ≤ 1`.
    pub fn transform(&self, alpha: f64) -> Result<Matrix> {
        if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
            return Err(PrisError::BadAlpha { alpha });
        }
        let mut sorted_delta = self.delta.clone();
        sorted_delta.sort_by(f64::total_cmp);
        let n = self.dim();
        let f: Vec<f64> = (0..n)
            .map(|i| {
                let shifted = self.eigen.values[i] + alpha * self.shift(i, &sorted_delta);
                // 2·Re(√x): zero for negative x, 2√x otherwise.
                if shifted > 0.0 {
                    2.0 * shifted.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        Ok(self.build_from(&f))
    }

    fn build_from(&self, f: &[f64]) -> Matrix {
        let n = self.dim();
        // B = U·diag(√f); C = B·Bᵀ (f is non-negative by construction).
        let mut b = Matrix::zeros(n, n);
        for r in 0..n {
            let urow = self.eigen.vectors.row(r);
            let brow = b.row_mut(r);
            for c in 0..n {
                brow[c] = urow[c] * f[c].sqrt();
            }
        }
        b.gram()
    }
}

/// One-shot convenience wrapper around [`Preprocessor`] for a single `α`.
///
/// # Errors
///
/// Same as [`Preprocessor::new`] and [`Preprocessor::transform`].
///
/// ```
/// use sophie_linalg::Matrix;
/// use sophie_pris::dropout::{transformation_matrix, DeltaVariant};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = Matrix::from_rows(&[&[0.0, -1.0], &[-1.0, 0.0]])?;
/// let delta = vec![1.0, 1.0];
/// let c = transformation_matrix(&k, delta, 0.0, DeltaVariant::Gershgorin)?;
/// assert!(c.is_symmetric(1e-10));
/// # Ok(())
/// # }
/// ```
pub fn transformation_matrix(
    k: &Matrix,
    delta: Vec<f64>,
    alpha: f64,
    variant: DeltaVariant,
) -> Result<Matrix> {
    Preprocessor::new(k, delta, variant)?.transform(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::coupling::{coupling_matrix, delta_diagonal};
    use sophie_graph::generate::{complete, WeightDist};

    fn setup(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let g = complete(n, WeightDist::PlusMinusOne, seed).unwrap();
        (coupling_matrix(&g), delta_diagonal(&g))
    }

    #[test]
    fn transform_is_symmetric_psd() {
        let (k, d) = setup(12, 3);
        let c = transformation_matrix(&k, d, 0.0, DeltaVariant::Gershgorin).unwrap();
        assert!(c.is_symmetric(1e-9));
        let eig = sophie_linalg::eigen::symmetric_eigen(&c).unwrap();
        assert!(
            eig.values[0] > -1e-9,
            "C must be PSD, min λ = {}",
            eig.values[0]
        );
    }

    #[test]
    fn alpha_zero_drops_negative_eigenvalues() {
        let (k, d) = setup(10, 7);
        let pre = Preprocessor::new(&k, d, DeltaVariant::Gershgorin).unwrap();
        let c = pre.transform(0.0).unwrap();
        let c_eig = sophie_linalg::eigen::symmetric_eigen(&c).unwrap();
        let kept_in_c = c_eig.values.iter().filter(|&&v| v > 1e-9).count();
        let positive_in_k = pre.eigen().values.iter().filter(|&&v| v > 1e-9).count();
        assert_eq!(kept_in_c, positive_in_k);
    }

    #[test]
    fn alpha_one_keeps_full_rank_under_gershgorin() {
        let (k, d) = setup(10, 5);
        let pre = Preprocessor::new(&k, d, DeltaVariant::Gershgorin).unwrap();
        let c = pre.transform(1.0).unwrap();
        let c_eig = sophie_linalg::eigen::symmetric_eigen(&c).unwrap();
        // λ_i + max Δ > 0 strictly for generic random instances.
        let kept = c_eig.values.iter().filter(|&&v| v > 1e-9).count();
        assert_eq!(kept, 10);
    }

    #[test]
    fn eigenvalues_of_c_match_formula() {
        let (k, d) = setup(8, 11);
        let pre = Preprocessor::new(&k, d.clone(), DeltaVariant::Gershgorin).unwrap();
        let c = pre.transform(0.3).unwrap();
        let shift = d.iter().fold(0.0_f64, |m, &x| m.max(x));
        let mut expect: Vec<f64> = pre
            .eigen()
            .values
            .iter()
            .map(|&l| {
                let s = l + 0.3 * shift;
                if s > 0.0 {
                    2.0 * s.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        expect.sort_by(f64::total_cmp);
        let got = sophie_linalg::eigen::symmetric_eigen(&c).unwrap().values;
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_out_of_range_alpha() {
        let (k, d) = setup(6, 1);
        let pre = Preprocessor::new(&k, d, DeltaVariant::Gershgorin).unwrap();
        assert!(pre.transform(-0.1).is_err());
        assert!(pre.transform(1.1).is_err());
        assert!(pre.transform(f64::NAN).is_err());
    }

    #[test]
    fn rejects_wrong_delta_length() {
        let (k, _) = setup(6, 1);
        assert!(matches!(
            Preprocessor::new(&k, vec![1.0; 5], DeltaVariant::Gershgorin),
            Err(PrisError::BadDelta {
                expected: 6,
                found: 5
            })
        ));
    }

    #[test]
    fn sorted_variant_also_yields_psd() {
        let (k, d) = setup(9, 13);
        let c = transformation_matrix(&k, d, 0.5, DeltaVariant::SortedPerNode).unwrap();
        let eig = sophie_linalg::eigen::symmetric_eigen(&c).unwrap();
        assert!(eig.values[0] > -1e-9);
    }

    #[test]
    fn sweep_reuses_decomposition() {
        let (k, d) = setup(8, 2);
        let pre = Preprocessor::new(&k, d.clone(), DeltaVariant::Gershgorin).unwrap();
        for &alpha in &[0.0, 0.25, 0.5, 1.0] {
            let via_cache = pre.transform(alpha).unwrap();
            let direct =
                transformation_matrix(&k, d.clone(), alpha, DeltaVariant::Gershgorin).unwrap();
            assert!(via_cache.max_abs_diff(&direct) < 1e-10);
        }
    }
}
