//! Convergence and best-solution tracking shared by all solvers.
//!
//! The paper's figures report two derived quantities: the best cut found
//! within an iteration budget (Fig. 6, 7) and the first iteration at which a
//! run reaches a quality target such as 95 % of the best-known cut
//! (Fig. 8, 10, and the `T_x` columns of Table II). [`CutTracker`] records
//! both in a single pass.

/// Streaming tracker for cut-value observations over iterations.
#[derive(Debug, Clone)]
pub struct CutTracker {
    target: Option<f64>,
    best_cut: f64,
    best_iteration: usize,
    first_hit: Option<usize>,
    observations: usize,
}

impl CutTracker {
    /// Starts a tracker; `target` is the cut value that counts as
    /// "converged" (e.g. 95 % of best-known), or `None` to only track the
    /// best.
    #[must_use]
    pub fn new(target: Option<f64>) -> Self {
        CutTracker {
            target,
            best_cut: f64::NEG_INFINITY,
            best_iteration: 0,
            first_hit: None,
            observations: 0,
        }
    }

    /// Records the cut value observed at `iteration`.
    pub fn observe(&mut self, iteration: usize, cut: f64) {
        self.observations += 1;
        if cut > self.best_cut {
            self.best_cut = cut;
            self.best_iteration = iteration;
        }
        if self.first_hit.is_none() {
            if let Some(t) = self.target {
                if cut >= t {
                    self.first_hit = Some(iteration);
                }
            }
        }
    }

    /// Best cut observed so far (`-inf` before any observation).
    #[must_use]
    pub fn best_cut(&self) -> f64 {
        self.best_cut
    }

    /// Iteration at which the best cut was first observed.
    #[must_use]
    pub fn best_iteration(&self) -> usize {
        self.best_iteration
    }

    /// First iteration meeting the target, if it was ever met.
    #[must_use]
    pub fn first_hit(&self) -> Option<usize> {
        self.first_hit
    }

    /// Total number of observations recorded.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The configured target, if any.
    #[must_use]
    pub fn target(&self) -> Option<f64> {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_best_and_its_iteration() {
        let mut t = CutTracker::new(None);
        t.observe(0, 5.0);
        t.observe(1, 9.0);
        t.observe(2, 7.0);
        assert_eq!(t.best_cut(), 9.0);
        assert_eq!(t.best_iteration(), 1);
        assert_eq!(t.observations(), 3);
        assert_eq!(t.first_hit(), None);
    }

    #[test]
    fn first_hit_is_the_first_crossing() {
        let mut t = CutTracker::new(Some(8.0));
        t.observe(0, 5.0);
        t.observe(1, 8.0);
        t.observe(2, 12.0);
        assert_eq!(t.first_hit(), Some(1));
    }

    #[test]
    fn target_never_met_stays_none() {
        let mut t = CutTracker::new(Some(100.0));
        for i in 0..10 {
            t.observe(i, i as f64);
        }
        assert_eq!(t.first_hit(), None);
        assert_eq!(t.best_cut(), 9.0);
    }

    #[test]
    fn ties_do_not_move_best_iteration() {
        let mut t = CutTracker::new(None);
        t.observe(3, 4.0);
        t.observe(5, 4.0);
        assert_eq!(t.best_iteration(), 3);
    }

    #[test]
    fn empty_tracker_reports_neg_infinity() {
        let t = CutTracker::new(Some(1.0));
        assert_eq!(t.best_cut(), f64::NEG_INFINITY);
        assert_eq!(t.target(), Some(1.0));
    }
}
