//! Convergence tracking (re-exported from `sophie-solve`).
//!
//! [`CutTracker`] started life in this crate and was later promoted to the
//! solver-agnostic `sophie-solve` instrumentation layer so the SOPHIE
//! engine and the baselines could share the exact implementation instead
//! of duplicating it. This module re-exports it at its historical path;
//! new code should prefer `sophie_solve::CutTracker` (or the richer
//! `sophie_solve::SolutionTracker`) directly.

pub use sophie_solve::CutTracker;
