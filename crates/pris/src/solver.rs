//! [`Solver`] trait impl for the PRIS reference sampler.

use std::sync::{Arc, Mutex, Weak};

use sophie_graph::Graph;
use sophie_solve::{
    Capabilities, SolveError, SolveJob, SolveObserver, SolveReport, Solver, Tee, TraceRecorder,
};

use crate::runner::{run_controlled, RunConfig};
use crate::sampler::PrisModel;

/// Typed config for registry-constructed PRIS solvers: the preprocessing
/// strength plus the per-run sampler parameters (seed and target come from
/// each [`SolveJob`]).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrisJobConfig {
    /// Eigenvalue-dropout factor α.
    pub alpha: f64,
    /// Recurrent iterations per job.
    pub iterations: usize,
    /// Noise level φ.
    pub phi: f64,
}

impl Default for PrisJobConfig {
    fn default() -> Self {
        let run = RunConfig::default();
        PrisJobConfig {
            alpha: 0.0,
            iterations: run.iterations,
            phi: run.phi,
        }
    }
}

/// Registry-constructible PRIS solver: wraps a [`PrisJobConfig`] and
/// builds the sampler model (an eigendecomposition of the transformed
/// coupling matrix) lazily per graph, caching the last one by `Arc`
/// identity exactly like the engine adapters.
#[derive(Debug)]
pub struct PrisSolver {
    config: PrisJobConfig,
    model: Mutex<Option<(Weak<Graph>, Arc<PrisModel>)>>,
}

impl PrisSolver {
    /// Wraps the config; no model is built yet.
    #[must_use]
    pub fn new(config: PrisJobConfig) -> Self {
        PrisSolver {
            config,
            model: Mutex::new(None),
        }
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &PrisJobConfig {
        &self.config
    }

    fn model_for(&self, graph: &Arc<Graph>) -> Result<Arc<PrisModel>, SolveError> {
        let mut slot = self.model.lock().expect("model cache lock");
        if let Some((cached_graph, model)) = slot.as_ref() {
            if cached_graph
                .upgrade()
                .is_some_and(|g| Arc::ptr_eq(&g, graph))
            {
                return Ok(Arc::clone(model));
            }
        }
        let k = sophie_graph::coupling::coupling_matrix(graph);
        let delta = sophie_graph::coupling::delta_diagonal(graph);
        let c = crate::dropout::transformation_matrix(
            &k,
            delta,
            self.config.alpha,
            crate::dropout::DeltaVariant::Gershgorin,
        )
        .map_err(failed)?;
        let model = Arc::new(PrisModel::new(c).map_err(failed)?);
        *slot = Some((Arc::downgrade(graph), Arc::clone(&model)));
        Ok(model)
    }
}

fn failed(e: crate::error::PrisError) -> SolveError {
    SolveError::Failed {
        solver: "pris".to_string(),
        message: e.to_string(),
    }
}

impl Solver for PrisSolver {
    fn name(&self) -> &'static str {
        "pris"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError> {
        let model = self.model_for(&job.graph)?;
        let run = RunConfig {
            iterations: job.budget.cap(self.config.iterations),
            phi: self.config.phi,
            seed: job.seed,
            target_cut: job.target,
        };
        let control = job.control();
        let mut recorder = TraceRecorder::new();
        let outcome = {
            let mut tee = Tee::new(&mut recorder, observer);
            run_controlled(&model, &job.graph, &run, &control, &mut tee).map_err(failed)?
        };
        let mut report = recorder.into_report();
        // Events carry no bits; attach the winning state out-of-band so
        // problem decoders can map the report back to their domain.
        report.best_bits = outcome.best_bits;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{gnm, WeightDist};
    use sophie_solve::EventLog;

    #[test]
    fn trait_solve_matches_legacy_run_observed_exactly() {
        let g = Arc::new(gnm(30, 90, WeightDist::Unit, 5).unwrap());
        let config = PrisJobConfig {
            alpha: 0.0,
            iterations: 40,
            phi: 0.15,
        };

        let k = sophie_graph::coupling::coupling_matrix(&g);
        let delta = sophie_graph::coupling::delta_diagonal(&g);
        let c = crate::dropout::transformation_matrix(
            &k,
            delta,
            config.alpha,
            crate::dropout::DeltaVariant::Gershgorin,
        )
        .unwrap();
        let model = PrisModel::new(c).unwrap();
        let run = RunConfig {
            iterations: config.iterations,
            phi: config.phi,
            seed: 9,
            target_cut: Some(50.0),
        };
        let mut legacy = EventLog::new();
        let outcome = crate::runner::run_observed(&model, &g, &run, &mut legacy).unwrap();

        let solver = PrisSolver::new(config);
        let mut modern = EventLog::new();
        let job = SolveJob::new(Arc::clone(&g), 9).with_target(Some(50.0));
        let report = solver.solve(&job, &mut modern).unwrap();

        assert_eq!(legacy.events(), modern.events());
        assert_eq!(report.best_cut, outcome.best_cut);
        assert_eq!(report.iterations_run, outcome.iterations);
        assert_eq!(report.iterations_to_target, outcome.iterations_to_target);
        assert_eq!(report.solver, "pris");
    }

    #[test]
    fn model_is_cached_per_graph() {
        let g = Arc::new(gnm(20, 60, WeightDist::Unit, 1).unwrap());
        let solver = PrisSolver::new(PrisJobConfig {
            iterations: 5,
            ..PrisJobConfig::default()
        });
        let a = Arc::as_ptr(&solver.model_for(&g).unwrap());
        let b = Arc::as_ptr(&solver.model_for(&g).unwrap());
        assert_eq!(a, b);
    }
}
