//! The recurrent PRIS sampling step (paper Eq. 5–7).
//!
//! State is a binary vector `S ∈ {0,1}^N`. One iteration computes
//! `X = C·S + η` with Gaussian `η`, then thresholds per component against
//! `θ_i = ½ Σ_j C_ij`. Run long enough, the induced Markov chain
//! concentrates on low-energy (high-cut) configurations.

use rand::Rng;
use sophie_linalg::Matrix;

use crate::error::{PrisError, Result};
use crate::noise::NoiseModel;

/// An immutable PRIS model: the transformation matrix and its thresholds.
#[derive(Debug, Clone)]
pub struct PrisModel {
    c: Matrix,
    thresholds: Vec<f64>,
    noise_scales: Vec<f64>,
}

impl PrisModel {
    /// Wraps a transformation matrix produced by eigenvalue dropout.
    ///
    /// # Errors
    ///
    /// Returns [`PrisError::Linalg`] if `c` is empty, rectangular, or
    /// non-symmetric.
    pub fn new(c: Matrix) -> Result<Self> {
        if c.rows() == 0 {
            return Err(PrisError::Linalg(sophie_linalg::LinalgError::Empty));
        }
        if !c.is_square() {
            return Err(PrisError::Linalg(sophie_linalg::LinalgError::NotSquare {
                rows: c.rows(),
                cols: c.cols(),
            }));
        }
        let asym = c.max_asymmetry();
        if asym > 1e-6 * (1.0 + c.max_abs()) {
            return Err(PrisError::Linalg(
                sophie_linalg::LinalgError::NotSymmetric {
                    max_asymmetry: asym,
                },
            ));
        }
        let thresholds: Vec<f64> = c.row_sums().iter().map(|s| 0.5 * s).collect();
        let noise_scales = crate::noise::row_scales(&c);
        Ok(PrisModel {
            c,
            thresholds,
            noise_scales,
        })
    }

    /// Problem dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.thresholds.len()
    }

    /// The transformation matrix.
    #[must_use]
    pub fn matrix(&self) -> &Matrix {
        &self.c
    }

    /// Per-component thresholds `θ_i = ½ Σ_j C_ij`.
    #[must_use]
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Builds the noise model for a given φ under this matrix's row scales.
    ///
    /// # Errors
    ///
    /// Returns [`PrisError::BadNoise`] for negative/NaN φ.
    pub fn noise(&self, phi: f64) -> Result<NoiseModel> {
        NoiseModel::new(phi, self.noise_scales.clone())
    }

    /// The noiseless field `C·S` for a binary state.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.dim()`.
    #[must_use]
    pub fn field(&self, bits: &[bool]) -> Vec<f64> {
        assert_eq!(bits.len(), self.dim(), "state length mismatch");
        let s: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        self.c.matvec(&s)
    }

    /// Executes one recurrent iteration in place.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent with the model dimension.
    pub fn step<R: Rng + ?Sized>(&self, bits: &mut [bool], noise: &NoiseModel, rng: &mut R) {
        let mut x = self.field(bits);
        noise.perturb(&mut x, rng);
        for (bit, (xi, th)) in bits.iter_mut().zip(x.iter().zip(&self.thresholds)) {
            *bit = xi >= th;
        }
    }

    /// Draws a uniformly random initial state.
    pub fn random_state<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<bool> {
        (0..self.dim()).map(|_| rng.gen_bool(0.5)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> PrisModel {
        // A PSD matrix: C = vvᵀ with v = (1, 1).
        let c = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        PrisModel::new(c).unwrap()
    }

    #[test]
    fn thresholds_are_half_row_sums() {
        let m = tiny_model();
        assert_eq!(m.thresholds(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_nonsymmetric_matrix() {
        let c = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(PrisModel::new(c).is_err());
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        assert!(PrisModel::new(Matrix::zeros(2, 3)).is_err());
        assert!(PrisModel::new(Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn field_matches_matvec() {
        let m = tiny_model();
        assert_eq!(m.field(&[true, false]), vec![1.0, 1.0]);
        assert_eq!(m.field(&[true, true]), vec![2.0, 2.0]);
        assert_eq!(m.field(&[false, false]), vec![0.0, 0.0]);
    }

    #[test]
    fn noiseless_step_is_deterministic_threshold() {
        let m = tiny_model();
        let noise = m.noise(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        // field([1,0]) = (1,1) = θ → both bits become 1 (x >= θ).
        let mut bits = vec![true, false];
        m.step(&mut bits, &noise, &mut rng);
        assert_eq!(bits, vec![true, true]);
        // field([0,0]) = (0,0) < θ → both stay 0.
        let mut bits = vec![false, false];
        m.step(&mut bits, &noise, &mut rng);
        assert_eq!(bits, vec![false, false]);
    }

    #[test]
    fn noisy_step_is_reproducible_per_seed() {
        let m = tiny_model();
        let noise = m.noise(0.5).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut bits = vec![true, false];
            for _ in 0..50 {
                m.step(&mut bits, &noise, &mut rng);
            }
            bits
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn random_state_has_model_dimension() {
        let m = tiny_model();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(m.random_state(&mut rng).len(), 2);
    }
}
