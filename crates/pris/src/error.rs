//! Error types for the PRIS algorithm crate.

use std::error::Error;
use std::fmt;

/// Errors produced by PRIS preprocessing and sampling.
#[derive(Debug)]
#[non_exhaustive]
pub enum PrisError {
    /// `α` outside `[0, 1]` (or NaN).
    BadAlpha {
        /// The rejected value.
        alpha: f64,
    },
    /// Noise level `φ` negative or NaN.
    BadNoise {
        /// The rejected value.
        phi: f64,
    },
    /// The dropout diagonal has the wrong length.
    BadDelta {
        /// Expected length (matrix dimension).
        expected: usize,
        /// Supplied length.
        found: usize,
    },
    /// An underlying linear-algebra failure.
    Linalg(sophie_linalg::LinalgError),
}

impl fmt::Display for PrisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrisError::BadAlpha { alpha } => {
                write!(
                    f,
                    "eigenvalue dropout factor must be in [0, 1], got {alpha}"
                )
            }
            PrisError::BadNoise { phi } => {
                write!(f, "noise level must be non-negative, got {phi}")
            }
            PrisError::BadDelta { expected, found } => {
                write!(
                    f,
                    "dropout diagonal has length {found}, expected {expected}"
                )
            }
            PrisError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl Error for PrisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PrisError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sophie_linalg::LinalgError> for PrisError {
    fn from(e: sophie_linalg::LinalgError) -> Self {
        PrisError::Linalg(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PrisError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(PrisError::BadAlpha { alpha: 2.0 }
            .to_string()
            .contains("[0, 1]"));
        assert!(PrisError::BadNoise { phi: -1.0 }.to_string().contains("-1"));
    }

    #[test]
    fn linalg_errors_chain_source() {
        let e = PrisError::from(sophie_linalg::LinalgError::Empty);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PrisError>();
    }
}
