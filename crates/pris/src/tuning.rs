//! Parameter tuning: the (graph order, graph density) → (φ, α) lookup
//! table the paper proposes in §IV-B.
//!
//! The optimal noise level and dropout factor depend on the graph's order
//! and density \[4\]; the paper suggests building a lookup table offline for
//! common (order, density) pairs and consulting it before any computation.
//! [`TuningTable`] implements exactly that: it is populated by running
//! short calibration sweeps on representative random instances
//! ([`calibrate`]) and queried by nearest neighbor in log-order/density
//! space.

use rand::Rng;

use sophie_graph::generate::{gnm, WeightDist};
use sophie_graph::Graph;

use crate::error::Result;
use crate::runner::{run, RunConfig};
use crate::sampler::PrisModel;

/// The tuned operating point for one workload class.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TuningEntry {
    /// Graph order this entry was calibrated at.
    pub order: usize,
    /// Edge density this entry was calibrated at.
    pub density: f64,
    /// Best noise level found.
    pub phi: f64,
    /// Best dropout factor found.
    pub alpha: f64,
    /// Average best cut achieved during calibration (diagnostic).
    pub calibration_cut: f64,
}

/// A lookup table from workload class to tuned parameters.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TuningTable {
    entries: Vec<TuningEntry>,
}

impl TuningTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        TuningTable::default()
    }

    /// Number of calibrated entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been calibrated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a calibrated entry.
    pub fn insert(&mut self, entry: TuningEntry) {
        self.entries.push(entry);
    }

    /// Iterates over the calibrated entries.
    pub fn iter(&self) -> impl Iterator<Item = &TuningEntry> + '_ {
        self.entries.iter()
    }

    /// Looks up the nearest entry for a workload of `order` nodes and
    /// `density` edge density. Distance is Euclidean in
    /// `(log₁₀ order, log₁₀ density)` space, matching how the optimum
    /// drifts with both quantities.
    #[must_use]
    pub fn lookup(&self, order: usize, density: f64) -> Option<&TuningEntry> {
        let key = Self::key(order, density);
        self.entries.iter().min_by(|a, b| {
            let da = Self::dist2(Self::key(a.order, a.density), key);
            let db = Self::dist2(Self::key(b.order, b.density), key);
            da.total_cmp(&db)
        })
    }

    /// Convenience: lookup for a concrete graph.
    #[must_use]
    pub fn lookup_graph(&self, graph: &Graph) -> Option<&TuningEntry> {
        self.lookup(graph.num_nodes(), graph.density())
    }

    fn key(order: usize, density: f64) -> (f64, f64) {
        ((order.max(1) as f64).log10(), density.max(1e-6).log10())
    }

    fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
        let dx = a.0 - b.0;
        let dy = a.1 - b.1;
        dx * dx + dy * dy
    }
}

/// Calibration settings.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CalibrationConfig {
    /// φ candidates to sweep.
    pub phis: &'static [f64],
    /// α candidates to sweep.
    pub alphas: &'static [f64],
    /// Iterations per calibration run.
    pub iterations: usize,
    /// Runs averaged per candidate.
    pub runs: u64,
    /// Seed for instance generation and runs.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            phis: &[0.0, 0.025, 0.05, 0.1, 0.2],
            alphas: &[0.0, 0.1],
            iterations: 300,
            runs: 3,
            seed: 0,
        }
    }
}

/// Calibrates a tuning entry for the workload class `(order, density)` by
/// sweeping (φ, α) on a representative random instance.
///
/// # Errors
///
/// Propagates preprocessing/sampling errors; generator errors cannot occur
/// for valid `(order, density)`.
///
/// # Panics
///
/// Panics if `order < 2` or `density` is outside `(0, 1]`.
pub fn calibrate(order: usize, density: f64, config: &CalibrationConfig) -> Result<TuningEntry> {
    assert!(order >= 2, "calibration needs at least 2 nodes");
    assert!(
        density > 0.0 && density <= 1.0,
        "density must be in (0, 1], got {density}"
    );
    let capacity = order * (order - 1) / 2;
    let m = ((density * capacity as f64).round() as usize).clamp(1, capacity);
    let graph = gnm(order, m, WeightDist::Unit, config.seed ^ 0xCA11)
        .expect("valid (order, density) produce valid instances");

    let k = sophie_graph::coupling::coupling_matrix(&graph);
    let delta = sophie_graph::coupling::delta_diagonal(&graph);
    let pre = crate::dropout::Preprocessor::new(&k, delta, crate::DeltaVariant::Gershgorin)?;

    let mut best: Option<TuningEntry> = None;
    for &alpha in config.alphas {
        let model = PrisModel::new(pre.transform(alpha)?)?;
        for &phi in config.phis {
            let mut total = 0.0;
            for r in 0..config.runs {
                let out = run(
                    &model,
                    &graph,
                    &RunConfig {
                        iterations: config.iterations,
                        phi,
                        seed: config.seed.wrapping_add(r),
                        target_cut: None,
                    },
                )?;
                total += out.best_cut;
            }
            let avg = total / config.runs as f64;
            if best.as_ref().is_none_or(|b| avg > b.calibration_cut) {
                best = Some(TuningEntry {
                    order,
                    density,
                    phi,
                    alpha,
                    calibration_cut: avg,
                });
            }
        }
    }
    Ok(best.expect("at least one candidate is always evaluated"))
}

/// Verifies a tuned entry against a fresh instance: returns the best cut
/// achieved with the tuned parameters over `runs` seeds.
///
/// # Errors
///
/// Propagates preprocessing/sampling errors.
pub fn validate_on<R: Rng>(
    entry: &TuningEntry,
    graph: &Graph,
    iterations: usize,
    runs: u64,
    rng: &mut R,
) -> Result<f64> {
    let k = sophie_graph::coupling::coupling_matrix(graph);
    let delta = sophie_graph::coupling::delta_diagonal(graph);
    let c = crate::dropout::transformation_matrix(
        &k,
        delta,
        entry.alpha,
        crate::DeltaVariant::Gershgorin,
    )?;
    let model = PrisModel::new(c)?;
    let mut best = f64::NEG_INFINITY;
    for _ in 0..runs {
        let out = run(
            &model,
            graph,
            &RunConfig {
                iterations,
                phi: entry.phi,
                seed: rng.gen(),
                target_cut: None,
            },
        )?;
        best = best.max(out.best_cut);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CalibrationConfig {
        CalibrationConfig {
            phis: &[0.0, 0.05, 0.1],
            alphas: &[0.0],
            iterations: 120,
            runs: 2,
            seed: 7,
        }
    }

    #[test]
    fn calibration_prefers_positive_noise() {
        let entry = calibrate(64, 0.2, &quick_config()).unwrap();
        assert!(entry.phi > 0.0, "noiseless PRIS should not win: {entry:?}");
        assert_eq!(entry.order, 64);
    }

    #[test]
    fn lookup_finds_nearest_class() {
        let mut table = TuningTable::new();
        table.insert(TuningEntry {
            order: 100,
            density: 1.0,
            phi: 0.1,
            alpha: 0.0,
            calibration_cut: 0.0,
        });
        table.insert(TuningEntry {
            order: 2000,
            density: 0.01,
            phi: 0.05,
            alpha: 0.0,
            calibration_cut: 0.0,
        });
        let hit = table.lookup(1800, 0.02).unwrap();
        assert_eq!(hit.order, 2000);
        let hit = table.lookup(120, 0.9).unwrap();
        assert_eq!(hit.order, 100);
    }

    #[test]
    fn empty_table_returns_none() {
        assert!(TuningTable::new().lookup(100, 0.5).is_none());
        assert!(TuningTable::new().is_empty());
    }

    #[test]
    fn lookup_graph_uses_graph_stats() {
        let g = gnm(50, 100, WeightDist::Unit, 1).unwrap();
        let mut table = TuningTable::new();
        table.insert(TuningEntry {
            order: 50,
            density: 0.08,
            phi: 0.07,
            alpha: 0.0,
            calibration_cut: 0.0,
        });
        let hit = table.lookup_graph(&g).unwrap();
        assert_eq!(hit.phi, 0.07);
    }

    #[test]
    fn validated_entry_beats_random_cut() {
        let cfg = quick_config();
        let entry = calibrate(48, 0.3, &cfg).unwrap();
        let g = gnm(48, 338, WeightDist::Unit, 99).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let best = validate_on(&entry, &g, 200, 2, &mut rng).unwrap();
        assert!(best > 0.5 * 338.0, "best {best}");
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_bad_density() {
        let _ = calibrate(10, 0.0, &quick_config());
    }
}
