//! End-to-end PRIS runs against a max-cut instance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sophie_graph::cut::cut_value_binary;
use sophie_graph::Graph;
use sophie_solve::{
    NullObserver, OpCounts, RunControl, SolutionTracker, SolveEvent, SolveObserver,
};

use crate::error::Result;
use crate::sampler::PrisModel;

/// Configuration for a single PRIS run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunConfig {
    /// Number of recurrent iterations.
    pub iterations: usize,
    /// Noise level φ (relative to per-row scales, see [`crate::noise`]).
    pub phi: f64,
    /// RNG seed for the initial state and the noise stream.
    pub seed: u64,
    /// Cut value that counts as converged (e.g. 95 % of best-known).
    pub target_cut: Option<f64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            iterations: 1000,
            phi: 0.2,
            seed: 0,
            target_cut: None,
        }
    }
}

/// Outcome of one PRIS run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Best cut value observed.
    pub best_cut: f64,
    /// Binary configuration attaining the best cut.
    pub best_bits: Vec<bool>,
    /// Iteration at which the best cut was first reached.
    pub best_iteration: usize,
    /// First iteration reaching `target_cut`, if configured and reached.
    pub iterations_to_target: Option<usize>,
    /// Total iterations executed.
    pub iterations: usize,
}

/// Runs PRIS on `graph` using `model` (built from the graph's transformed
/// coupling matrix).
///
/// The model dimension must equal the graph's node count.
///
/// # Errors
///
/// Returns [`crate::PrisError::BadNoise`] for invalid φ.
///
/// # Panics
///
/// Panics if `model.dim() != graph.num_nodes()`.
pub fn run(model: &PrisModel, graph: &Graph, config: &RunConfig) -> Result<RunOutcome> {
    run_observed(model, graph, config, &mut NullObserver)
}

/// Runs PRIS like [`run`] while emitting [`SolveEvent`]s to `observer`.
///
/// One recurrent step maps to one round: every step emits a
/// [`SolveEvent::GlobalSync`] whose `activity` is the Hamming distance to
/// the previous state and whose `ops_delta` is zero (PRIS has no hardware
/// operation model). Round 0 is the initial random state. The event
/// stream does not perturb the sampling path — `run` delegates here with
/// a [`NullObserver`] and produces bit-identical outcomes.
///
/// # Errors
///
/// Returns [`crate::PrisError::BadNoise`] for invalid φ.
///
/// # Panics
///
/// Panics if `model.dim() != graph.num_nodes()`.
pub fn run_observed(
    model: &PrisModel,
    graph: &Graph,
    config: &RunConfig,
    observer: &mut dyn SolveObserver,
) -> Result<RunOutcome> {
    run_controlled(model, graph, config, &RunControl::unrestricted(), observer)
}

/// The controllable core of [`run_observed`]: polls `control` between
/// recurrent steps and winds down early (still emitting `RunFinished`,
/// with `rounds_run` / `iterations` reflecting the steps actually
/// executed) when it requests a stop. With an unrestricted control this
/// is exactly [`run_observed`].
pub(crate) fn run_controlled(
    model: &PrisModel,
    graph: &Graph,
    config: &RunConfig,
    control: &RunControl,
    observer: &mut dyn SolveObserver,
) -> Result<RunOutcome> {
    assert_eq!(
        model.dim(),
        graph.num_nodes(),
        "model dimension must match graph order"
    );
    let noise = model.noise(config.phi)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut bits = model.random_state(&mut rng);

    observer.on_event(&SolveEvent::RunStarted {
        solver: "pris",
        dimension: graph.num_nodes(),
        planned_iterations: config.iterations,
        seed: config.seed,
        target: config.target_cut,
    });

    let cut0 = cut_value_binary(graph, &bits);
    let mut tracker = SolutionTracker::start(config.target_cut, &bits, cut0);
    observer.on_event(&SolveEvent::GlobalSync {
        round: 0,
        cut: cut0,
        activity: 0,
        ops_delta: OpCounts::default(),
    });
    if tracker.hit_at_start() {
        observer.on_event(&SolveEvent::TargetReached {
            round: 0,
            cut: cut0,
        });
    }

    let mut executed = 0usize;
    for it in 1..=config.iterations {
        if control.should_stop() {
            break;
        }
        executed = it;
        model.step(&mut bits, &noise, &mut rng);
        let cut = cut_value_binary(graph, &bits);
        let obs = tracker.observe(it, &bits, cut);
        observer.on_event(&SolveEvent::GlobalSync {
            round: it,
            cut,
            activity: obs.flips,
            ops_delta: OpCounts::default(),
        });
        if obs.reached_target {
            observer.on_event(&SolveEvent::TargetReached { round: it, cut });
        }
    }

    observer.on_event(&SolveEvent::RunFinished {
        best_cut: tracker.best_cut(),
        best_round: tracker.best_iteration(),
        rounds_run: executed,
        ops: OpCounts::default(),
    });

    let best_iteration = tracker.best_iteration();
    let (best_cut, best_bits, first_hit, _, _) = tracker.into_parts();
    Ok(RunOutcome {
        best_cut,
        best_bits,
        best_iteration,
        iterations_to_target: first_hit,
        iterations: executed,
    })
}

/// Runs PRIS end-to-end from a graph: builds `K`, applies eigenvalue
/// dropout with factor `alpha`, and samples.
///
/// This is the convenience entry point used by examples and benchmarks;
/// sweeps should build a [`crate::dropout::Preprocessor`] once instead.
///
/// # Errors
///
/// Propagates preprocessing and sampling errors.
pub fn solve_max_cut(graph: &Graph, alpha: f64, config: &RunConfig) -> Result<RunOutcome> {
    let k = sophie_graph::coupling::coupling_matrix(graph);
    let delta = sophie_graph::coupling::delta_diagonal(graph);
    let c = crate::dropout::transformation_matrix(
        &k,
        delta,
        alpha,
        crate::dropout::DeltaVariant::Gershgorin,
    )?;
    let model = PrisModel::new(c)?;
    run(&model, graph, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, gnm, WeightDist};

    #[test]
    fn finds_the_optimum_on_a_tiny_bipartite_instance() {
        // K4 with unit weights: max cut = 4 (2+2 split).
        let g = complete(4, WeightDist::Unit, 0).unwrap();
        let config = RunConfig {
            iterations: 300,
            phi: 0.3,
            seed: 1,
            target_cut: Some(4.0),
        };
        let out = solve_max_cut(&g, 0.0, &config).unwrap();
        assert_eq!(out.best_cut, 4.0);
        assert!(out.iterations_to_target.is_some());
    }

    #[test]
    fn beats_random_on_a_sparse_graph() {
        let g = gnm(60, 240, WeightDist::Unit, 3).unwrap();
        let config = RunConfig {
            iterations: 400,
            phi: 0.2,
            seed: 2,
            target_cut: None,
        };
        let out = solve_max_cut(&g, 0.0, &config).unwrap();
        // Expected random cut = m/2 = 120; PRIS should clearly beat it.
        assert!(out.best_cut > 140.0, "best cut {}", out.best_cut);
        // The reported bits must reproduce the reported cut.
        assert_eq!(cut_value_binary(&g, &out.best_bits), out.best_cut);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gnm(30, 90, WeightDist::Unit, 5).unwrap();
        let config = RunConfig {
            iterations: 100,
            phi: 0.15,
            seed: 9,
            target_cut: None,
        };
        let a = solve_max_cut(&g, 0.0, &config).unwrap();
        let b = solve_max_cut(&g, 0.0, &config).unwrap();
        assert_eq!(a.best_cut, b.best_cut);
        assert_eq!(a.best_bits, b.best_bits);
    }

    #[test]
    fn observed_run_matches_unobserved_and_rebuilds_traces() {
        let g = gnm(30, 90, WeightDist::Unit, 5).unwrap();
        let k = sophie_graph::coupling::coupling_matrix(&g);
        let delta = sophie_graph::coupling::delta_diagonal(&g);
        let c = crate::dropout::transformation_matrix(
            &k,
            delta,
            0.0,
            crate::dropout::DeltaVariant::Gershgorin,
        )
        .unwrap();
        let model = PrisModel::new(c).unwrap();
        let config = RunConfig {
            iterations: 50,
            phi: 0.15,
            seed: 9,
            target_cut: Some(1.0),
        };
        let plain = run(&model, &g, &config).unwrap();
        let mut rec = sophie_solve::TraceRecorder::new();
        let observed = run_observed(&model, &g, &config, &mut rec).unwrap();
        assert_eq!(plain.best_cut, observed.best_cut);
        assert_eq!(plain.best_bits, observed.best_bits);
        assert_eq!(plain.best_iteration, observed.best_iteration);
        let report = rec.into_report();
        assert_eq!(report.solver, "pris");
        assert_eq!(report.best_cut, plain.best_cut);
        assert_eq!(report.cut_trace.len(), config.iterations + 1);
        assert_eq!(report.activity_trace.len(), config.iterations);
        assert_eq!(report.iterations_to_target, plain.iterations_to_target);
    }

    #[test]
    fn zero_iterations_reports_initial_state() {
        let g = complete(5, WeightDist::Unit, 0).unwrap();
        let config = RunConfig {
            iterations: 0,
            phi: 0.2,
            seed: 0,
            target_cut: None,
        };
        let out = solve_max_cut(&g, 0.0, &config).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.best_cut >= 0.0);
    }
}
