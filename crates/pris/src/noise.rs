//! Gaussian noise generation and the φ-scaling convention.
//!
//! PRIS perturbs each matrix-vector product with Gaussian noise
//! (`X ~ N(C·S | φ)`, paper Eq. 5). In hardware the noise generator is
//! tuned so the *total* analog noise has standard deviation φ regardless of
//! the device (paper §III-C); in the functional simulator we apply it
//! directly.
//!
//! **Scaling convention.** Raw matrix entries grow with graph order, so a
//! fixed absolute φ would not transfer across graphs. Like the reference
//! PRIS implementation, φ is expressed relative to the per-row signal
//! magnitude: the noise added to component `i` has standard deviation
//! `φ · ρ_i` with `ρ_i = ½ Σ_j |C_ij|` (the scale of the thresholding
//! comparison). This keeps the interesting φ range near `[0.05, 1]` for
//! every benchmark graph, matching the paper's Fig. 6 axis.

use rand::Rng;

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// `rand` 0.8 ships only uniform primitives (the normal distribution lives
/// in `rand_distr`, which is outside the allowed dependency set), so the
/// transform is implemented here.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Per-row noise scales `ρ_i = ½ Σ_j |c_ij|` for a row-major matrix buffer.
#[must_use]
pub fn row_scales(c: &sophie_linalg::Matrix) -> Vec<f64> {
    (0..c.rows())
        .map(|r| 0.5 * c.row(r).iter().map(|x| x.abs()).sum::<f64>())
        .collect()
}

/// A reusable Gaussian noise source with per-component scales.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    phi: f64,
    scales: Vec<f64>,
}

impl NoiseModel {
    /// Creates a noise model with level `phi` and per-component scales.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrisError::BadNoise`] if `phi` is negative or NaN.
    pub fn new(phi: f64, scales: Vec<f64>) -> crate::Result<Self> {
        if phi < 0.0 || phi.is_nan() {
            return Err(crate::PrisError::BadNoise { phi });
        }
        Ok(NoiseModel { phi, scales })
    }

    /// The configured noise level φ.
    #[must_use]
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Standard deviation applied to component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn sigma(&self, i: usize) -> f64 {
        self.phi * self.scales[i]
    }

    /// Adds noise to every component of `x` in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn perturb<R: Rng + ?Sized>(&self, x: &mut [f64], rng: &mut R) {
        assert_eq!(x.len(), self.scales.len(), "noise model length mismatch");
        if self.phi == 0.0 {
            return;
        }
        for (xi, &s) in x.iter_mut().zip(&self.scales) {
            *xi += self.phi * s * standard_normal(rng);
        }
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// True if the model covers zero components.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn zero_phi_is_exact_passthrough() {
        let m = NoiseModel::new(0.0, vec![1.0; 4]).unwrap();
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let mut rng = StdRng::seed_from_u64(0);
        m.perturb(&mut x, &mut rng);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn negative_phi_is_rejected() {
        assert!(NoiseModel::new(-0.1, vec![1.0]).is_err());
        assert!(NoiseModel::new(f64::NAN, vec![1.0]).is_err());
    }

    #[test]
    fn perturbation_scales_with_component_scale() {
        let m = NoiseModel::new(1.0, vec![0.0, 10.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut devs0 = 0.0_f64;
        let mut devs1 = 0.0_f64;
        for _ in 0..2000 {
            let mut x = vec![0.0, 0.0];
            m.perturb(&mut x, &mut rng);
            devs0 += x[0].abs();
            devs1 += x[1].abs();
        }
        assert_eq!(devs0, 0.0);
        assert!(devs1 > 0.0);
        assert_eq!(m.sigma(1), 10.0);
    }

    #[test]
    fn row_scales_match_half_abs_row_sums() {
        let c = sophie_linalg::Matrix::from_rows(&[&[1.0, -3.0], &[0.0, 2.0]]).unwrap();
        assert_eq!(row_scales(&c), vec![2.0, 1.0]);
    }

    #[test]
    fn len_and_empty() {
        let m = NoiseModel::new(0.5, vec![]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
