//! Property-based tests of the tiled engine's invariants.

use proptest::prelude::*;
use sophie_core::backend::IdealBackend;
use sophie_core::{Schedule, SophieConfig, SophieSolver};
use sophie_graph::cut::cut_value_binary;
use sophie_graph::generate::{gnm, WeightDist};

fn config_strategy() -> impl Strategy<Value = SophieConfig> {
    (
        prop_oneof![Just(8usize), Just(16), Just(24)],
        1usize..6,
        2usize..10,
        0.25f64..=1.0,
        0.0f64..0.3,
        proptest::bool::ANY,
    )
        .prop_map(|(tile, local, global, frac, phi, stoch)| SophieConfig {
            tile_size: tile,
            local_iters: local,
            global_iters: global,
            tile_fraction: frac,
            phi,
            alpha: 0.0,
            stochastic_spin_update: stoch,
            ..SophieConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reported best configuration must reproduce the reported cut,
    /// for every configuration of the engine.
    #[test]
    fn best_bits_always_match_best_cut(cfg in config_strategy(), seed in 0u64..100) {
        let g = gnm(48, 180, WeightDist::Unit, 11).unwrap();
        let solver = SophieSolver::from_graph(&g, cfg).unwrap();
        let out = solver.run(&g, seed, None).unwrap();
        prop_assert_eq!(cut_value_binary(&g, &out.best_bits), out.best_cut);
    }

    /// The best cut equals the maximum of the trace, and the trace has one
    /// entry per synchronization plus the initial state.
    #[test]
    fn trace_invariants(cfg in config_strategy(), seed in 0u64..100) {
        let g = gnm(40, 150, WeightDist::PlusMinusOne, 7).unwrap();
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let out = solver.run(&g, seed, None).unwrap();
        prop_assert_eq!(out.cut_trace.len(), cfg.global_iters + 1);
        let trace_max = out.cut_trace.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(out.best_cut, trace_max);
    }

    /// Identical (seed, schedule) runs are bit-for-bit identical;
    /// different seeds diverge (with noise enabled).
    #[test]
    fn determinism(cfg in config_strategy(), seed in 0u64..50) {
        let g = gnm(40, 160, WeightDist::Unit, 3).unwrap();
        let solver = SophieSolver::from_graph(&g, cfg).unwrap();
        let a = solver.run(&g, seed, None).unwrap();
        let b = solver.run(&g, seed, None).unwrap();
        prop_assert_eq!(a.cut_trace, b.cut_trace);
        prop_assert_eq!(a.best_bits, b.best_bits);
    }

    /// Engine-measured operation counts equal the analytic schedule
    /// replay, for every configuration.
    #[test]
    fn op_counts_match_analytic(cfg in config_strategy(), sched_seed in 0u64..100) {
        let g = gnm(48, 200, WeightDist::Unit, 5).unwrap();
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let schedule = Schedule::generate(
            solver.grid(),
            cfg.global_iters,
            cfg.tile_fraction,
            cfg.stochastic_spin_update,
            sched_seed,
        );
        let out = solver
            .run_scheduled(&IdealBackend::new(), &g, &schedule, 1, None)
            .unwrap();
        let analytic =
            sophie_core::analytic::analytic_op_counts(48, &cfg, sched_seed).unwrap();
        // The reuse-model counters are dynamics-dependent; the analytic
        // replay leaves them zero (see `analytic_op_counts` docs).
        let mut measured = out.ops;
        measured.sparse_spin_flips = 0;
        measured.sparse_field_updates = 0;
        measured.sparse_delta_macs = 0;
        prop_assert_eq!(measured, analytic);
    }

    /// Selecting fewer tiles never increases per-round compute.
    #[test]
    fn fraction_monotonicity(frac_lo in 0.2f64..0.5, frac_hi in 0.6f64..1.0) {
        let base = SophieConfig {
            tile_size: 16,
            global_iters: 6,
            ..SophieConfig::default()
        };
        let lo = sophie_core::analytic::analytic_op_counts(
            96,
            &SophieConfig { tile_fraction: frac_lo, ..base.clone() },
            9,
        )
        .unwrap();
        let hi = sophie_core::analytic::analytic_op_counts(
            96,
            &SophieConfig { tile_fraction: frac_hi, ..base },
            9,
        )
        .unwrap();
        prop_assert!(lo.total_tile_mvms() <= hi.total_tile_mvms());
        prop_assert!(lo.pairs_executed <= hi.pairs_executed);
    }

    /// A target below the achieved best must be detected, and the hit
    /// iteration must be consistent with the trace.
    #[test]
    fn target_detection_is_consistent(cfg in config_strategy(), seed in 0u64..50) {
        let g = gnm(40, 150, WeightDist::Unit, 13).unwrap();
        let solver = SophieSolver::from_graph(&g, cfg).unwrap();
        let free = solver.run(&g, seed, None).unwrap();
        let target = free.best_cut; // achievable by construction
        let tracked = solver.run(&g, seed, Some(target)).unwrap();
        let hit = tracked.global_iters_to_target;
        prop_assert!(hit.is_some());
        let g_hit = hit.unwrap();
        prop_assert!(tracked.cut_trace[g_hit] >= target);
        for before in 0..g_hit {
            prop_assert!(tracked.cut_trace[before] < target);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Activity (spins flipped per sync) has one entry per round and each
    /// entry is bounded by the graph order; late activity should not
    /// exceed the maximum possible (sanity of the Hamming accounting).
    #[test]
    fn activity_trace_is_well_formed(cfg in config_strategy(), seed in 0u64..40) {
        let g = gnm(40, 150, WeightDist::Unit, 19).unwrap();
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let out = solver.run(&g, seed, None).unwrap();
        prop_assert_eq!(out.activity_trace.len(), cfg.global_iters);
        for &flips in &out.activity_trace {
            prop_assert!(flips <= 40);
        }
    }
}
