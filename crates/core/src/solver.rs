//! [`Solver`] trait impls for the SOPHIE engine on the ideal backend.
//!
//! Two shapes are provided:
//!
//! * [`SophieSolver`] itself implements [`Solver`] — the engine is bound
//!   to one preprocessed transformation matrix, so jobs must match its
//!   dimension. This is the shape experiment harnesses use: they cache
//!   the expensive eigendecomposition per instance and hand the prebuilt
//!   engine to the scheduler.
//! * [`SophieIsing`] wraps a [`SophieConfig`] only and builds (and
//!   caches) the engine lazily from each job's graph. This is the shape
//!   the `SolverRegistry` constructs, where no graph is known at build
//!   time.
//!
//! Both run on the exact floating-point [`IdealBackend`]; the OPCM device
//! model variant lives in `sophie-hw` (same engine, different backend).

use std::sync::{Arc, Mutex, Weak};

use sophie_graph::Graph;
use sophie_solve::{Capabilities, SolveError, SolveJob, SolveObserver, SolveReport, Solver};

use crate::backend::IdealBackend;
use crate::config::{ComputeMode, SophieConfig};
use crate::engine::SophieSolver;
use crate::sparse::SparseBackend;

impl Solver for SophieSolver {
    fn name(&self) -> &'static str {
        "sophie"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            tiled: true,
            op_model: true,
            fault_model: false,
        }
    }

    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError> {
        // Dispatch on the configured compute mode; dense and sparse
        // backends are bit-identical in every output (see `crate::sparse`),
        // so this choice affects wall-clock only.
        match self.config().compute {
            ComputeMode::Dense => self.solve_job(
                &IdealBackend::from_config(self.config()),
                job,
                None,
                observer,
            ),
            ComputeMode::Sparse | ComputeMode::Auto => self.solve_job(
                &SparseBackend::from_config(self.config()),
                job,
                None,
                observer,
            ),
        }
    }
}

/// Registry-constructible SOPHIE solver: holds only a [`SophieConfig`]
/// and builds the tiled engine lazily from each job's graph.
///
/// Engine construction runs the eigenvalue-dropout preprocessing (an
/// eigendecomposition), so the last-built engine is cached and reused for
/// as long as consecutive jobs share the same `Arc<Graph>`. The cache is
/// identity-based (`Arc` pointer equality via a stored `Weak`), never
/// content-based, and rebuilding is deterministic — concurrent jobs on
/// different graphs merely rebuild, they cannot observe a wrong engine.
#[derive(Debug)]
pub struct SophieIsing {
    config: SophieConfig,
    engine: Mutex<Option<(Weak<Graph>, Arc<SophieSolver>)>>,
}

impl SophieIsing {
    /// Validates `config` and wraps it; no engine is built yet.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for an invalid configuration.
    pub fn new(config: SophieConfig) -> Result<Self, SolveError> {
        config.validate().map_err(|e| SolveError::BadConfig {
            solver: "sophie".to_string(),
            message: e.to_string(),
        })?;
        Ok(SophieIsing {
            config,
            engine: Mutex::new(None),
        })
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &SophieConfig {
        &self.config
    }

    /// The cached engine for `graph`, building it on miss.
    fn engine_for(&self, graph: &Arc<Graph>) -> Result<Arc<SophieSolver>, SolveError> {
        let mut slot = self.engine.lock().expect("engine cache lock");
        if let Some((cached_graph, engine)) = slot.as_ref() {
            if cached_graph
                .upgrade()
                .is_some_and(|g| Arc::ptr_eq(&g, graph))
            {
                return Ok(Arc::clone(engine));
            }
        }
        let engine = Arc::new(
            SophieSolver::from_graph(graph, self.config.clone()).map_err(|e| {
                SolveError::Failed {
                    solver: "sophie".to_string(),
                    message: e.to_string(),
                }
            })?,
        );
        *slot = Some((Arc::downgrade(graph), Arc::clone(&engine)));
        Ok(engine)
    }
}

impl Solver for SophieIsing {
    fn name(&self) -> &'static str {
        "sophie"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            tiled: true,
            op_model: true,
            fault_model: false,
        }
    }

    fn solve(
        &self,
        job: &SolveJob,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, SolveError> {
        self.engine_for(&job.graph)?.solve(job, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, WeightDist};
    use sophie_solve::{EventLog, JobBudget, NullObserver, TraceRecorder};

    fn test_config() -> SophieConfig {
        SophieConfig {
            tile_size: 8,
            global_iters: 20,
            ..SophieConfig::default()
        }
    }

    fn test_graph() -> Arc<Graph> {
        Arc::new(complete(24, WeightDist::Unit, 3).unwrap())
    }

    #[test]
    fn trait_solve_matches_legacy_run_observed_exactly() {
        let g = test_graph();
        let engine = SophieSolver::from_graph(&g, test_config()).unwrap();

        let mut legacy = EventLog::new();
        let outcome = engine
            .run_observed(&g, 42, Some(100.0), &mut legacy)
            .unwrap();

        let mut modern = EventLog::new();
        let job = SolveJob::new(Arc::clone(&g), 42).with_target(Some(100.0));
        let report = engine.solve(&job, &mut modern).unwrap();

        assert_eq!(legacy.events(), modern.events());
        assert_eq!(report.best_cut, outcome.best_cut);
        assert_eq!(report.iterations_run, outcome.global_iters_run);
        assert_eq!(report.cut_trace, outcome.cut_trace);
        assert_eq!(report.ops, outcome.ops);
    }

    #[test]
    fn job_budget_caps_global_iters() {
        let g = test_graph();
        let engine = SophieSolver::from_graph(&g, test_config()).unwrap();
        let job = SolveJob::new(g, 1).with_budget(JobBudget {
            max_iterations: Some(5),
            time_limit: None,
        });
        let report = engine.solve(&job, &mut NullObserver).unwrap();
        assert_eq!(report.planned_iterations, 5);
        assert_eq!(report.iterations_run, 5);
        assert_eq!(report.cut_trace.len(), 6);
    }

    #[test]
    fn dimension_mismatch_is_a_bad_job() {
        let g = test_graph();
        let engine = SophieSolver::from_graph(&g, test_config()).unwrap();
        let wrong = Arc::new(complete(12, WeightDist::Unit, 0).unwrap());
        let err = engine.solve(&SolveJob::new(wrong, 0), &mut NullObserver);
        assert!(matches!(err, Err(SolveError::BadJob { .. })));
    }

    #[test]
    fn lazy_adapter_matches_prebuilt_engine_and_caches() {
        let g = test_graph();
        let engine = SophieSolver::from_graph(&g, test_config()).unwrap();
        let lazy = SophieIsing::new(test_config()).unwrap();

        let job = SolveJob::new(Arc::clone(&g), 7);
        let mut direct = TraceRecorder::new();
        let a = engine.solve(&job, &mut direct).unwrap();
        let b = lazy.solve(&job, &mut NullObserver).unwrap();
        assert_eq!(a, b);

        // Second job on the same Arc reuses the cached engine.
        let first = Arc::as_ptr(&lazy.engine_for(&g).unwrap());
        let second = Arc::as_ptr(&lazy.engine_for(&g).unwrap());
        assert_eq!(first, second);

        // A different graph rebuilds deterministically.
        let other = Arc::new(complete(16, WeightDist::Unit, 1).unwrap());
        let r1 = lazy
            .solve(&SolveJob::new(Arc::clone(&other), 3), &mut NullObserver)
            .unwrap();
        let r2 = lazy
            .solve(&SolveJob::new(other, 3), &mut NullObserver)
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn invalid_config_is_rejected_at_wrap_time() {
        let bad = SophieConfig {
            tile_fraction: 0.0,
            ..SophieConfig::default()
        };
        assert!(matches!(
            SophieIsing::new(bad),
            Err(SolveError::BadConfig { .. })
        ));
    }
}
