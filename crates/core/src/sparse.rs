//! Delta-driven sparse MVM backend.
//!
//! GSET-class max-cut instances are sparse (G22: n = 2000, ~20k edges →
//! ~1% dense), and late in the anneal only a handful of spins change
//! between consecutive local iterations. The dense [`IdealBackend`] pays
//! the full `tile_size²` kernel on every MVM regardless. [`SparseBackend`]
//! exploits both structures:
//!
//! * each programmed tile is stored in CSR form ([`SparseCsr`]) alongside
//!   its transpose, so a full multiply costs `O(nnz)`;
//! * every unit caches the last input and output **per direction**; on the
//!   next call it diffs the input against the cache and recomputes only
//!   the output elements adjacent to a changed input (the *dirty set*);
//! * when the estimated touched work exceeds a density-crossover threshold
//!   θ (in units of `tile_size²` scalar MACs), the unit falls back to the
//!   dense tile kernel for that call — so dense-ish tiles and high-activity
//!   phases never run slower than [`IdealBackend`].
//!
//! # Bit-compatibility contract
//!
//! Every kernel involved — dense [`Tile::mvm`]/[`Tile::mvm_transposed`],
//! [`SparseCsr::matvec`], [`SparseCsr::row_dot`] — accumulates each output
//! element as a *sequential sum of its nonzero terms in ascending index
//! order starting from `+0.0`*, and terms that are exactly zero (zero
//! weight or zero input) are bitwise invisible to such a sum. An output
//! element whose inputs are value-unchanged therefore has a bitwise
//! unchanged value, so serving it from the cache is exact. The engine's
//! cut trajectories and event streams are **bit-identical** across
//! [`ComputeMode::Dense`], [`ComputeMode::Sparse`], and
//! [`ComputeMode::Auto`] (inputs are finite in the engine; `NaN` inputs
//! would force a recompute via `NaN != NaN` but are outside the contract).
//!
//! The crossover threshold affects *which kernel computes* a result, never
//! the result itself, so θ (and the auto-calibration that picks it) is
//! free to vary across hosts without perturbing science outputs.

use std::sync::OnceLock;
use std::time::Instant;

use sophie_linalg::{KernelChoice, KernelPlan, SparseCsr, Tile};

use crate::backend::{MvmBackend, MvmUnit};
use crate::config::{ComputeMode, SophieConfig};

#[cfg(doc)]
use crate::backend::IdealBackend;

/// Sparse incremental MVM backend; see the [module docs](self) for the
/// strategy and the bit-compatibility contract.
#[derive(Debug, Clone, Copy)]
pub struct SparseBackend {
    crossover: f64,
    kernel: KernelChoice,
}

impl SparseBackend {
    /// Backend with an auto-calibrated crossover threshold (a one-time,
    /// process-wide timing probe of the dense and sparse kernels; see
    /// [`calibrated_crossover`]).
    #[must_use]
    pub fn auto() -> Self {
        SparseBackend {
            crossover: calibrated_crossover(),
            kernel: KernelChoice::Auto,
        }
    }

    /// Backend with an explicit crossover threshold θ: an MVM stays on the
    /// incremental path while its estimated touched work is below
    /// `θ × tile_size²` scalar MACs.
    ///
    /// # Panics
    ///
    /// Panics unless `theta` is positive (`+∞` is allowed and means "never
    /// fall back to dense").
    #[must_use]
    pub fn with_crossover(theta: f64) -> Self {
        assert!(
            theta > 0.0 && !theta.is_nan(),
            "crossover must be positive, got {theta}"
        );
        SparseBackend {
            crossover: theta,
            kernel: KernelChoice::Auto,
        }
    }

    /// Backend that always takes the sparse path (θ = ∞), regardless of
    /// activity or density.
    #[must_use]
    pub fn always_sparse() -> Self {
        SparseBackend {
            crossover: f64::INFINITY,
            kernel: KernelChoice::Auto,
        }
    }

    /// Backend matching a configuration's `compute` / `sparse_crossover`
    /// knobs. [`ComputeMode::Sparse`] pins θ = ∞; otherwise an explicit
    /// `sparse_crossover` wins over auto-calibration.
    /// ([`ComputeMode::Dense`] is dispatched to the dense backend *before*
    /// this is called; passing such a config here yields the same backend
    /// as [`ComputeMode::Auto`].)
    #[must_use]
    pub fn from_config(config: &SophieConfig) -> Self {
        let base = match (config.compute, config.sparse_crossover) {
            (ComputeMode::Sparse, _) => Self::always_sparse(),
            (_, Some(theta)) => Self::with_crossover(theta),
            (_, None) => Self::auto(),
        };
        SparseBackend {
            kernel: config.kernel,
            ..base
        }
    }

    /// The crossover threshold θ in effect.
    #[must_use]
    pub fn crossover(&self) -> f64 {
        self.crossover
    }
}

impl MvmBackend for SparseBackend {
    type Unit = SparseUnit;

    fn unit(&self, tile_size: usize) -> SparseUnit {
        SparseUnit::new(
            tile_size,
            self.crossover,
            KernelPlan::for_choice(self.kernel, tile_size),
        )
    }
}

/// Per-direction input/output cache of one unit.
#[derive(Debug, Clone)]
struct DirCache {
    x: Vec<f32>,
    y: Vec<f32>,
    valid: bool,
}

impl DirCache {
    fn new(size: usize) -> Self {
        DirCache {
            x: vec![0.0; size],
            y: vec![0.0; size],
            valid: false,
        }
    }

    fn invalidate(&mut self) {
        self.valid = false;
    }
}

/// Unit produced by [`SparseBackend`]: CSR storage, per-direction
/// input-diff caches, and a per-call dense fallback above the crossover.
#[derive(Debug, Clone)]
pub struct SparseUnit {
    tile_size: usize,
    crossover: f64,
    /// Kernel plan for the dense fallback path.
    plan: KernelPlan,
    /// Dense mirror for fallback kernels and cheap reprogramming.
    tile: Option<Tile>,
    /// CSR of the stored tile `T` (forward row dots).
    csr: Option<SparseCsr>,
    /// CSR of `Tᵀ` (transposed row dots; forward adjacency).
    csr_t: Option<SparseCsr>,
    fwd: DirCache,
    trn: DirCache,
    /// Generation-stamped visited marks for dirty-row dedup (no per-call
    /// clearing).
    stamp: Vec<u32>,
    stamp_gen: u32,
    /// Scratch: indices of changed inputs this call.
    diff: Vec<u32>,
    /// Scratch: deduplicated touched output rows this call.
    touched: Vec<u32>,
    incremental_calls: u64,
    full_sparse_calls: u64,
    dense_calls: u64,
}

impl SparseUnit {
    fn new(tile_size: usize, crossover: f64, plan: KernelPlan) -> Self {
        SparseUnit {
            tile_size,
            crossover,
            plan,
            tile: None,
            csr: None,
            csr_t: None,
            fwd: DirCache::new(tile_size),
            trn: DirCache::new(tile_size),
            stamp: vec![0; tile_size],
            stamp_gen: 0,
            diff: Vec::new(),
            touched: Vec::new(),
            incremental_calls: 0,
            full_sparse_calls: 0,
            dense_calls: 0,
        }
    }

    /// Kernel selection counts since construction, as
    /// `(incremental, full_sparse, dense_fallback)` MVM invocations.
    /// Incremental includes unchanged-input calls served wholly from the
    /// cache; full-sparse are cold-cache `O(nnz)` recomputes.
    #[must_use]
    pub fn kernel_counts(&self) -> (u64, u64, u64) {
        (
            self.incremental_calls,
            self.full_sparse_calls,
            self.dense_calls,
        )
    }

    fn dense_kernel(plan: &KernelPlan, tile: &Tile, forward: bool, x: &[f32], y: &mut [f32]) {
        if forward {
            plan.forward(tile, x, y);
        } else {
            plan.transposed(tile, x, y);
        }
    }

    fn run_dir(&mut self, forward: bool, x: &[f32], y: &mut [f32]) {
        let t = self.tile_size;
        assert_eq!(x.len(), t, "mvm: input length mismatch");
        assert_eq!(y.len(), t, "mvm: output length mismatch");
        let tile = self.tile.as_ref().expect("unit used before programming");
        let csr = self.csr.as_ref().expect("unit used before programming");
        let csr_t = self.csr_t.as_ref().expect("unit used before programming");
        // `own` is the operator of this direction (its row dots produce the
        // output); `adj` maps a changed input index to the output rows it
        // feeds (row j of the opposite CSR).
        let (own, adj, cache) = if forward {
            (csr, csr_t, &mut self.fwd)
        } else {
            (csr_t, csr, &mut self.trn)
        };
        let budget = self.crossover * (t as f64) * (t as f64);

        if !cache.valid {
            // Cold cache: no diff to exploit; the choice is full-sparse
            // O(nnz) vs dense.
            if (own.nnz() as f64) > budget {
                Self::dense_kernel(&self.plan, tile, forward, x, y);
                self.dense_calls += 1;
            } else {
                own.matvec(x, y);
                self.full_sparse_calls += 1;
            }
            cache.x.copy_from_slice(x);
            cache.y.copy_from_slice(y);
            cache.valid = true;
            return;
        }

        // Diff the input against the cache (value compare: ±0.0 aliasing is
        // bitwise harmless per the module contract, NaN forces recompute).
        self.diff.clear();
        let mut est: u64 = 0;
        for (j, (&new, &old)) in x.iter().zip(&cache.x).enumerate() {
            if new != old {
                self.diff.push(j as u32);
                est += adj.row_nnz(j) as u64;
            }
        }
        if self.diff.is_empty() {
            y.copy_from_slice(&cache.y);
            self.incremental_calls += 1;
            return;
        }
        // `est` counts (changed input → fed output) pairs — a cheap proxy
        // for the touched-row recompute cost that needs no dedup pass.
        if (est as f64) > budget {
            Self::dense_kernel(&self.plan, tile, forward, x, y);
            cache.x.copy_from_slice(x);
            cache.y.copy_from_slice(y);
            self.dense_calls += 1;
            return;
        }

        // Incremental path: mark the output rows fed by any changed input
        // (generation stamps dedup without clearing), then recompute only
        // those rows against the *new* input.
        self.stamp_gen = self.stamp_gen.wrapping_add(1);
        if self.stamp_gen == 0 {
            self.stamp.fill(0);
            self.stamp_gen = 1;
        }
        self.touched.clear();
        for &j in &self.diff {
            let (rows, _) = adj.row(j as usize);
            for &i in rows {
                if self.stamp[i as usize] != self.stamp_gen {
                    self.stamp[i as usize] = self.stamp_gen;
                    self.touched.push(i);
                }
            }
        }
        cache.x.copy_from_slice(x);
        for &i in &self.touched {
            cache.y[i as usize] = own.row_dot(i as usize, x);
        }
        y.copy_from_slice(&cache.y);
        self.incremental_calls += 1;
    }
}

impl MvmUnit for SparseUnit {
    fn program(&mut self, tile: &Tile) {
        assert_eq!(tile.size(), self.tile_size, "tile size mismatch");
        let csr = SparseCsr::from_tile(tile).expect("tile is non-empty");
        self.csr_t = Some(csr.transposed());
        self.csr = Some(csr);
        self.tile = Some(tile.clone());
        self.fwd.invalidate();
        self.trn.invalidate();
    }

    fn forward(&mut self, x: &[f32], y: &mut [f32]) {
        self.run_dir(true, x, y);
    }

    fn transposed(&mut self, x: &[f32], y: &mut [f32]) {
        self.run_dir(false, x, y);
    }
}

/// Auto-calibrated density-crossover threshold θ for this host.
///
/// Measured once per process (and cached): times a fully dense size-64
/// dense-kernel MVM against the equivalent CSR multiply and returns the
/// per-MAC throughput ratio `c_dense / c_sparse` — the touched-work
/// fraction at which the incremental path stops paying. Clamped to
/// `[0.05, 1.0]`; degenerate measurements (non-finite or non-positive
/// timings on very fast hosts) fall back to `0.5`.
#[must_use]
pub fn calibrated_crossover() -> f64 {
    static THETA: OnceLock<f64> = OnceLock::new();
    *THETA.get_or_init(measure_crossover)
}

fn time_probe(mut kernel: impl FnMut(&[f32], &mut [f32]), x: &[f32], y: &mut [f32]) -> f64 {
    const WARMUP: usize = 16;
    const REPS: usize = 64;
    for _ in 0..WARMUP {
        kernel(std::hint::black_box(x), y);
        std::hint::black_box(&y);
    }
    let start = Instant::now();
    for _ in 0..REPS {
        kernel(std::hint::black_box(x), y);
        std::hint::black_box(&y);
    }
    start.elapsed().as_secs_f64() / REPS as f64
}

fn measure_crossover() -> f64 {
    const SIZE: usize = 64;
    // Deterministic pseudo-random dense operand (LCG), so the probe does
    // not depend on any process-global RNG state.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || -> f32 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 40) as f32) / ((1u64 << 24) as f32) - 0.5
    };
    let data: Vec<f32> = (0..SIZE * SIZE).map(|_| next()).collect();
    let tile = Tile::from_vec(SIZE, data).expect("probe tile");
    let csr = SparseCsr::from_tile(&tile).expect("probe csr");
    let x: Vec<f32> = (0..SIZE).map(|_| next()).collect();
    let mut y = vec![0.0_f32; SIZE];

    // Probe the same plan the runtime units will use, so θ reflects the
    // actual (autotuned) dense-kernel throughput on this host.
    let plan = KernelPlan::for_size(SIZE);
    let dense_t = time_probe(|x, y| plan.forward(&tile, x, y), &x, &mut y);
    let sparse_t = time_probe(|x, y| csr.matvec(x, y), &x, &mut y);

    let c_dense = dense_t / (SIZE * SIZE) as f64;
    let c_sparse = sparse_t / csr.nnz() as f64;
    let theta = c_dense / c_sparse;
    if theta.is_finite() && theta > 0.0 {
        theta.clamp(0.05, 1.0)
    } else {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::IdealUnit;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Deterministic tile with the given approximate density.
    fn test_tile(size: usize, density: f64, seed: u64) -> Tile {
        let mut state = seed | 1;
        let mut next = move || -> u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 11
        };
        let data: Vec<f32> = (0..size * size)
            .map(|_| {
                if (next() % 1000) as f64 >= density * 1000.0 {
                    0.0
                } else {
                    ((next() % 2001) as f32 - 1000.0) / 250.0
                }
            })
            .collect();
        Tile::from_vec(size, data).unwrap()
    }

    fn ideal_unit(tile: &Tile) -> IdealUnit {
        let mut u = crate::backend::IdealBackend::new().unit(tile.size());
        u.program(tile);
        u
    }

    /// Drives a sparse and an ideal unit through the same input sequence
    /// (alternating directions, sparse single-flip deltas and occasional
    /// full rewrites) and asserts bitwise-identical outputs throughout.
    fn assert_bitwise_equivalent(tile: &Tile, backend: &SparseBackend, steps: usize) {
        let size = tile.size();
        let mut sparse = backend.unit(size);
        sparse.program(tile);
        let mut ideal = ideal_unit(tile);
        let mut x: Vec<f32> = (0..size).map(|i| (i % 2) as f32).collect();
        let mut ys = vec![0.0_f32; size];
        let mut yi = vec![0.0_f32; size];
        for step in 0..steps {
            match step % 7 {
                // Occasionally rewrite the whole input (high activity)...
                0 => {
                    for (i, v) in x.iter_mut().enumerate() {
                        *v = ((step * 31 + i * 7) % 5) as f32 - 2.0;
                    }
                }
                // ...or change nothing (cache hit)...
                3 => {}
                // ...otherwise flip a couple of entries (late anneal).
                _ => {
                    x[(step * 13) % size] = ((step % 3) as f32) - 1.0;
                    x[(step * 5 + 1) % size] *= -1.0;
                }
            }
            let forward = step % 2 == 0;
            if forward {
                sparse.forward(&x, &mut ys);
                ideal.forward(&x, &mut yi);
            } else {
                sparse.transposed(&x, &mut ys);
                ideal.transposed(&x, &mut yi);
            }
            assert_eq!(
                bits(&ys),
                bits(&yi),
                "divergence at step {step} (forward={forward})"
            );
        }
    }

    #[test]
    fn matches_ideal_bitwise_across_densities_and_crossovers() {
        for &density in &[0.02, 0.3, 1.0] {
            let tile = test_tile(24, density, 0xC0FFEE ^ (density * 100.0) as u64);
            for backend in [
                SparseBackend::with_crossover(1e-12), // effectively always dense
                SparseBackend::with_crossover(0.25),  // genuine mid-run crossover
                SparseBackend::always_sparse(),       // never dense
            ] {
                assert_bitwise_equivalent(&tile, &backend, 60);
            }
        }
    }

    #[test]
    fn always_sparse_never_runs_the_dense_kernel() {
        let tile = test_tile(16, 0.2, 7);
        let mut unit = SparseBackend::always_sparse().unit(16);
        unit.program(&tile);
        let mut y = vec![0.0_f32; 16];
        let mut x = vec![1.0_f32; 16];
        for i in 0..20 {
            x[i % 16] = (i % 3) as f32;
            unit.forward(&x, &mut y);
            unit.transposed(&x, &mut y);
        }
        let (inc, full, dense) = unit.kernel_counts();
        assert_eq!(dense, 0, "always-sparse took a dense fallback");
        assert_eq!(full, 2, "one cold-cache recompute per direction");
        assert!(inc > 0);
    }

    #[test]
    fn tiny_crossover_forces_dense_except_unchanged_inputs() {
        let tile = test_tile(16, 0.5, 9);
        let mut unit = SparseBackend::with_crossover(1e-12).unit(16);
        unit.program(&tile);
        let mut y = vec![0.0_f32; 16];
        let x = vec![1.0_f32; 16];
        unit.forward(&x, &mut y);
        unit.forward(&x, &mut y); // unchanged input: cache hit, no kernel
        let mut x2 = x.clone();
        x2[3] = -1.0;
        unit.forward(&x2, &mut y);
        let (inc, full, dense) = unit.kernel_counts();
        assert_eq!((inc, full, dense), (1, 0, 2));
    }

    #[test]
    fn mid_crossover_switches_kernels_within_one_run() {
        // Sparse tile, θ = 0.5: cold start is full-sparse (nnz below
        // budget), a whole-input rewrite on a denser tile goes dense, a
        // single flip goes incremental.
        let tile = test_tile(16, 0.9, 11);
        let mut unit = SparseBackend::with_crossover(0.5).unit(16);
        unit.program(&tile);
        let mut y = vec![0.0_f32; 16];
        let x = vec![1.0_f32; 16];
        unit.forward(&x, &mut y);
        let (_, full0, dense0) = unit.kernel_counts();
        assert_eq!(full0 + dense0, 1, "cold start runs exactly one full kernel");
        let x2: Vec<f32> = (0..16).map(|i| (i % 3) as f32 - 1.0).collect();
        unit.forward(&x2, &mut y); // ~all inputs changed on a 90% tile → dense
        let (_, _, dense1) = unit.kernel_counts();
        assert!(dense1 > dense0, "high-activity call should fall back dense");
        let mut x3 = x2.clone();
        x3[0] += 1.0;
        unit.forward(&x3, &mut y); // single flip → incremental
        let (inc2, _, dense2) = unit.kernel_counts();
        assert_eq!(dense2, dense1);
        assert!(inc2 > 0);
    }

    #[test]
    fn reprogramming_invalidates_caches() {
        let t1 = test_tile(8, 1.0, 1);
        let t2 = test_tile(8, 1.0, 2);
        let mut unit = SparseBackend::always_sparse().unit(8);
        unit.program(&t1);
        let x = vec![1.0_f32; 8];
        let mut ys = vec![0.0_f32; 8];
        unit.forward(&x, &mut ys);
        unit.program(&t2);
        unit.forward(&x, &mut ys);
        let mut yi = vec![0.0_f32; 8];
        ideal_unit(&t2).forward(&x, &mut yi);
        assert_eq!(bits(&ys), bits(&yi));
    }

    #[test]
    #[should_panic(expected = "before programming")]
    fn unprogrammed_unit_panics() {
        let mut unit = SparseBackend::always_sparse().unit(4);
        let mut y = vec![0.0_f32; 4];
        unit.forward(&[0.0; 4], &mut y);
    }

    #[test]
    fn calibration_is_clamped_and_cached() {
        let a = calibrated_crossover();
        assert!((0.05..=1.0).contains(&a));
        assert_eq!(a.to_bits(), calibrated_crossover().to_bits());
    }

    #[test]
    fn from_config_respects_mode_and_override() {
        let sparse_mode = SophieConfig {
            compute: ComputeMode::Sparse,
            sparse_crossover: Some(0.2),
            ..SophieConfig::default()
        };
        assert_eq!(
            SparseBackend::from_config(&sparse_mode).crossover(),
            f64::INFINITY
        );
        let auto_override = SophieConfig {
            sparse_crossover: Some(0.2),
            ..SophieConfig::default()
        };
        assert_eq!(SparseBackend::from_config(&auto_override).crossover(), 0.2);
        let auto = SparseBackend::from_config(&SophieConfig::default());
        assert!((0.05..=1.0).contains(&auto.crossover()));
    }
}
