//! Fast cached Gaussian sampling for the inner simulation loop.
//!
//! The engine draws one noise sample per ADC output per local iteration —
//! hundreds of millions per run on G22-sized graphs — so it uses the polar
//! (Marsaglia) method, which produces two samples per round and avoids
//! trigonometric calls, with the spare sample cached.

use rand::Rng;

/// A Gaussian sampler that caches the second output of each polar round.
#[derive(Debug, Clone, Default)]
pub struct GaussianSource {
    spare: Option<f64>,
}

impl GaussianSource {
    /// Creates an empty source.
    #[must_use]
    pub fn new() -> Self {
        GaussianSource { spare: None }
    }

    /// Draws one standard-normal sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut src = GaussianSource::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum3 = 0.0;
        for _ in 0..n {
            let x = src.sample(&mut rng);
            sum += x;
            sum2 += x * x;
            sum3 += x * x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn consecutive_samples_are_not_identical() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut src = GaussianSource::new();
        let a = src.sample(&mut rng);
        let b = src.sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_under_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut src = GaussianSource::new();
            (0..10).map(|_| src.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
