//! SOPHIE's core contribution: the tiled, communication-avoiding
//! modification of the PRIS recurrent Ising algorithm.
//!
//! The paper (MICRO 2024) scales a recurrent Ising machine past its
//! hardware capacity with three coupled ideas, all implemented here:
//!
//! * **Symmetric local update** (§III-A1) — tile the transformation matrix,
//!   map each symmetric tile pair onto one bidirectional MVM unit, and run
//!   many recurrent iterations *inside* a pair against frozen offset
//!   vectors, eliminating most global synchronization;
//! * **Stochastic global iteration** (§III-A2) — execute only a random
//!   fraction of the pairs each global iteration and broadcast a single
//!   stochastically chosen spin copy per block column;
//! * **Offline static scheduling** (§III-D) — pre-generate every random
//!   decision ([`Schedule`]) so hardware control reduces to state machines.
//!
//! The engine ([`SophieSolver`]) is generic over [`backend::MvmBackend`]:
//! the same algorithm runs on an exact floating-point substrate or on the
//! OPCM device model from `sophie-hw`. Every run tallies [`OpCounts`], the
//! interface to the power/performance/area models, and
//! [`analytic::analytic_op_counts`] replays those counts schedule-only for
//! problems too large to simulate functionally (K32768).
//!
//! # Example
//!
//! ```
//! use sophie_core::{SophieConfig, SophieSolver};
//! use sophie_graph::generate::{complete, WeightDist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = complete(24, WeightDist::Unit, 0)?;
//! let config = SophieConfig { tile_size: 8, global_iters: 60, ..SophieConfig::default() };
//! let solver = SophieSolver::from_graph(&graph, config)?;
//! let outcome = solver.run(&graph, 1, None)?;
//! // K24 with unit weights has optimum 12·12 = 144.
//! assert!(outcome.best_cut >= 120.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod backend;
pub mod batch;
mod config;
mod engine;
mod error;
mod gaussian;
mod health;
mod outcome;
pub mod queue;
pub mod schedule;
mod solver;
pub mod sparse;

pub use batch::{run_batch, run_batch_ideal, BatchOutcome};
pub use config::{ComputeMode, KernelChoice, SophieConfig};
pub use engine::SophieSolver;
pub use error::{Result, SophieError};
pub use gaussian::GaussianSource;
pub use health::{HealthConfig, RecoveryPolicy};
pub use outcome::SophieOutcome;
pub use schedule::{Round, Schedule};
pub use solver::SophieIsing;
pub use sophie_linalg::{KernelPlan, KernelVariant};
pub use sparse::{SparseBackend, SparseUnit};

// The instrumentation and solver-abstraction layers live in `sophie-solve`
// so solvers that cannot depend on this crate (e.g. `sophie-pris`) share
// them; re-exported here so engine users need only one import path.
pub use sophie_solve::observe;
pub use sophie_solve::{OpCounts, SolveJob, SolveReport, Solver};
