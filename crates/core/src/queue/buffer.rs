//! Pooled device-buffer allocation.
//!
//! Engine state that device commands read or write (spin copies, partial
//! sums, MVM scratch) lives in one [`BufferPool`] and is referenced by
//! opaque [`BufferHandle`]s. Commands name buffers by handle only; the
//! executor checks the referenced buffers out of the pool for the duration
//! of a flush (moving them onto worker threads without copying) and checks
//! them back in afterwards, so host-side stages can keep using plain slice
//! reads between flushes.

/// Opaque reference to one pooled `f32` buffer.
///
/// Handles are cheap to copy and stable for the lifetime of the pool; the
/// generation field catches use of a handle against the wrong pool (or a
/// stale pool) in debug-friendly panics rather than silent aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferHandle {
    index: u32,
    generation: u32,
}

impl BufferHandle {
    /// Position of the buffer in its pool (stable, allocation order).
    #[must_use]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

/// One pool slot: the storage plus its checkout state.
#[derive(Debug, Default)]
struct Slot {
    data: Vec<f32>,
    /// Set while the executor has moved the storage onto a worker; any
    /// host-side access in that window is a bug and panics.
    checked_out: bool,
}

/// Arena of device buffers, one per pool, addressed by [`BufferHandle`].
///
/// The pool is append-only: buffers are allocated once at machine setup
/// (engine state has a fixed shape per run) and recycled across rounds by
/// checkout/checkin rather than free/realloc.
#[derive(Debug, Default)]
pub struct BufferPool {
    slots: Vec<Slot>,
    generation: u32,
}

impl BufferPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        BufferPool {
            slots: Vec::new(),
            // A per-pool tag (not a counter): distinguishes handles from
            // different pools within one process.
            generation: {
                use std::sync::atomic::{AtomicU32, Ordering};
                static NEXT: AtomicU32 = AtomicU32::new(1);
                NEXT.fetch_add(1, Ordering::Relaxed)
            },
        }
    }

    /// Allocates a zeroed buffer of `len` floats and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the pool exceeds `u32::MAX` buffers.
    pub fn alloc(&mut self, len: usize) -> BufferHandle {
        let index = u32::try_from(self.slots.len()).expect("buffer pool exhausted");
        self.slots.push(Slot {
            data: vec![0.0; len],
            checked_out: false,
        });
        BufferHandle {
            index,
            generation: self.generation,
        }
    }

    /// Number of buffers allocated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool holds no buffers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot(&self, handle: BufferHandle) -> &Slot {
        assert_eq!(
            handle.generation, self.generation,
            "buffer handle used against a different pool"
        );
        &self.slots[handle.index()]
    }

    fn slot_mut(&mut self, handle: BufferHandle) -> &mut Slot {
        assert_eq!(
            handle.generation, self.generation,
            "buffer handle used against a different pool"
        );
        &mut self.slots[handle.index()]
    }

    /// Reads a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is checked out (a flush is mid-flight) or the
    /// handle belongs to another pool.
    #[must_use]
    pub fn get(&self, handle: BufferHandle) -> &[f32] {
        let slot = self.slot(handle);
        assert!(!slot.checked_out, "buffer read while checked out");
        &slot.data
    }

    /// Mutates a buffer in place (host-side stages between flushes).
    ///
    /// # Panics
    ///
    /// Same conditions as [`BufferPool::get`].
    pub fn get_mut(&mut self, handle: BufferHandle) -> &mut [f32] {
        let slot = self.slot_mut(handle);
        assert!(!slot.checked_out, "buffer mutated while checked out");
        &mut slot.data
    }

    /// Checks a buffer out of the pool, moving its storage to the caller
    /// (no copy). The slot stays reserved until [`BufferPool::restore`].
    ///
    /// # Panics
    ///
    /// Panics on double checkout — two commands in one flush batch naming
    /// the same buffer from different units would race.
    pub fn take(&mut self, handle: BufferHandle) -> Vec<f32> {
        let slot = self.slot_mut(handle);
        assert!(!slot.checked_out, "buffer double-checkout");
        slot.checked_out = true;
        std::mem::take(&mut slot.data)
    }

    /// Returns a checked-out buffer to its slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not checked out.
    pub fn restore(&mut self, handle: BufferHandle, data: Vec<f32>) {
        let slot = self.slot_mut(handle);
        assert!(slot.checked_out, "restore of a buffer that was not taken");
        slot.data = data;
        slot.checked_out = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroes_and_indexes_in_order() {
        let mut pool = BufferPool::new();
        let a = pool.alloc(3);
        let b = pool.alloc(0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(pool.get(a), &[0.0, 0.0, 0.0]);
        assert_eq!(pool.get(b), &[] as &[f32]);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn take_and_restore_round_trip() {
        let mut pool = BufferPool::new();
        let h = pool.alloc(2);
        pool.get_mut(h).copy_from_slice(&[1.0, 2.0]);
        let mut v = pool.take(h);
        v[0] = 9.0;
        pool.restore(h, v);
        assert_eq!(pool.get(h), &[9.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "double-checkout")]
    fn double_take_panics() {
        let mut pool = BufferPool::new();
        let h = pool.alloc(1);
        let _a = pool.take(h);
        let _b = pool.take(h);
    }

    #[test]
    #[should_panic(expected = "checked out")]
    fn read_while_taken_panics() {
        let mut pool = BufferPool::new();
        let h = pool.alloc(1);
        let _a = pool.take(h);
        let _ = pool.get(h);
    }

    #[test]
    #[should_panic(expected = "different pool")]
    fn cross_pool_handle_panics() {
        let mut a = BufferPool::new();
        let mut b = BufferPool::new();
        let h = a.alloc(1);
        let _ = b.alloc(1);
        let _ = b.get(h);
    }
}
