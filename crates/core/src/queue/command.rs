//! Typed device commands, completion records, and the [`DeviceQueue`]
//! contract.
//!
//! The engine never calls [`MvmUnit`](crate::backend::MvmUnit) methods
//! directly (enforced by a CI grep gate over the stage modules); it
//! submits [`CommandKind`]s against unit indices and buffer handles, and
//! the queue executes them at flush boundaries. Every executed command
//! yields one [`Completion`] carrying its exact operation cost, so the
//! run-total [`OpCounts`] is the literal sum of per-command records plus
//! the host-side records the engine reports for controller work.

use sophie_solve::OpCounts;

use super::buffer::{BufferHandle, BufferPool};
use super::exec::ExecCtx;
use crate::backend::{FaultReport, MvmBackend, MvmUnit};

/// Direction of a bidirectional MVM read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvmDir {
    /// `y = T·x` (the pair's primary tile orientation).
    Forward,
    /// `y = Tᵀ·x` (the same array read in the other optical direction).
    Transposed,
}

/// Input operand of an MVM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A pooled buffer (a pair's private spin copy).
    Buf(BufferHandle),
    /// Block `d` of the shared global spin vector
    /// (`global[d·t .. (d+1)·t]`), read-only during a flush.
    GlobalBlock(usize),
}

/// Threshold epilogue of a local-iteration MVM: add the frozen offset
/// vector of logical tile `(tile_row, tile_col)` and per-node noise, then
/// threshold into `dest` (the 1-bit ADC read path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdSpec {
    /// Row block of the logical tile whose offset vector applies.
    pub tile_row: usize,
    /// Column block of the logical tile whose offset vector applies.
    pub tile_col: usize,
    /// Block whose per-node thresholds/noise scales apply (the output
    /// block row of the MVM).
    pub out_block: usize,
    /// Spin-copy buffer receiving the thresholded bits.
    pub dest: BufferHandle,
}

/// One typed device command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Program the unit with its pair's primary tile (an OPCM write).
    ProgramTile,
    /// One matrix-vector product, with optional 8-bit capture and
    /// threshold epilogue.
    Mvm {
        /// Read direction.
        dir: MvmDir,
        /// Input spins.
        input: Src,
        /// Raw MVM output buffer.
        output: BufferHandle,
        /// Run the 8-bit ADC read path over the output (the last local
        /// iteration of a round; otherwise the output is read in 1-bit
        /// threshold mode).
        quantize: bool,
        /// Capture the (quantized) output as the pair's partial sum.
        save_partial: Option<BufferHandle>,
        /// Threshold epilogue; `None` for partial-sum refreshes.
        threshold: Option<ThresholdSpec>,
    },
    /// Calibration MVM: drive the pair's deterministic probe vector
    /// through the unit and report the relative ∞-norm residual against
    /// the exact tile product in the completion.
    Probe,
    /// Drain the unit's transient-fault reports into the completion.
    CollectFaults,
    /// In-place recovery reprogram of the pair's tile.
    Reprogram,
    /// Swap in a spare physical unit and program it with the pair's tile.
    /// Only valid in a serial flush (the spare comes from the backend).
    Remap,
}

/// One queued command: the kind plus its deterministic ordering key.
#[derive(Debug, Clone, Copy)]
pub struct Command {
    /// Target unit (= pair index).
    pub unit: usize,
    /// Round the command belongs to (0 = setup).
    pub round: u64,
    /// Submission ordinal within `(round, unit)`.
    pub wave: u32,
    /// Call `begin_round(round)` on the unit before executing (first
    /// solve command of a selected pair's round chain).
    pub starts_round: bool,
    /// The operation.
    pub kind: CommandKind,
}

impl Command {
    /// The command's completion-ordering key.
    #[must_use]
    pub fn key(&self) -> CmdKey {
        CmdKey {
            round: self.round,
            wave: self.wave,
            unit: self.unit as u32,
        }
    }
}

/// Deterministic completion-ordering key: commands complete in submission
/// order per unit, and cross-unit order is fixed by `(round, wave, unit)`
/// — independent of worker-pool scheduling, so completion streams are
/// byte-identical at every `SOPHIE_THREADS` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CmdKey {
    /// Round (0 = setup).
    pub round: u64,
    /// Per-`(round, unit)` submission ordinal.
    pub wave: u32,
    /// Unit (= pair) index.
    pub unit: u32,
}

/// Completion record of one executed command: the ordering key, a label
/// from the command vocabulary, and the exact cost attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Ordering key (see [`CmdKey`]).
    pub key: CmdKey,
    /// Command label: `"program_tile"`, `"mvm_forward"`,
    /// `"mvm_transposed"`, `"probe"`, `"collect_faults"`, `"reprogram"`,
    /// or `"remap"`.
    pub kind: &'static str,
    /// Exact operation counts attributable to this command. Summing the
    /// `cost` of every completion of a run (plus the engine's host-side
    /// records) reproduces the run-total [`OpCounts`] exactly.
    pub cost: OpCounts,
    /// Nominal multiply-accumulates performed (`t²` per MVM-class
    /// command).
    pub macs: u64,
    /// OPCM cells touched (`t²` for array reads and writes).
    pub cells: u64,
    /// Probe residual (probe commands only).
    pub residual: Option<f64>,
    /// Drained transient-fault reports (`collect_faults` only), in firing
    /// order.
    pub faults: Vec<FaultReport>,
}

/// One schedulable unit lane: the unit index plus exclusive access to the
/// unit for the duration of a flush. Built by the engine from its pair
/// states; the executor never sees the rest of the pair state.
#[derive(Debug)]
pub struct Lane<'a, U> {
    /// Unit (= pair) index.
    pub unit_index: usize,
    /// The physical unit.
    pub unit: &'a mut U,
}

/// Asynchronous command-queue contract: submission accumulates typed
/// commands; flush executes everything pending against a set of unit
/// lanes and returns the completions sorted by [`CmdKey`].
///
/// Determinism rules:
///
/// * commands execute in submission order per unit, each unit's chain on
///   one worker (a unit is never touched by two threads in one flush);
/// * a parallel [`DeviceQueue::flush`] may interleave units arbitrarily
///   in time, but returned completions are sorted by `(round, wave,
///   unit)`, so the observable stream is schedule-independent;
/// * [`DeviceQueue::flush_serial`] executes lanes in ascending unit order
///   on the calling thread — required for `Remap` (which draws spare
///   units from the backend) and for setup programming, where backends
///   may hand out unit identity from shared counters.
pub trait DeviceQueue {
    /// Enqueues a command for `unit`, assigning its wave ordinal; returns
    /// the completion-ordering key.
    fn submit(&mut self, unit: usize, starts_round: bool, kind: CommandKind) -> CmdKey;

    /// Number of commands pending execution.
    fn pending(&self) -> usize;

    /// Starts a new round: subsequent submissions are keyed to `round`
    /// with wave ordinals restarting at 0.
    fn begin_round(&mut self, round: u64);

    /// Executes every pending command, fanning independent unit chains
    /// across the worker pool. Buffers named by the commands are checked
    /// out of `pool` for the flush and restored afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a pending command targets a unit with no lane, or
    /// contains a `Remap` (serial-only).
    fn flush<U: MvmUnit>(
        &mut self,
        lanes: &mut [Lane<'_, U>],
        pool: &mut BufferPool,
        ctx: &ExecCtx<'_>,
    ) -> Vec<Completion>;

    /// Executes every pending command serially, in ascending unit order,
    /// on the calling thread. Supports the full command vocabulary
    /// including `Remap` (spare units drawn from `backend`).
    ///
    /// # Panics
    ///
    /// Panics if a pending command targets a unit with no lane.
    fn flush_serial<B: MvmBackend>(
        &mut self,
        backend: &B,
        lanes: &mut [Lane<'_, B::Unit>],
        pool: &mut BufferPool,
        ctx: &ExecCtx<'_>,
    ) -> Vec<Completion>;

    /// Flush-and-drain barrier: executes everything pending and asserts
    /// the queue is empty afterwards.
    fn sync<U: MvmUnit>(
        &mut self,
        lanes: &mut [Lane<'_, U>],
        pool: &mut BufferPool,
        ctx: &ExecCtx<'_>,
    ) -> Vec<Completion> {
        let done = self.flush(lanes, pool, ctx);
        assert_eq!(self.pending(), 0, "sync left commands pending");
        done
    }
}

/// The engine's [`DeviceQueue`] implementation: a pending-command vector
/// plus per-unit wave counters.
#[derive(Debug)]
pub struct CommandQueue {
    pending: Vec<Command>,
    round: u64,
    waves: Vec<u32>,
}

impl CommandQueue {
    /// Creates a queue for `units` unit lanes, positioned at round 0.
    #[must_use]
    pub fn new(units: usize) -> Self {
        CommandQueue {
            pending: Vec::new(),
            round: 0,
            waves: vec![0; units],
        }
    }

    /// Current round key.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    pub(super) fn take_pending(&mut self) -> Vec<Command> {
        std::mem::take(&mut self.pending)
    }

    pub(super) fn unit_count(&self) -> usize {
        self.waves.len()
    }
}

impl DeviceQueue for CommandQueue {
    fn submit(&mut self, unit: usize, starts_round: bool, kind: CommandKind) -> CmdKey {
        let wave = self.waves[unit];
        self.waves[unit] = wave.checked_add(1).expect("per-unit wave counter overflow");
        let cmd = Command {
            unit,
            round: self.round,
            wave,
            starts_round,
            kind,
        };
        let key = cmd.key();
        self.pending.push(cmd);
        key
    }

    fn pending(&self) -> usize {
        self.pending.len()
    }

    fn begin_round(&mut self, round: u64) {
        assert!(
            self.pending.is_empty(),
            "begin_round with commands still pending"
        );
        self.round = round;
        self.waves.fill(0);
    }

    fn flush<U: MvmUnit>(
        &mut self,
        lanes: &mut [Lane<'_, U>],
        pool: &mut BufferPool,
        ctx: &ExecCtx<'_>,
    ) -> Vec<Completion> {
        super::exec::flush_parallel(self, lanes, pool, ctx)
    }

    fn flush_serial<B: MvmBackend>(
        &mut self,
        backend: &B,
        lanes: &mut [Lane<'_, B::Unit>],
        pool: &mut BufferPool,
        ctx: &ExecCtx<'_>,
    ) -> Vec<Completion> {
        super::exec::flush_serial(self, backend, lanes, pool, ctx)
    }
}
