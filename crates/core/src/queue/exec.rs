//! Command execution: per-unit chains, parallel fan-out, and exact
//! per-command cost records.
//!
//! A flush groups the pending commands by unit (submission order is
//! preserved within a unit), checks every referenced buffer out of the
//! pool, and executes each unit's chain as one task — in parallel across
//! the worker pool ([`flush_parallel`]) or in ascending unit order on the
//! calling thread ([`flush_serial`]). Because every chain touches only
//! its own unit and buffers, and all randomness comes from
//! counter-derived per-`(round, unit)` streams, the completions (and the
//! machine state they leave behind) are bit-identical for every
//! `SOPHIE_THREADS` value.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sophie_linalg::{par, KernelPlan, Tile};
use sophie_solve::OpCounts;

use super::buffer::{BufferHandle, BufferPool};
use super::command::{
    Command, CommandKind, CommandQueue, Completion, Lane, MvmDir, Src, ThresholdSpec,
};
use super::{noise_rng, noise_stream_seed, vec_at};
use crate::backend::{MvmBackend, MvmUnit};
use crate::gaussian::GaussianSource;

/// Floor on the probe-residual denominator, guarding all-zero tiles
/// (whose exact product is identically zero).
const DENOM_FLOOR: f32 = 1e-6;

/// Read-only execution context of one flush: the solver's frozen tables
/// plus the run's RNG seeds. Everything a command needs beyond its unit
/// and buffers.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx<'a> {
    /// Primary tile of each pair (exact values; probe references).
    pub tiles: &'a [Tile],
    /// Per-node thresholds, padded (`b·t` values).
    pub thresholds: &'a [f32],
    /// Per-node noise scales, padded.
    pub noise_scale: &'a [f32],
    /// Per-logical-tile offset vectors (`b²·t` values), frozen at the
    /// last synchronization.
    pub offsets: &'a [f32],
    /// Global spin vector (read-only during a flush; [`Src::GlobalBlock`]
    /// inputs resolve here).
    pub global: &'a [f32],
    /// Tile edge length.
    pub t: usize,
    /// Blocks per matrix side.
    pub b: usize,
    /// Job seed (threshold-noise streams).
    pub seed: u64,
    /// Health probe seed (probe-vector streams); unused when no probes
    /// are submitted.
    pub probe_seed: u64,
    /// Noise level φ.
    pub phi: f32,
    /// Kernel plan of this run: the executor's reference computations
    /// (probe expectations) go through it. Eligible adjacent
    /// forward/transposed commands are always offered to the unit via
    /// [`MvmUnit::forward_transposed`]; plan-aware units decide whether
    /// that runs fused.
    pub plan: KernelPlan,
}

/// Checked-out buffer storage of one unit chain.
///
/// A handle's storage is moved out for the duration of one command step
/// and moved back afterwards, so a step can hold its input and output
/// simultaneously without aliasing (handles within a step are always
/// distinct; across steps the same handle may serve different roles).
struct Workspace {
    slots: Vec<(BufferHandle, Option<Vec<f32>>)>,
}

impl Workspace {
    fn checkout(handles: &[BufferHandle], pool: &mut BufferPool) -> Self {
        Workspace {
            slots: handles.iter().map(|&h| (h, Some(pool.take(h)))).collect(),
        }
    }

    fn restore(self, pool: &mut BufferPool) {
        for (h, data) in self.slots {
            pool.restore(h, data.expect("buffer not returned to workspace"));
        }
    }

    fn take(&mut self, h: BufferHandle) -> Vec<f32> {
        self.slots
            .iter_mut()
            .find(|(sh, _)| *sh == h)
            .expect("command names a buffer outside its checkout set")
            .1
            .take()
            .expect("buffer taken twice within one step")
    }

    fn put(&mut self, h: BufferHandle, data: Vec<f32>) {
        let slot = self
            .slots
            .iter_mut()
            .find(|(sh, _)| *sh == h)
            .expect("command names a buffer outside its checkout set");
        assert!(slot.1.is_none(), "buffer returned twice");
        slot.1 = Some(data);
    }
}

/// Collects the distinct buffer handles a chain references.
fn chain_handles(cmds: &[Command]) -> Vec<BufferHandle> {
    let mut handles: Vec<BufferHandle> = Vec::new();
    let add = |h: BufferHandle, handles: &mut Vec<BufferHandle>| {
        if !handles.contains(&h) {
            handles.push(h);
        }
    };
    for cmd in cmds {
        if let CommandKind::Mvm {
            input,
            output,
            save_partial,
            threshold,
            ..
        } = cmd.kind
        {
            if let Src::Buf(h) = input {
                add(h, &mut handles);
            }
            add(output, &mut handles);
            if let Some(h) = save_partial {
                add(h, &mut handles);
            }
            if let Some(spec) = threshold {
                add(spec.dest, &mut handles);
            }
        }
    }
    handles
}

/// Per-`(round, unit)` threshold-noise state, created at first use within
/// a chain (creation draws nothing, so lazy creation matches the legacy
/// once-per-round construction exactly).
struct NoiseState {
    round: u64,
    rng: SmallRng,
    gauss: GaussianSource,
}

/// True when `cmd` (a forward MVM) and `next` (its successor in the
/// chain) may be offered to the unit as one fused forward + transposed
/// request: both plain global-input MVMs of the same round with distinct
/// outputs, no partial saves, and no threshold epilogues. The offer is
/// semantics-preserving for every backend — [`MvmUnit`]'s default runs
/// the exact sequential order — and lets kernel-plan-aware units serve
/// both directions in one pass over the stored weights.
fn fusable_pair(cmd: &Command, next: &Command) -> bool {
    if next.starts_round || next.round != cmd.round {
        return false;
    }
    matches!(
        (cmd.kind, next.kind),
        (
            CommandKind::Mvm {
                dir: MvmDir::Forward,
                input: Src::GlobalBlock(_),
                output: out_f,
                save_partial: None,
                threshold: None,
                ..
            },
            CommandKind::Mvm {
                dir: MvmDir::Transposed,
                input: Src::GlobalBlock(_),
                output: out_t,
                save_partial: None,
                threshold: None,
                ..
            },
        ) if out_f != out_t
    )
}

/// Cost record of one MVM command (identical for fused and sequential
/// execution, so timelines and aggregates never depend on fusion).
fn mvm_cost(t: usize, quantize: bool) -> OpCounts {
    let mut cost = OpCounts::new();
    if quantize {
        cost.tile_mvms_8bit += 1;
        cost.adc_8bit_samples += t as u64;
    } else {
        cost.tile_mvms_1bit += 1;
        cost.adc_1bit_samples += t as u64;
    }
    cost.eo_input_bits += t as u64;
    cost
}

/// Executes one unit's command chain in submission order, appending one
/// completion per command. Adjacent forward/transposed pairs that
/// [`fusable_pair`] accepts are submitted through
/// [`MvmUnit::forward_transposed`] but still complete as two commands
/// with unchanged per-command costs.
fn exec_chain<U: MvmUnit>(
    unit_index: usize,
    unit: &mut U,
    cmds: &[Command],
    ws: &mut Workspace,
    ctx: &ExecCtx<'_>,
    mut spare: Option<&mut dyn FnMut() -> U>,
    out: &mut Vec<Completion>,
) {
    let t = ctx.t;
    let cell_count = (t * t) as u64;
    let mut noise: Option<NoiseState> = None;
    let mut i = 0;
    while i < cmds.len() {
        let cmd = &cmds[i];
        if cmd.starts_round {
            unit.begin_round(cmd.round);
        }
        if let Some(next) = cmds.get(i + 1) {
            if fusable_pair(cmd, next) {
                let CommandKind::Mvm {
                    input: Src::GlobalBlock(d_f),
                    output: out_f,
                    quantize: q_f,
                    ..
                } = cmd.kind
                else {
                    unreachable!("fusable_pair accepted a non-MVM first command");
                };
                let CommandKind::Mvm {
                    input: Src::GlobalBlock(d_t),
                    output: out_t,
                    quantize: q_t,
                    ..
                } = next.kind
                else {
                    unreachable!("fusable_pair accepted a non-MVM second command");
                };
                let mut y_f = ws.take(out_f);
                let mut y_t = ws.take(out_t);
                unit.forward_transposed(
                    &ctx.global[d_f * t..(d_f + 1) * t],
                    &mut y_f,
                    q_f,
                    &ctx.global[d_t * t..(d_t + 1) * t],
                    &mut y_t,
                    q_t,
                );
                ws.put(out_f, y_f);
                ws.put(out_t, y_t);
                for (c, q, kind) in [(cmd, q_f, "mvm_forward"), (next, q_t, "mvm_transposed")] {
                    out.push(Completion {
                        key: c.key(),
                        kind,
                        cost: mvm_cost(t, q),
                        macs: cell_count,
                        cells: cell_count,
                        residual: None,
                        faults: Vec::new(),
                    });
                }
                i += 2;
                continue;
            }
        }
        let mut cost = OpCounts::new();
        let mut residual = None;
        let mut faults = Vec::new();
        let mut macs = 0_u64;
        let mut cells = 0_u64;
        let kind = match cmd.kind {
            CommandKind::ProgramTile => {
                unit.program(&ctx.tiles[unit_index]);
                cost.tiles_programmed += 1;
                cells = cell_count;
                "program_tile"
            }
            CommandKind::Reprogram => {
                unit.program(&ctx.tiles[unit_index]);
                cost.tiles_programmed += 1;
                cost.recovery_reprograms += 1;
                cells = cell_count;
                "reprogram"
            }
            CommandKind::Remap => {
                let fresh = spare
                    .as_mut()
                    .expect("Remap requires a serial flush with backend access");
                *unit = fresh();
                unit.program(&ctx.tiles[unit_index]);
                cost.tiles_programmed += 1;
                cost.recovery_reprograms += 1;
                cost.units_remapped += 1;
                cells = cell_count;
                "remap"
            }
            CommandKind::CollectFaults => {
                faults = unit.take_fault_reports();
                "collect_faults"
            }
            CommandKind::Probe => {
                residual = Some(run_probe(unit_index, unit, ctx, &mut cost));
                macs = cell_count;
                cells = cell_count;
                "probe"
            }
            CommandKind::Mvm {
                dir,
                input,
                output,
                quantize,
                save_partial,
                threshold,
            } => {
                run_mvm(
                    unit_index,
                    unit,
                    ctx,
                    ws,
                    &mut noise,
                    cmd.round,
                    dir,
                    input,
                    output,
                    quantize,
                    save_partial,
                    threshold,
                    &mut cost,
                );
                macs = cell_count;
                cells = cell_count;
                match dir {
                    MvmDir::Forward => "mvm_forward",
                    MvmDir::Transposed => "mvm_transposed",
                }
            }
        };
        out.push(Completion {
            key: cmd.key(),
            kind,
            cost,
            macs,
            cells,
            residual,
            faults,
        });
        i += 1;
    }
}

/// One MVM command: array read, optional 8-bit capture, optional partial
/// save, optional threshold epilogue. Counts follow the legacy stage
/// accounting exactly: threshold reads charge the noise injector, plain
/// partial refreshes do not.
#[allow(clippy::too_many_arguments)]
fn run_mvm<U: MvmUnit>(
    unit_index: usize,
    unit: &mut U,
    ctx: &ExecCtx<'_>,
    ws: &mut Workspace,
    noise: &mut Option<NoiseState>,
    round: u64,
    dir: MvmDir,
    input: Src,
    output: BufferHandle,
    quantize: bool,
    save_partial: Option<BufferHandle>,
    threshold: Option<ThresholdSpec>,
    cost: &mut OpCounts,
) {
    let t = ctx.t;
    let mut y = ws.take(output);
    match input {
        Src::GlobalBlock(d) => {
            let x = &ctx.global[d * t..(d + 1) * t];
            match dir {
                MvmDir::Forward => unit.forward(x, &mut y),
                MvmDir::Transposed => unit.transposed(x, &mut y),
            }
        }
        Src::Buf(h) => {
            let x = ws.take(h);
            match dir {
                MvmDir::Forward => unit.forward(&x, &mut y),
                MvmDir::Transposed => unit.transposed(&x, &mut y),
            }
            ws.put(h, x);
        }
    }
    if quantize {
        unit.quantize_8bit(&mut y);
        cost.tile_mvms_8bit += 1;
        cost.adc_8bit_samples += t as u64;
    } else {
        cost.tile_mvms_1bit += 1;
        cost.adc_1bit_samples += t as u64;
    }
    cost.eo_input_bits += t as u64;
    if let Some(h) = save_partial {
        let mut p = ws.take(h);
        p.copy_from_slice(&y);
        ws.put(h, p);
    }
    if let Some(spec) = threshold {
        cost.noise_injections += t as u64;
        let st = noise.get_or_insert_with(|| NoiseState {
            round,
            rng: noise_rng(ctx.seed, round, unit_index as u64),
            gauss: GaussianSource::new(),
        });
        assert_eq!(st.round, round, "threshold chain spans rounds");
        let theta = &ctx.thresholds[spec.out_block * t..(spec.out_block + 1) * t];
        let scale = &ctx.noise_scale[spec.out_block * t..(spec.out_block + 1) * t];
        let offset = &ctx.offsets[vec_at(ctx.b, t, spec.tile_row, spec.tile_col)];
        let mut dest = ws.take(spec.dest);
        if ctx.phi > 0.0 {
            for i in 0..t {
                let noisy =
                    y[i] + offset[i] + ctx.phi * scale[i] * st.gauss.sample(&mut st.rng) as f32;
                dest[i] = if noisy >= theta[i] { 1.0 } else { 0.0 };
            }
        } else {
            for i in 0..t {
                dest[i] = if y[i] + offset[i] >= theta[i] {
                    1.0
                } else {
                    0.0
                };
            }
        }
        ws.put(spec.dest, dest);
    }
    ws.put(output, y);
}

/// One calibration MVM: device output vs. exact tile product on the
/// pair's deterministic probe vector, as a relative ∞-norm residual. The
/// probe vector is fixed per pair (independent of round and job seed): a
/// dense 0/1 pattern matching the unit's operational input domain, so the
/// ADC range assumptions hold.
fn run_probe<U: MvmUnit>(
    unit_index: usize,
    unit: &mut U,
    ctx: &ExecCtx<'_>,
    cost: &mut OpCounts,
) -> f64 {
    let t = ctx.t;
    let mut probe = vec![0.0_f32; t];
    let mut expected = vec![0.0_f32; t];
    let mut measured = vec![0.0_f32; t];
    let mut rng = SmallRng::seed_from_u64(noise_stream_seed(ctx.probe_seed, 0, unit_index as u64));
    for p in probe.iter_mut() {
        *p = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
    }
    ctx.plan
        .forward(&ctx.tiles[unit_index], &probe, &mut expected);
    unit.forward(&probe, &mut measured);
    unit.quantize_8bit(&mut measured);
    cost.probe_mvms += 1;
    cost.tile_mvms_8bit += 1;
    cost.adc_8bit_samples += t as u64;
    cost.eo_input_bits += t as u64;

    let mut max_abs = 0.0_f32;
    let mut max_err = 0.0_f32;
    for (&m, &e) in measured.iter().zip(&expected) {
        max_abs = max_abs.max(e.abs());
        max_err = max_err.max((m - e).abs());
    }
    f64::from(max_err) / f64::from(max_abs.max(DENOM_FLOOR))
}

/// Groups the pending commands by lane position, preserving submission
/// order within each unit.
fn group_by_lane<U>(cmds: Vec<Command>, lanes: &[Lane<'_, U>], units: usize) -> Vec<Vec<Command>> {
    let mut lookup = vec![usize::MAX; units];
    for (i, lane) in lanes.iter().enumerate() {
        lookup[lane.unit_index] = i;
    }
    let mut groups: Vec<Vec<Command>> = (0..lanes.len()).map(|_| Vec::new()).collect();
    for cmd in cmds {
        let slot = lookup[cmd.unit];
        assert_ne!(
            slot,
            usize::MAX,
            "pending command targets a unit with no lane"
        );
        groups[slot].push(cmd);
    }
    groups
}

/// Per-lane work item moved onto a worker thread.
struct LaneWork<'a, U> {
    unit_index: usize,
    unit: &'a mut U,
    cmds: Vec<Command>,
    ws: Workspace,
    done: Vec<Completion>,
}

pub(super) fn flush_parallel<U: MvmUnit>(
    queue: &mut CommandQueue,
    lanes: &mut [Lane<'_, U>],
    pool: &mut BufferPool,
    ctx: &ExecCtx<'_>,
) -> Vec<Completion> {
    let cmds = queue.take_pending();
    if cmds.is_empty() {
        return Vec::new();
    }
    let mut groups = group_by_lane(cmds, lanes, queue.unit_count());
    let mut work: Vec<LaneWork<'_, U>> = Vec::new();
    for (lane, cmds) in lanes.iter_mut().zip(groups.iter_mut()) {
        if cmds.is_empty() {
            continue;
        }
        let cmds = std::mem::take(cmds);
        let ws = Workspace::checkout(&chain_handles(&cmds), pool);
        let done = Vec::with_capacity(cmds.len());
        work.push(LaneWork {
            unit_index: lane.unit_index,
            unit: &mut *lane.unit,
            cmds,
            ws,
            done,
        });
    }
    let chunks = work.len().max(1);
    par::for_each_chunk_mut(&mut work, chunks, |_, chunk| {
        for w in chunk {
            exec_chain(
                w.unit_index,
                w.unit,
                &w.cmds,
                &mut w.ws,
                ctx,
                None,
                &mut w.done,
            );
        }
    });
    let mut completions = Vec::with_capacity(work.iter().map(|w| w.done.len()).sum());
    for w in work {
        w.ws.restore(pool);
        completions.extend(w.done);
    }
    completions.sort_by_key(|c| c.key);
    completions
}

pub(super) fn flush_serial<B: MvmBackend>(
    queue: &mut CommandQueue,
    backend: &B,
    lanes: &mut [Lane<'_, B::Unit>],
    pool: &mut BufferPool,
    ctx: &ExecCtx<'_>,
) -> Vec<Completion> {
    let cmds = queue.take_pending();
    if cmds.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..lanes.len()).collect();
    order.sort_by_key(|&i| lanes[i].unit_index);
    let groups = group_by_lane(cmds, lanes, queue.unit_count());
    let t = ctx.t;
    let mut spare = || backend.unit(t);
    let mut completions = Vec::new();
    for i in order {
        let cmds = &groups[i];
        if cmds.is_empty() {
            continue;
        }
        let lane = &mut lanes[i];
        let mut ws = Workspace::checkout(&chain_handles(cmds), pool);
        exec_chain(
            lane.unit_index,
            lane.unit,
            cmds,
            &mut ws,
            ctx,
            Some(&mut spare),
            &mut completions,
        );
        ws.restore(pool);
    }
    completions.sort_by_key(|c| c.key);
    completions
}
