//! Device-runtime layer: typed command queues over pooled buffers.
//!
//! The engine's stage modules drive every backend — ideal, OPCM,
//! fault-injected, and the delta-driven sparse backend — through this one
//! seam: they *submit* typed commands ([`CommandKind`]) against unit
//! indices and [`BufferHandle`]s, and a [`DeviceQueue`] executes the
//! pending batch at explicit flush points. This decouples round
//! scheduling from device latency (probe traffic rides in the same flush
//! as solve MVMs instead of serializing after it) and gives every
//! executed command an exact [`Completion`] cost record, so run totals
//! are per-command sums rather than lump estimates. `sophie-hw` re-exports
//! this module and binds the paper's §IV-A cost constants to the records.
//!
//! # Determinism contract
//!
//! * Commands execute in submission order per unit; one unit's chain
//!   never spans two workers within a flush.
//! * Completions are returned sorted by [`CmdKey`] `(round, wave, unit)`
//!   — a pure function of submission, never of worker scheduling.
//! * All randomness (threshold noise, probe vectors) derives from
//!   counter-based per-`(round, unit)` streams seeded here, so event
//!   streams and machine state are byte-identical at every
//!   `SOPHIE_THREADS` value and every flush granularity (`queue_depth`).

mod buffer;
mod command;
mod exec;
mod timeline;

pub use buffer::{BufferHandle, BufferPool};
pub use command::{
    CmdKey, Command, CommandKind, CommandQueue, Completion, DeviceQueue, Lane, MvmDir, Src,
    ThresholdSpec,
};
pub use exec::ExecCtx;
pub use timeline::{NullTimeline, TimelineSink};

/// Flat index range of logical tile `(r, c)` in the `b²·t`-long offsets
/// buffer.
#[must_use]
pub fn vec_at(b: usize, t: usize, r: usize, c: usize) -> std::ops::Range<usize> {
    (r * b + c) * t..(r * b + c + 1) * t
}

/// Seed of the private noise stream used by unit `unit_index` during round
/// `round_index` (1-based; 0 is implicitly the serial setup stream of
/// `SmallRng::seed_from_u64(seed)`).
///
/// Derived purely from the job seed and the (round, unit) coordinates —
/// never from thread identity or execution order — which is what makes
/// engine traces bit-identical for every `SOPHIE_THREADS` setting. The
/// chained SplitMix64 finalizers decorrelate adjacent coordinates.
#[must_use]
pub fn noise_stream_seed(seed: u64, round_index: u64, unit_index: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    mix(mix(mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)) ^ round_index) ^ unit_index)
}

/// The unit's private noise RNG for one round.
#[must_use]
pub fn noise_rng(seed: u64, round_index: u64, unit_index: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(noise_stream_seed(seed, round_index, unit_index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{IdealBackend, MvmBackend};
    use sophie_linalg::Tile;

    fn ctx<'a>(tiles: &'a [Tile], zeros: &'a [f32], t: usize) -> ExecCtx<'a> {
        ExecCtx {
            tiles,
            thresholds: zeros,
            noise_scale: zeros,
            offsets: zeros,
            global: zeros,
            t,
            b: 1,
            seed: 0,
            probe_seed: 0,
            phi: 0.0,
            plan: sophie_linalg::KernelPlan::scalar(),
        }
    }

    #[test]
    fn submission_assigns_monotone_waves_per_unit() {
        let mut q = CommandQueue::new(2);
        q.begin_round(3);
        let a = q.submit(0, true, CommandKind::CollectFaults);
        let b = q.submit(1, false, CommandKind::CollectFaults);
        let c = q.submit(0, false, CommandKind::CollectFaults);
        assert_eq!((a.round, a.wave, a.unit), (3, 0, 0));
        assert_eq!((b.round, b.wave, b.unit), (3, 0, 1));
        assert_eq!((c.round, c.wave, c.unit), (3, 1, 0));
        assert_eq!(q.pending(), 3);
    }

    #[test]
    fn flush_executes_mvm_chain_and_attributes_costs() {
        let t = 2;
        let tiles = vec![Tile::from_vec(t, vec![1.0, 2.0, 3.0, 4.0]).unwrap()];
        let zeros = vec![0.0_f32; 4];
        let backend = IdealBackend::new();
        let mut unit = backend.unit(t);
        let mut pool = BufferPool::new();
        let x = pool.alloc(t);
        let y = pool.alloc(t);
        pool.get_mut(x).copy_from_slice(&[1.0, 1.0]);

        let mut q = CommandQueue::new(1);
        q.begin_round(1);
        q.submit(0, false, CommandKind::ProgramTile);
        q.submit(
            0,
            true,
            CommandKind::Mvm {
                dir: MvmDir::Forward,
                input: Src::Buf(x),
                output: y,
                quantize: true,
                save_partial: None,
                threshold: None,
            },
        );
        q.submit(0, false, CommandKind::CollectFaults);
        let c = ctx(&tiles, &zeros, t);
        let done = {
            let mut lanes = [Lane {
                unit_index: 0,
                unit: &mut unit,
            }];
            q.flush(&mut lanes, &mut pool, &c)
        };
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].kind, "program_tile");
        assert_eq!(done[1].kind, "mvm_forward");
        assert_eq!(done[1].cost.tile_mvms_8bit, 1);
        assert_eq!(done[1].cost.adc_8bit_samples, t as u64);
        assert_eq!(done[1].cost.eo_input_bits, t as u64);
        assert_eq!(done[1].cost.noise_injections, 0);
        assert_eq!(done[1].macs, (t * t) as u64);
        assert_eq!(done[2].kind, "collect_faults");
        assert!(done[2].faults.is_empty());
        assert_eq!(pool.get(y), &[3.0, 7.0]);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn probe_on_ideal_unit_has_zero_residual() {
        let t = 4;
        let tiles = vec![Tile::from_vec(t, (0..16).map(|i| i as f32).collect()).unwrap()];
        let zeros = vec![0.0_f32; t];
        let backend = IdealBackend::new();
        let mut unit = backend.unit(t);
        let mut pool = BufferPool::new();
        let mut q = CommandQueue::new(1);
        q.submit(0, false, CommandKind::ProgramTile);
        q.submit(0, false, CommandKind::Probe);
        let c = ctx(&tiles, &zeros, t);
        let done = {
            let mut lanes = [Lane {
                unit_index: 0,
                unit: &mut unit,
            }];
            q.flush_serial(&backend, &mut lanes, &mut pool, &c)
        };
        assert_eq!(done[0].kind, "program_tile");
        assert_eq!(done[0].cost.tiles_programmed, 1);
        assert_eq!(done[1].kind, "probe");
        assert_eq!(done[1].residual, Some(0.0));
        assert_eq!(done[1].cost.probe_mvms, 1);
    }

    #[test]
    fn completions_sort_by_round_wave_unit() {
        let a = CmdKey {
            round: 1,
            wave: 0,
            unit: 5,
        };
        let b = CmdKey {
            round: 1,
            wave: 1,
            unit: 0,
        };
        let c = CmdKey {
            round: 2,
            wave: 0,
            unit: 0,
        };
        assert!(a < b && b < c);
    }
}
