//! Command-timeline observation.
//!
//! A [`TimelineSink`] receives every device [`Completion`] and every
//! host-side cost record the engine reports (synchronization glue,
//! offset recomputation, reuse bookkeeping). The two streams together
//! account for the run-total `OpCounts` exactly; `sophie-bench` feeds a
//! sink into `repro timeline` to dump the stream as JSONL with per-record
//! time and energy attribution.

use sophie_solve::OpCounts;

use super::command::Completion;

/// Observer of the per-command cost stream of a run.
///
/// Device records arrive once per executed command, in completion order
/// (sorted by `(round, wave, unit)` within each flush). Host records
/// arrive once per controller stage that mutates op counters outside the
/// device queue.
pub trait TimelineSink {
    /// A device command completed.
    fn device(&mut self, completion: &Completion);

    /// The host controller performed `stage` during `round` at cost
    /// `cost`. Stage labels are stable strings such as `"global_sync"`,
    /// `"recompute_offsets"`, `"reuse_setup"`, `"reuse_tally"`, and
    /// `"quarantine"`.
    fn host(&mut self, round: u64, stage: &'static str, cost: &OpCounts);
}

/// Sink that discards every record (the default, zero-overhead path).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTimeline;

impl TimelineSink for NullTimeline {
    fn device(&mut self, _completion: &Completion) {}

    fn host(&mut self, _round: u64, _stage: &'static str, _cost: &OpCounts) {}
}
