//! Error types for the SOPHIE engine.

use std::error::Error;
use std::fmt;

/// Errors produced by configuration validation and engine construction.
#[derive(Debug)]
#[non_exhaustive]
pub enum SophieError {
    /// A configuration field was out of range.
    BadConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint.
        message: String,
    },
    /// An underlying linear-algebra failure.
    Linalg(sophie_linalg::LinalgError),
    /// A preprocessing (PRIS) failure.
    Pris(sophie_pris::PrisError),
}

impl fmt::Display for SophieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SophieError::BadConfig { field, message } => {
                write!(f, "invalid configuration field `{field}`: {message}")
            }
            SophieError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            SophieError::Pris(e) => write!(f, "preprocessing error: {e}"),
        }
    }
}

impl Error for SophieError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SophieError::Linalg(e) => Some(e),
            SophieError::Pris(e) => Some(e),
            SophieError::BadConfig { .. } => None,
        }
    }
}

impl From<sophie_linalg::LinalgError> for SophieError {
    fn from(e: sophie_linalg::LinalgError) -> Self {
        SophieError::Linalg(e)
    }
}

impl From<sophie_pris::PrisError> for SophieError {
    fn from(e: sophie_pris::PrisError) -> Self {
        SophieError::Pris(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SophieError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_field() {
        let e = SophieError::BadConfig {
            field: "tile_size",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("tile_size"));
    }

    #[test]
    fn sources_chain() {
        let e = SophieError::from(sophie_linalg::LinalgError::Empty);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SophieError>();
    }
}
