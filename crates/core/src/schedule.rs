//! Offline static scheduling (paper §III-D).
//!
//! SOPHIE's controller executes a schedule generated ahead of time by the
//! host: which symmetric tile pairs run in each global iteration
//! (*stochastic tile computation*) and, for each block column, which tile's
//! spin copy is broadcast during synchronization (*stochastic spin update*).
//! Pre-generating all randomness keeps the accelerator's control logic to
//! simple SRAM-backed state machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sophie_linalg::{TileGrid, TilePair};

/// One global iteration's worth of scheduling decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Round {
    /// Indices into the grid's symmetric-pair list, sorted ascending.
    pub pairs: Vec<usize>,
    /// Per block column: the block row whose spin copy is broadcast, when
    /// the stochastic spin update is enabled and the column has at least
    /// one selected tile. `None` leaves the column's global spins unchanged.
    pub donors: Vec<Option<usize>>,
}

/// A complete pre-generated schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    pairs: Vec<TilePair>,
    blocks: usize,
    rounds: Vec<Round>,
    stochastic_spin: bool,
}

/// Streaming generator producing one [`Round`] at a time.
///
/// [`Schedule::generate`] collects its output; the analytic op-count path
/// ([`crate::analytic`]) streams it instead, so very large grids (K32768 →
/// 131 328 pairs × 500 rounds) never have to hold a full schedule in memory.
#[derive(Debug)]
pub struct RoundGenerator {
    pairs: Vec<TilePair>,
    blocks: usize,
    select: usize,
    stochastic_spin: bool,
    rng: StdRng,
    indices: Vec<usize>,
}

impl RoundGenerator {
    /// Starts a generator selecting `ceil(fraction · P)` of the `P`
    /// symmetric pairs per round.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` (validated earlier by
    /// [`crate::SophieConfig::validate`]).
    #[must_use]
    pub fn new(grid: &TileGrid, fraction: f64, stochastic_spin: bool, seed: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "tile fraction must be in (0, 1]"
        );
        let pairs = grid.symmetric_pairs();
        let select = ((fraction * pairs.len() as f64).ceil() as usize).clamp(1, pairs.len());
        let indices: Vec<usize> = (0..pairs.len()).collect();
        RoundGenerator {
            blocks: grid.blocks(),
            select,
            stochastic_spin,
            rng: StdRng::seed_from_u64(seed),
            indices,
            pairs,
        }
    }

    /// Pairs selected per round.
    #[must_use]
    pub fn pairs_per_round(&self) -> usize {
        self.select
    }

    /// The symmetric-pair list the indices refer to.
    #[must_use]
    pub fn pairs(&self) -> &[TilePair] {
        &self.pairs
    }

    /// Produces the next round's decisions.
    pub fn next_round(&mut self) -> Round {
        // Partial Fisher–Yates: the first `select` entries become the
        // round's random sample.
        for i in 0..self.select {
            let j = self.rng.gen_range(i..self.indices.len());
            self.indices.swap(i, j);
        }
        let mut selected: Vec<usize> = self.indices[..self.select].to_vec();
        selected.sort_unstable();

        // Eligible donors per column: block rows r whose tile (r, c)
        // belongs to a selected pair.
        let mut eligible: Vec<Vec<usize>> = vec![Vec::new(); self.blocks];
        for &pi in &selected {
            match self.pairs[pi] {
                TilePair::Diagonal(b) => eligible[b].push(b),
                TilePair::OffDiagonal { row, col } => {
                    // tile (row, col) holds a copy of column `col`;
                    // tile (col, row) holds a copy of column `row`.
                    eligible[col].push(row);
                    eligible[row].push(col);
                }
            }
        }
        let donors: Vec<Option<usize>> = eligible
            .iter()
            .map(|rows| {
                if rows.is_empty() {
                    None
                } else if self.stochastic_spin {
                    Some(rows[self.rng.gen_range(0..rows.len())])
                } else {
                    // Majority mode resolves donors at sync time; mark the
                    // column as updatable.
                    Some(rows[0])
                }
            })
            .collect();
        Round {
            pairs: selected,
            donors,
        }
    }
}

impl Schedule {
    /// Generates a schedule for `global_iters` rounds, selecting
    /// `ceil(fraction · P)` of the `P` symmetric pairs uniformly at random
    /// each round.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` (validated earlier by
    /// [`crate::SophieConfig::validate`]).
    #[must_use]
    pub fn generate(
        grid: &TileGrid,
        global_iters: usize,
        fraction: f64,
        stochastic_spin: bool,
        seed: u64,
    ) -> Self {
        Self::generate_while(grid, global_iters, fraction, stochastic_spin, seed, || true)
    }

    /// How many rounds [`Schedule::generate_while`] produces between polls
    /// of its `keep_going` predicate.
    pub const STOP_POLL_INTERVAL: usize = 256;

    /// Like [`Schedule::generate`], but polls `keep_going` every
    /// [`STOP_POLL_INTERVAL`](Self::STOP_POLL_INTERVAL) rounds and stops
    /// generating once it returns `false`, yielding a truncated schedule.
    ///
    /// Generation is a pure prefix: for the rounds it does produce, the
    /// output is identical to the full schedule for the same seed. This is
    /// how the engine keeps schedule setup — O(`global_iters`) work that
    /// happens before the first iteration — responsive to cooperative
    /// cancellation and deadlines: a run cancelled during setup would
    /// execute none of the later rounds anyway, so truncating them is
    /// unobservable.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` (validated earlier by
    /// [`crate::SophieConfig::validate`]).
    #[must_use]
    pub fn generate_while(
        grid: &TileGrid,
        global_iters: usize,
        fraction: f64,
        stochastic_spin: bool,
        seed: u64,
        mut keep_going: impl FnMut() -> bool,
    ) -> Self {
        let mut gen = RoundGenerator::new(grid, fraction, stochastic_spin, seed);
        // Capacity is a hint, not a promise: generation may stop early, and
        // a hostile iteration count must not size an allocation up front.
        let mut rounds = Vec::with_capacity(global_iters.min(1 << 16));
        for g in 0..global_iters {
            if g % Self::STOP_POLL_INTERVAL == 0 && !keep_going() {
                break;
            }
            rounds.push(gen.next_round());
        }
        Schedule {
            pairs: gen.pairs,
            blocks: grid.blocks(),
            rounds,
            stochastic_spin,
        }
    }

    /// The grid's symmetric pairs, indexable by the round's pair indices.
    #[must_use]
    pub fn pairs(&self) -> &[TilePair] {
        &self.pairs
    }

    /// Number of block rows/columns.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The scheduled rounds.
    #[must_use]
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Whether spin updates broadcast a single stochastic copy.
    #[must_use]
    pub fn stochastic_spin(&self) -> bool {
        self.stochastic_spin
    }

    /// Block rows holding a fresh copy of column `c` in `round` — the
    /// candidates for the column's spin update.
    #[must_use]
    pub fn eligible_rows(&self, round: &Round, c: usize) -> Vec<usize> {
        let mut rows = Vec::new();
        for &pi in &round.pairs {
            match self.pairs[pi] {
                TilePair::Diagonal(b) if b == c => rows.push(b),
                TilePair::OffDiagonal { row, col } if col == c => rows.push(row),
                TilePair::OffDiagonal { row, col } if row == c => rows.push(col),
                _ => {}
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, t: usize) -> TileGrid {
        TileGrid::new(n, t).unwrap()
    }

    #[test]
    fn full_fraction_selects_every_pair_every_round() {
        let g = grid(256, 64); // 4 blocks, 10 pairs
        let s = Schedule::generate(&g, 5, 1.0, true, 0);
        assert_eq!(s.rounds().len(), 5);
        for r in s.rounds() {
            assert_eq!(r.pairs.len(), 10);
            // Every column has a donor when every pair is selected.
            assert!(r.donors.iter().all(Option::is_some));
        }
    }

    #[test]
    fn generate_while_truncates_to_an_identical_prefix() {
        let g = grid(256, 64);
        let full = Schedule::generate(&g, 2 * Schedule::STOP_POLL_INTERVAL, 0.6, true, 9);
        // Allow exactly one poll to pass: generation stops at the second
        // poll boundary, after STOP_POLL_INTERVAL rounds.
        let mut polls = 0;
        let truncated =
            Schedule::generate_while(&g, 2 * Schedule::STOP_POLL_INTERVAL, 0.6, true, 9, || {
                polls += 1;
                polls <= 1
            });
        assert_eq!(truncated.rounds().len(), Schedule::STOP_POLL_INTERVAL);
        assert_eq!(
            truncated.rounds(),
            &full.rounds()[..Schedule::STOP_POLL_INTERVAL],
            "truncated schedule must be a pure prefix of the full one"
        );
        // An immediately-stopped generation yields no rounds at all.
        let none = Schedule::generate_while(&g, 100, 0.6, true, 9, || false);
        assert!(none.rounds().is_empty());
    }

    #[test]
    fn fraction_half_selects_about_half() {
        let g = grid(512, 64); // 8 blocks, 36 pairs
        let s = Schedule::generate(&g, 20, 0.5, true, 1);
        for r in s.rounds() {
            assert_eq!(r.pairs.len(), 18);
        }
    }

    #[test]
    fn selection_varies_across_rounds() {
        let g = grid(512, 64);
        let s = Schedule::generate(&g, 10, 0.5, true, 2);
        let distinct: std::collections::HashSet<_> =
            s.rounds().iter().map(|r| r.pairs.clone()).collect();
        assert!(distinct.len() > 1, "selection should be random per round");
    }

    #[test]
    fn pair_indices_are_valid_and_unique() {
        let g = grid(320, 64); // 5 blocks, 15 pairs
        let s = Schedule::generate(&g, 8, 0.7, true, 3);
        for r in s.rounds() {
            let set: std::collections::HashSet<_> = r.pairs.iter().collect();
            assert_eq!(set.len(), r.pairs.len());
            assert!(r.pairs.iter().all(|&p| p < s.pairs().len()));
        }
    }

    #[test]
    fn donors_hold_fresh_copies() {
        let g = grid(512, 64);
        let s = Schedule::generate(&g, 30, 0.3, true, 4);
        for r in s.rounds() {
            for (c, donor) in r.donors.iter().enumerate() {
                let eligible = s.eligible_rows(r, c);
                match donor {
                    Some(d) => assert!(eligible.contains(d), "donor {d} not eligible for col {c}"),
                    None => assert!(eligible.is_empty()),
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = grid(256, 64);
        let a = Schedule::generate(&g, 6, 0.6, true, 9);
        let b = Schedule::generate(&g, 6, 0.6, true, 9);
        assert_eq!(a.rounds(), b.rounds());
        let c = Schedule::generate(&g, 6, 0.6, true, 10);
        assert_ne!(a.rounds(), c.rounds());
    }

    #[test]
    fn tiny_fraction_still_selects_one_pair() {
        let g = grid(128, 64); // 2 blocks, 3 pairs
        let s = Schedule::generate(&g, 4, 0.01, true, 5);
        for r in s.rounds() {
            assert_eq!(r.pairs.len(), 1);
        }
    }

    #[test]
    fn single_block_graph_has_one_diagonal_pair() {
        let g = grid(50, 64);
        let s = Schedule::generate(&g, 3, 1.0, true, 6);
        assert_eq!(s.pairs().len(), 1);
        for r in s.rounds() {
            assert_eq!(r.pairs, vec![0]);
            assert_eq!(r.donors, vec![Some(0)]);
        }
    }
}
