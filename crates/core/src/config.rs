//! Configuration of the modified (tiled) PRIS algorithm.

use crate::error::{Result, SophieError};

pub use sophie_linalg::KernelChoice;

/// Compute strategy of the exact floating-point backend.
///
/// All three strategies produce **bit-identical** results and event
/// streams — this knob trades wall-clock only. The sparse strategies run
/// the engine on [`crate::sparse::SparseBackend`], which stores each tile
/// in CSR form, caches the last input/output of every MVM unit, and
/// recomputes only the outputs touched by changed inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComputeMode {
    /// Always execute dense tile kernels ([`crate::backend::IdealBackend`]).
    Dense,
    /// Always take the incremental sparse path, regardless of activity.
    Sparse,
    /// Per-MVM choice: incremental sparse while the estimated touched work
    /// stays below the density-crossover threshold, dense otherwise.
    #[default]
    Auto,
}

impl ComputeMode {
    /// Canonical lowercase name (`"dense"`, `"sparse"`, `"auto"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ComputeMode::Dense => "dense",
            ComputeMode::Sparse => "sparse",
            ComputeMode::Auto => "auto",
        }
    }

    /// Parses a canonical name back into a mode.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "dense" => Some(ComputeMode::Dense),
            "sparse" => Some(ComputeMode::Sparse),
            "auto" => Some(ComputeMode::Auto),
            _ => None,
        }
    }
}

/// Parameters of SOPHIE's modified PRIS algorithm (paper Algorithm 1 and
/// the evaluation settings of §IV).
///
/// The defaults reproduce the paper's optimal operating point: tile size
/// 64, 10 local iterations per global iteration, 500 global iterations,
/// all tiles selected, stochastic spin update enabled.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SophieConfig {
    /// Edge length of a square matrix tile (one OPCM array holds one
    /// symmetric tile pair of this size).
    pub tile_size: usize,
    /// Local iterations executed on each selected pair per global
    /// iteration (the last one runs the ADC in 8-bit mode).
    pub local_iters: usize,
    /// Number of global iterations (local phases + global synchronization).
    pub global_iters: usize,
    /// Fraction of symmetric tile pairs selected in each global iteration
    /// (stochastic tile computation, §III-A2). `1.0` selects every pair.
    pub tile_fraction: f64,
    /// Noise level φ, relative to per-row signal scales (see
    /// [`sophie_pris::noise`]).
    pub phi: f64,
    /// Eigenvalue-dropout factor α ∈ [0, 1].
    pub alpha: f64,
    /// `true` → stochastic spin update (one column copy broadcast);
    /// `false` → majority vote over all fresh copies in the column.
    pub stochastic_spin_update: bool,
    /// Compute strategy of the floating-point backend (result-invariant;
    /// trades wall-clock only).
    pub compute: ComputeMode,
    /// Density-crossover threshold θ for [`ComputeMode::Auto`]: an MVM takes
    /// the incremental sparse path while the estimated touched CSR work is
    /// below `θ × tile_size²` scalar multiply-accumulates, dense otherwise.
    /// `None` → calibrated automatically from a one-time kernel timing probe.
    pub sparse_crossover: Option<f64>,
    /// Device command-queue depth: the engine flushes the queue whenever
    /// at least this many commands are pending (always at chain
    /// boundaries, never mid-pair). `None` batches a whole round per
    /// flush. **Result-invariant by construction** — outcomes, event
    /// streams, op counts, and command timelines are byte-identical at
    /// every depth; the knob trades submission batching against device
    /// buffer residency only.
    #[cfg_attr(feature = "serde", serde(default))]
    pub queue_depth: Option<usize>,
    /// Tile-MVM kernel selection for the floating-point backends:
    /// `auto` (startup-autotuned per tile size and host) or a pinned
    /// variant name (`scalar`, `axpy`, `b8u4`, ...). **Result-invariant
    /// by construction** — every variant accumulates in the same
    /// canonical order, so outcomes and event streams are byte-identical
    /// under any choice; the knob trades wall-clock only. The
    /// `SOPHIE_KERNEL` environment variable overrides this at run time.
    #[cfg_attr(feature = "serde", serde(default))]
    pub kernel: KernelChoice,
}

impl Default for SophieConfig {
    fn default() -> Self {
        SophieConfig {
            tile_size: 64,
            local_iters: 10,
            global_iters: 500,
            tile_fraction: 1.0,
            phi: 0.1,
            alpha: 0.0,
            stochastic_spin_update: true,
            compute: ComputeMode::Auto,
            sparse_crossover: None,
            queue_depth: None,
            kernel: KernelChoice::Auto,
        }
    }
}

impl SophieConfig {
    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`SophieError::BadConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<()> {
        if self.tile_size == 0 {
            return Err(SophieError::BadConfig {
                field: "tile_size",
                message: "must be positive".into(),
            });
        }
        if self.local_iters == 0 {
            return Err(SophieError::BadConfig {
                field: "local_iters",
                message: "must be positive".into(),
            });
        }
        if !(self.tile_fraction > 0.0 && self.tile_fraction <= 1.0) {
            return Err(SophieError::BadConfig {
                field: "tile_fraction",
                message: format!("must be in (0, 1], got {}", self.tile_fraction),
            });
        }
        if self.phi < 0.0 || self.phi.is_nan() {
            return Err(SophieError::BadConfig {
                field: "phi",
                message: format!("must be non-negative, got {}", self.phi),
            });
        }
        if !(0.0..=1.0).contains(&self.alpha) || self.alpha.is_nan() {
            return Err(SophieError::BadConfig {
                field: "alpha",
                message: format!("must be in [0, 1], got {}", self.alpha),
            });
        }
        if let Some(theta) = self.sparse_crossover {
            if !(theta.is_finite() && theta > 0.0) {
                return Err(SophieError::BadConfig {
                    field: "sparse_crossover",
                    message: format!("must be finite and positive, got {theta}"),
                });
            }
        }
        if self.queue_depth == Some(0) {
            return Err(SophieError::BadConfig {
                field: "queue_depth",
                message: "must be positive (or None for whole-round batching)".into(),
            });
        }
        Ok(())
    }

    /// Total local iterations executed across the whole run
    /// (`global_iters × local_iters`), the x-axis unit of Fig. 7/8.
    #[must_use]
    pub fn total_local_iters(&self) -> usize {
        self.global_iters * self.local_iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_optimal_setting() {
        let c = SophieConfig::default();
        assert_eq!(c.tile_size, 64);
        assert_eq!(c.local_iters, 10);
        assert_eq!(c.global_iters, 500);
        assert_eq!(c.tile_fraction, 1.0);
        assert!(c.stochastic_spin_update);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_tile_size() {
        let c = SophieConfig {
            tile_size: 0,
            ..SophieConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SophieError::BadConfig {
                field: "tile_size",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_fraction() {
        for frac in [0.0, -0.5, 1.5, f64::NAN] {
            let c = SophieConfig {
                tile_fraction: frac,
                ..SophieConfig::default()
            };
            assert!(c.validate().is_err(), "fraction {frac} should be rejected");
        }
    }

    #[test]
    fn rejects_bad_phi_and_alpha() {
        let c = SophieConfig {
            phi: -0.1,
            ..SophieConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SophieConfig {
            alpha: 1.5,
            ..SophieConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_local_iters() {
        let c = SophieConfig {
            local_iters: 0,
            ..SophieConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_compute_is_auto_with_calibrated_crossover() {
        let c = SophieConfig::default();
        assert_eq!(c.compute, ComputeMode::Auto);
        assert!(c.sparse_crossover.is_none());
    }

    #[test]
    fn rejects_bad_sparse_crossover() {
        for theta in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = SophieConfig {
                sparse_crossover: Some(theta),
                ..SophieConfig::default()
            };
            assert!(
                matches!(
                    c.validate(),
                    Err(SophieError::BadConfig {
                        field: "sparse_crossover",
                        ..
                    })
                ),
                "crossover {theta} should be rejected"
            );
        }
        let c = SophieConfig {
            sparse_crossover: Some(0.25),
            ..SophieConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_queue_depth() {
        let c = SophieConfig {
            queue_depth: Some(0),
            ..SophieConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SophieError::BadConfig {
                field: "queue_depth",
                ..
            })
        ));
        let c = SophieConfig {
            queue_depth: Some(32),
            ..SophieConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn compute_mode_names_round_trip() {
        for mode in [ComputeMode::Dense, ComputeMode::Sparse, ComputeMode::Auto] {
            assert_eq!(ComputeMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(ComputeMode::parse("fancy"), None);
    }

    #[test]
    fn kernel_choice_names_round_trip_and_default_is_auto() {
        use sophie_linalg::KernelVariant;
        assert_eq!(SophieConfig::default().kernel, KernelChoice::Auto);
        assert_eq!(KernelChoice::parse("auto"), Some(KernelChoice::Auto));
        for v in KernelVariant::ALL {
            let c = KernelChoice::Pinned(v);
            assert_eq!(KernelChoice::parse(c.name()), Some(c));
        }
        assert_eq!(KernelChoice::parse("fancy"), None);
        let c = SophieConfig {
            kernel: KernelChoice::Pinned(KernelVariant::B8U4),
            ..SophieConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn total_local_iters_multiplies() {
        let c = SophieConfig {
            global_iters: 500,
            local_iters: 10,
            ..SophieConfig::default()
        };
        assert_eq!(c.total_local_iters(), 5000);
    }
}
