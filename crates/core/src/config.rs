//! Configuration of the modified (tiled) PRIS algorithm.

use crate::error::{Result, SophieError};

/// Parameters of SOPHIE's modified PRIS algorithm (paper Algorithm 1 and
/// the evaluation settings of §IV).
///
/// The defaults reproduce the paper's optimal operating point: tile size
/// 64, 10 local iterations per global iteration, 500 global iterations,
/// all tiles selected, stochastic spin update enabled.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SophieConfig {
    /// Edge length of a square matrix tile (one OPCM array holds one
    /// symmetric tile pair of this size).
    pub tile_size: usize,
    /// Local iterations executed on each selected pair per global
    /// iteration (the last one runs the ADC in 8-bit mode).
    pub local_iters: usize,
    /// Number of global iterations (local phases + global synchronization).
    pub global_iters: usize,
    /// Fraction of symmetric tile pairs selected in each global iteration
    /// (stochastic tile computation, §III-A2). `1.0` selects every pair.
    pub tile_fraction: f64,
    /// Noise level φ, relative to per-row signal scales (see
    /// [`sophie_pris::noise`]).
    pub phi: f64,
    /// Eigenvalue-dropout factor α ∈ [0, 1].
    pub alpha: f64,
    /// `true` → stochastic spin update (one column copy broadcast);
    /// `false` → majority vote over all fresh copies in the column.
    pub stochastic_spin_update: bool,
}

impl Default for SophieConfig {
    fn default() -> Self {
        SophieConfig {
            tile_size: 64,
            local_iters: 10,
            global_iters: 500,
            tile_fraction: 1.0,
            phi: 0.1,
            alpha: 0.0,
            stochastic_spin_update: true,
        }
    }
}

impl SophieConfig {
    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`SophieError::BadConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<()> {
        if self.tile_size == 0 {
            return Err(SophieError::BadConfig {
                field: "tile_size",
                message: "must be positive".into(),
            });
        }
        if self.local_iters == 0 {
            return Err(SophieError::BadConfig {
                field: "local_iters",
                message: "must be positive".into(),
            });
        }
        if !(self.tile_fraction > 0.0 && self.tile_fraction <= 1.0) {
            return Err(SophieError::BadConfig {
                field: "tile_fraction",
                message: format!("must be in (0, 1], got {}", self.tile_fraction),
            });
        }
        if self.phi < 0.0 || self.phi.is_nan() {
            return Err(SophieError::BadConfig {
                field: "phi",
                message: format!("must be non-negative, got {}", self.phi),
            });
        }
        if !(0.0..=1.0).contains(&self.alpha) || self.alpha.is_nan() {
            return Err(SophieError::BadConfig {
                field: "alpha",
                message: format!("must be in [0, 1], got {}", self.alpha),
            });
        }
        Ok(())
    }

    /// Total local iterations executed across the whole run
    /// (`global_iters × local_iters`), the x-axis unit of Fig. 7/8.
    #[must_use]
    pub fn total_local_iters(&self) -> usize {
        self.global_iters * self.local_iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_optimal_setting() {
        let c = SophieConfig::default();
        assert_eq!(c.tile_size, 64);
        assert_eq!(c.local_iters, 10);
        assert_eq!(c.global_iters, 500);
        assert_eq!(c.tile_fraction, 1.0);
        assert!(c.stochastic_spin_update);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_tile_size() {
        let c = SophieConfig {
            tile_size: 0,
            ..SophieConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SophieError::BadConfig {
                field: "tile_size",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_fraction() {
        for frac in [0.0, -0.5, 1.5, f64::NAN] {
            let c = SophieConfig {
                tile_fraction: frac,
                ..SophieConfig::default()
            };
            assert!(c.validate().is_err(), "fraction {frac} should be rejected");
        }
    }

    #[test]
    fn rejects_bad_phi_and_alpha() {
        let c = SophieConfig {
            phi: -0.1,
            ..SophieConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SophieConfig {
            alpha: 1.5,
            ..SophieConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_local_iters() {
        let c = SophieConfig {
            local_iters: 0,
            ..SophieConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn total_local_iters_multiplies() {
        let c = SophieConfig {
            global_iters: 500,
            local_iters: 10,
            ..SophieConfig::default()
        };
        assert_eq!(c.total_local_iters(), 5000);
    }
}
