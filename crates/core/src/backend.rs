//! MVM execution backends.
//!
//! The functional simulator runs the same algorithm over different compute
//! substrates: an exact floating-point backend (algorithm studies, Fig. 6–8)
//! and a hardware-accurate OPCM device model in `sophie-hw` (cell
//! quantization, optical loss, ADC precision). Both implement [`MvmBackend`];
//! each physical OPCM array in the machine corresponds to one [`MvmUnit`].

use sophie_linalg::{KernelChoice, KernelPlan, Tile};

/// One transient hardware fault that took effect on a unit during a round.
///
/// Fault-capable backends (the `sophie-hw` OPCM model) record these as
/// their MVMs execute; the engine drains them after each round via
/// [`MvmUnit::take_fault_reports`] and re-emits them as
/// `SolveEvent::FaultInjected`. The ideal backend never produces any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Fault class (`"laser_droop"`, `"chiplet_dropout"`, `"stuck_cells"`,
    /// `"drift_burst"`, `"adc_saturation"`).
    pub kind: &'static str,
    /// Wave (MVM ordinal within the round, counting forward and transposed
    /// passes) at which the fault took effect; 0 is the round's first MVM.
    pub wave: u32,
}

/// One physical bidirectional matrix-vector unit (an OPCM array plus its
/// converters): stores a tile and multiplies by it or its transpose.
///
/// Units must be [`Send`]: the engine executes the selected tile pairs of a
/// round concurrently, moving each pair's unit borrow onto a worker thread.
/// A unit is only ever driven by one thread at a time (no `Sync` needed).
pub trait MvmUnit: Send {
    /// Programs the unit with the contents of `tile` (an OPCM write).
    fn program(&mut self, tile: &Tile);

    /// `y = T·x` — light sent row-wise, read column-wise (paper Eq. 9
    /// orientation for the stored tile).
    ///
    /// # Panics
    ///
    /// Implementations panic if the unit was never programmed or lengths
    /// mismatch the tile size.
    fn forward(&mut self, x: &[f32], y: &mut [f32]);

    /// `y = Tᵀ·x` — the same array read in the other optical direction
    /// (paper Eq. 8), which is what lets one array serve a symmetric tile
    /// pair.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MvmUnit::forward`].
    fn transposed(&mut self, x: &[f32], y: &mut [f32]);

    /// Applies the unit's 8-bit read path to an analog result in place
    /// (dual-precision ADC, §III-C). The ideal backend leaves values
    /// untouched.
    fn quantize_8bit(&mut self, _y: &mut [f32]) {}

    /// Tells the unit a new round of local iterations is starting, so
    /// fault-capable backends can draw that round's transient-fault
    /// schedule deterministically from `(fault seed, round, unit id)`.
    /// Called once per round per *selected* pair before any of its MVMs;
    /// round indices are 1-based (setup programming happens "before
    /// round 1" and is never faulted). The default is a no-op.
    fn begin_round(&mut self, _round: u64) {}

    /// Drains the transient faults that took effect since the last drain,
    /// in the order they fired. The default (ideal hardware) returns an
    /// empty vector and allocates nothing.
    fn take_fault_reports(&mut self) -> Vec<FaultReport> {
        Vec::new()
    }

    /// Executes a forward and a transposed MVM on the same stored tile,
    /// quantizing each result through the 8-bit read path when its flag is
    /// set.
    ///
    /// The default runs the four steps in the exact sequential order —
    /// forward, quantize, transposed, quantize — so stateful read paths
    /// (the OPCM model's ADC saturation and wave counters) observe the
    /// same history as two independent submissions. Backends whose
    /// quantize is the identity and whose MVMs are pure (the ideal
    /// backend) may override this with a fused single pass over the
    /// stored weights; overrides must remain bit-identical to the
    /// default.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MvmUnit::forward`].
    #[allow(clippy::too_many_arguments)]
    fn forward_transposed(
        &mut self,
        x_f: &[f32],
        y_f: &mut [f32],
        quantize_f: bool,
        x_t: &[f32],
        y_t: &mut [f32],
        quantize_t: bool,
    ) {
        self.forward(x_f, y_f);
        if quantize_f {
            self.quantize_8bit(y_f);
        }
        self.transposed(x_t, y_t);
        if quantize_t {
            self.quantize_8bit(y_t);
        }
    }
}

/// Factory for [`MvmUnit`]s: one machine/back-end configuration producing
/// one unit per physical array.
pub trait MvmBackend {
    /// The unit type manufactured by this backend.
    type Unit: MvmUnit;

    /// Creates an unprogrammed unit for tiles of edge length `tile_size`.
    fn unit(&self, tile_size: usize) -> Self::Unit;
}

/// Exact floating-point backend: units store the tile verbatim and multiply
/// in `f32` with no device effects, through the configured kernel plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealBackend {
    kernel: KernelChoice,
}

impl IdealBackend {
    /// Creates the ideal backend with the autotuned kernel plan.
    #[must_use]
    pub fn new() -> Self {
        IdealBackend::default()
    }

    /// Creates the ideal backend with an explicit kernel choice.
    #[must_use]
    pub fn with_kernel(kernel: KernelChoice) -> Self {
        IdealBackend { kernel }
    }

    /// Creates the ideal backend from a solver configuration (honors the
    /// `kernel` knob).
    #[must_use]
    pub fn from_config(config: &crate::config::SophieConfig) -> Self {
        IdealBackend::with_kernel(config.kernel)
    }
}

/// Unit produced by [`IdealBackend`].
#[derive(Debug, Clone)]
pub struct IdealUnit {
    tile_size: usize,
    tile: Option<Tile>,
    plan: KernelPlan,
}

impl IdealUnit {
    fn tile(&self) -> &Tile {
        self.tile.as_ref().expect("unit used before programming")
    }
}

impl MvmUnit for IdealUnit {
    fn program(&mut self, tile: &Tile) {
        assert_eq!(tile.size(), self.tile_size, "tile size mismatch");
        self.tile = Some(tile.clone());
    }

    fn forward(&mut self, x: &[f32], y: &mut [f32]) {
        self.plan.forward(self.tile(), x, y);
    }

    fn transposed(&mut self, x: &[f32], y: &mut [f32]) {
        self.plan.transposed(self.tile(), x, y);
    }

    fn forward_transposed(
        &mut self,
        x_f: &[f32],
        y_f: &mut [f32],
        _quantize_f: bool,
        x_t: &[f32],
        y_t: &mut [f32],
        _quantize_t: bool,
    ) {
        // Quantize is the identity here and both MVMs are pure, so the
        // pair may run through the plan's fused kernel (one pass over the
        // stored weights) — bit-identical to the sequential default.
        let tile = self.tile.as_ref().expect("unit used before programming");
        self.plan.forward_transposed(tile, x_f, y_f, x_t, y_t);
    }
}

impl MvmBackend for IdealBackend {
    type Unit = IdealUnit;

    fn unit(&self, tile_size: usize) -> IdealUnit {
        IdealUnit {
            tile_size,
            tile: None,
            plan: KernelPlan::for_choice(self.kernel, tile_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tile() -> Tile {
        Tile::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn ideal_unit_multiplies_exactly() {
        let backend = IdealBackend::new();
        let mut unit = backend.unit(2);
        unit.program(&sample_tile());
        let mut y = [0.0_f32; 2];
        unit.forward(&[1.0, 1.0], &mut y);
        assert_eq!(y, [3.0, 7.0]);
        unit.transposed(&[1.0, 1.0], &mut y);
        assert_eq!(y, [4.0, 6.0]);
    }

    #[test]
    fn forward_and_transposed_are_consistent() {
        let backend = IdealBackend::new();
        let mut unit = backend.unit(2);
        unit.program(&sample_tile());
        // (T x)·z == x·(Tᵀ z) for all x, z.
        let x = [1.0_f32, -2.0];
        let z = [0.5_f32, 3.0];
        let mut tx = [0.0_f32; 2];
        let mut ttz = [0.0_f32; 2];
        unit.forward(&x, &mut tx);
        unit.transposed(&z, &mut ttz);
        let lhs: f32 = tx.iter().zip(&z).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&ttz).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "before programming")]
    fn unprogrammed_unit_panics() {
        let backend = IdealBackend::new();
        let mut unit = backend.unit(2);
        let mut y = [0.0_f32; 2];
        unit.forward(&[1.0, 1.0], &mut y);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_tile_size_panics() {
        let backend = IdealBackend::new();
        let mut unit = backend.unit(4);
        unit.program(&sample_tile());
    }

    #[test]
    fn default_quantize_is_identity() {
        let backend = IdealBackend::new();
        let mut unit = backend.unit(2);
        unit.program(&sample_tile());
        let mut y = [1.25_f32, -2.5];
        unit.quantize_8bit(&mut y);
        assert_eq!(y, [1.25, -2.5]);
    }

    #[test]
    fn forward_transposed_matches_independent_calls_bitwise() {
        use sophie_linalg::KernelVariant;
        let tile = Tile::from_vec(5, (0..25).map(|i| (i as f32) / 3.0 - 4.0).collect()).unwrap();
        let x_f = [1.0_f32, -1.0, 0.0, 2.0, 0.5];
        let x_t = [0.5_f32, 0.0, -1.0, 1.0, -2.0];
        for kernel in [
            KernelChoice::Auto,
            KernelChoice::Pinned(KernelVariant::Scalar),
            KernelChoice::Pinned(KernelVariant::B8U4),
        ] {
            let backend = IdealBackend::with_kernel(kernel);
            let mut unit = backend.unit(5);
            unit.program(&tile);
            let mut y_f = [f32::NAN; 5];
            let mut y_t = [f32::NAN; 5];
            unit.forward_transposed(&x_f, &mut y_f, true, &x_t, &mut y_t, false);
            let mut want_f = [f32::NAN; 5];
            let mut want_t = [f32::NAN; 5];
            unit.forward(&x_f, &mut want_f);
            unit.transposed(&x_t, &mut want_t);
            for i in 0..5 {
                assert_eq!(y_f[i].to_bits(), want_f[i].to_bits(), "{kernel:?} f[{i}]");
                assert_eq!(y_t[i].to_bits(), want_t[i].to_bits(), "{kernel:?} t[{i}]");
            }
        }
    }

    #[test]
    fn reprogramming_replaces_contents() {
        let backend = IdealBackend::new();
        let mut unit = backend.unit(2);
        unit.program(&sample_tile());
        unit.program(&Tile::from_vec(2, vec![0.0; 4]).unwrap());
        let mut y = [9.0_f32; 2];
        unit.forward(&[1.0, 1.0], &mut y);
        assert_eq!(y, [0.0, 0.0]);
    }
}
