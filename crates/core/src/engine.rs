//! The tiled recurrent Ising engine (paper Algorithm 1).
//!
//! [`SophieSolver`] executes the modified PRIS algorithm:
//!
//! * the transformation matrix is tiled and each **symmetric pair** of
//!   tiles is mapped to one bidirectional MVM unit (§III-A1, §III-D);
//! * each selected pair runs `local_iters` **local iterations** against its
//!   private spin copies and frozen offset vectors;
//! * a **global synchronization** then exchanges partial sums and spin
//!   states, with *stochastic tile computation* and *stochastic spin
//!   update* shrinking both compute and traffic (§III-A2).
//!
//! The engine is generic over [`MvmBackend`] so the identical algorithm can
//! run on the exact floating-point substrate or on the OPCM device model in
//! `sophie-hw`, and it tallies an [`OpCounts`] as it goes — the interface to
//! the power/performance models.
//!
//! # Threading model
//!
//! Within a round, the selected tile pairs are independent by construction:
//! each owns a private spin copy and partial-sum segment, and reads only
//! offset vectors frozen at the last synchronization. The engine exploits
//! this by fanning the pairs of every round across the persistent worker
//! pool in [`sophie_linalg::par`] (bounded by `SOPHIE_THREADS`). Noise is
//! drawn from counter-derived per-`(round, pair)` RNG streams rather than
//! one shared generator, and per-pair [`OpCounts`] tallies are folded in a
//! fixed order after the run — so outcomes (traces, bits, op counts) are
//! bit-identical regardless of the thread count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sophie_graph::cut::cut_value_binary;
use sophie_graph::Graph;
use sophie_linalg::{par, Matrix, Tile, TileGrid, TilePair};
use sophie_pris::CutTracker;

use crate::backend::{IdealBackend, MvmBackend, MvmUnit};
use crate::config::SophieConfig;
use crate::error::{Result, SophieError};
use crate::gaussian::GaussianSource;
use crate::opcount::OpCounts;
use crate::outcome::SophieOutcome;
use crate::schedule::Schedule;

/// The SOPHIE solver: a tiled transformation matrix plus everything needed
/// to run jobs against it.
///
/// ```
/// use sophie_core::{SophieConfig, SophieSolver};
/// use sophie_graph::generate::{complete, WeightDist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = complete(32, WeightDist::Unit, 0)?;
/// let config = SophieConfig { tile_size: 8, global_iters: 60, ..SophieConfig::default() };
/// let solver = SophieSolver::from_graph(&g, config)?;
/// let out = solver.run(&g, 1, None)?;
/// assert!(out.best_cut > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SophieSolver {
    config: SophieConfig,
    grid: TileGrid,
    pairs: Vec<TilePair>,
    /// Primary (upper-triangular or diagonal) tile of each pair.
    tiles: Vec<Tile>,
    /// Per-node thresholds `θ_i = ½ Σ_j C_ij`, zero on padding.
    thresholds: Vec<f32>,
    /// Per-node noise scales `ρ_i = ½ Σ_j |C_ij|`, zero on padding.
    noise_scale: Vec<f32>,
    /// True (unpadded) problem dimension.
    n: usize,
}

impl SophieSolver {
    /// Builds a solver from a max-cut instance: forms `K = -A`, applies
    /// eigenvalue dropout with the configured `α`, and tiles the result.
    ///
    /// # Errors
    ///
    /// Propagates configuration, eigensolver, and preprocessing errors.
    pub fn from_graph(graph: &Graph, config: SophieConfig) -> Result<Self> {
        config.validate()?;
        let k = sophie_graph::coupling::coupling_matrix(graph);
        let delta = sophie_graph::coupling::delta_diagonal(graph);
        let c = sophie_pris::dropout::transformation_matrix(
            &k,
            delta,
            config.alpha,
            sophie_pris::DeltaVariant::Gershgorin,
        )?;
        Self::from_transform(&c, config)
    }

    /// Builds a solver from an already-preprocessed transformation matrix
    /// `C` (useful when sweeping `α` with a cached
    /// [`sophie_pris::Preprocessor`]).
    ///
    /// # Errors
    ///
    /// Returns configuration errors or [`SophieError::Linalg`] if `c` is
    /// rectangular.
    pub fn from_transform(c: &Matrix, config: SophieConfig) -> Result<Self> {
        config.validate()?;
        if !c.is_square() {
            return Err(SophieError::Linalg(sophie_linalg::LinalgError::NotSquare {
                rows: c.rows(),
                cols: c.cols(),
            }));
        }
        let grid = TileGrid::new(c.rows(), config.tile_size)?;
        let pairs = grid.symmetric_pairs();
        let tiles: Vec<Tile> = pairs
            .iter()
            .map(|p| Tile::from_matrix(c, &grid, p.primary()))
            .collect();
        let padded = grid.padded_len();
        let mut thresholds = vec![0.0_f32; padded];
        let mut noise_scale = vec![0.0_f32; padded];
        for r in 0..c.rows() {
            let row = c.row(r);
            thresholds[r] = (0.5 * row.iter().sum::<f64>()) as f32;
            noise_scale[r] = (0.5 * row.iter().map(|x| x.abs()).sum::<f64>()) as f32;
        }
        Ok(SophieSolver {
            config,
            grid,
            pairs,
            tiles,
            thresholds,
            noise_scale,
            n: c.rows(),
        })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &SophieConfig {
        &self.config
    }

    /// The tiling descriptor.
    #[must_use]
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Number of symmetric tile pairs (physical MVM units required).
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Problem dimension (graph order).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Index of the pair covering tile `(r, c)` in the pair list.
    ///
    /// # Panics
    ///
    /// Panics if the block indices are out of range.
    #[must_use]
    pub fn pair_index(&self, r: usize, c: usize) -> usize {
        let b = self.grid.blocks();
        assert!(r < b && c < b, "block index out of range");
        let (lo, hi) = if r <= c { (r, c) } else { (c, r) };
        // Pairs are emitted row-major: for row k, the diagonal then (k, k+1..B).
        lo * b - lo * (lo + 1) / 2 + lo + (hi - lo)
    }

    /// Runs one job on the exact floating-point backend.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; kept fallible for parity
    /// with backend-specific runs.
    pub fn run(&self, graph: &Graph, seed: u64, target_cut: Option<f64>) -> Result<SophieOutcome> {
        self.run_with_backend(&IdealBackend::new(), graph, seed, target_cut)
    }

    /// Runs one job on an arbitrary MVM backend, generating the static
    /// schedule from `seed`.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    pub fn run_with_backend<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        seed: u64,
        target_cut: Option<f64>,
    ) -> Result<SophieOutcome> {
        let schedule = Schedule::generate(
            &self.grid,
            self.config.global_iters,
            self.config.tile_fraction,
            self.config.stochastic_spin_update,
            seed ^ 0x5c3a_11ed_0b57_aced,
        );
        self.run_scheduled(backend, graph, &schedule, seed, target_cut)
    }

    /// Runs one job against a pre-generated schedule (the hardware flow:
    /// the host generates all scheduling decisions offline, §III-D).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    ///
    /// # Panics
    ///
    /// Panics if `graph.num_nodes() != self.dim()` or the schedule was
    /// generated for a different grid.
    pub fn run_scheduled<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        schedule: &Schedule,
        seed: u64,
        target_cut: Option<f64>,
    ) -> Result<SophieOutcome> {
        self.run_scheduled_from(backend, graph, schedule, seed, target_cut, None)
    }

    /// Like [`Self::run_scheduled`], but warm-started from `initial_bits`
    /// instead of a random state — e.g. to continue annealing from the
    /// best configuration of a previous batch, or to polish a baseline
    /// solver's output on the Ising machine.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    ///
    /// # Panics
    ///
    /// Panics on graph/schedule mismatch or if `initial_bits` has the
    /// wrong length.
    pub fn run_scheduled_from<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        schedule: &Schedule,
        seed: u64,
        target_cut: Option<f64>,
        initial_bits: Option<&[bool]>,
    ) -> Result<SophieOutcome> {
        assert_eq!(graph.num_nodes(), self.n, "graph order mismatch");
        assert_eq!(
            schedule.blocks(),
            self.grid.blocks(),
            "schedule grid mismatch"
        );

        let t = self.grid.tile();
        let b = self.grid.blocks();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ops = OpCounts::new();

        // Program every pair's primary tile into its physical array. This
        // stays serial: backends may hand out unit ids from a shared
        // counter, and the id ↔ pair mapping must not depend on timing.
        let mut states: Vec<PairState<B::Unit>> = self
            .pairs
            .iter()
            .enumerate()
            .map(|(pi, &pair)| {
                let mut unit = backend.unit(t);
                unit.program(&self.tiles[pi]);
                PairState::new(pair, pi, unit, t)
            })
            .collect();
        ops.tiles_programmed += self.pairs.len() as u64;

        // Global spin state, padded; padding stays 0 and couples to nothing.
        let mut global = vec![0.0_f32; self.grid.padded_len()];
        match initial_bits {
            Some(bits) => {
                assert_eq!(bits.len(), self.n, "initial state length mismatch");
                for (g, &bit) in global.iter_mut().zip(bits) {
                    *g = if bit { 1.0 } else { 0.0 };
                }
            }
            None => {
                for g in global.iter_mut().take(self.n) {
                    *g = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
                }
            }
        }

        // Initial partial sums — every tile's contribution to its block
        // row — and private spin copies: one independent task per pair.
        {
            let global_ref: &[f32] = &global;
            par::for_each_chunk_mut(&mut states, self.pairs.len(), |_, chunk| {
                for st in chunk {
                    st.initial_partials(global_ref, t);
                    st.reset_from_global(global_ref, t);
                }
            });
        }

        // Per-logical-tile offset vectors: frozen (read-only) during local
        // iterations, regathered from the pair states at every sync.
        let mut offsets = vec![0.0_f32; b * b * t];
        self.recompute_offsets(&states, &mut offsets, &mut ops);

        let mut tracker = CutTracker::new(target_cut);
        let mut bits = global_bits(&global, self.n);
        let mut best_bits = bits.clone();
        let mut trace = Vec::with_capacity(self.config.global_iters + 1);
        let mut activity = Vec::with_capacity(self.config.global_iters);
        let cut0 = cut_value_binary(graph, &bits);
        tracker.observe(0, cut0);
        trace.push(cut0);

        let phi = self.config.phi as f32;
        let local_iters = self.config.local_iters;

        for (g, round) in schedule.rounds().iter().enumerate() {
            // ---- Local iterations: all selected pairs run concurrently.
            // Each pair owns its unit, spin copies, partial-sum segments and
            // op tally; shared state (offsets, thresholds) is read-only; and
            // noise comes from a counter-derived per-(round, pair) RNG
            // stream — so traces are bit-identical for every SOPHIE_THREADS
            // value, including 1.
            {
                let mut selected = collect_selected(&mut states, &round.pairs);
                let offsets_ref: &[f32] = &offsets;
                let round_index = (g + 1) as u64;
                par::for_each_chunk_mut(&mut selected, round.pairs.len().max(1), |_, chunk| {
                    for st in chunk.iter_mut() {
                        self.run_local_iters(st, offsets_ref, round_index, seed, local_iters, phi);
                    }
                });
            }

            // ---- Global synchronization (serial: cheap copies/votes). ----
            let mut updated_cols = 0u64;
            for cblock in 0..b {
                if schedule.stochastic_spin() {
                    if let Some(donor) = round.donors[cblock] {
                        let copy = self.column_copy(&states, donor, cblock);
                        global[cblock * t..(cblock + 1) * t].copy_from_slice(copy);
                        updated_cols += 1;
                    }
                } else {
                    let rows = schedule.eligible_rows(round, cblock);
                    if !rows.is_empty() {
                        self.majority_update(
                            &states,
                            &rows,
                            cblock,
                            &mut global[cblock * t..(cblock + 1) * t],
                        );
                        ops.glue_adds += (rows.len() * t) as u64;
                        updated_cols += 1;
                    }
                }
            }
            // Broadcast the synchronized columns to every tile's copy.
            for st in &mut states {
                st.reset_from_global(&global, t);
            }
            ops.spin_broadcast_bits += updated_cols * (b * t) as u64;
            let selected_logical: u64 = round
                .pairs
                .iter()
                .map(|&pi| self.pairs[pi].logical_tiles() as u64)
                .sum();
            ops.partial_sum_bits += selected_logical * (t * 8) as u64;
            self.recompute_offsets(&states, &mut offsets, &mut ops);
            ops.global_syncs += 1;
            ops.pairs_executed += round.pairs.len() as u64;

            // ---- Quality tracking at the synchronized state. ----
            let new_bits = global_bits(&global, self.n);
            let flips = bits.iter().zip(&new_bits).filter(|(a, b)| a != b).count();
            activity.push(flips);
            bits = new_bits;
            let cut = cut_value_binary(graph, &bits);
            let improved = cut > tracker.best_cut();
            tracker.observe(g + 1, cut);
            if improved {
                best_bits.copy_from_slice(&bits);
            }
            trace.push(cut);
        }

        // Fold the per-pair tallies into the run total. Iteration order is
        // fixed and u64 addition is commutative, so the totals cannot
        // depend on how pairs were scheduled across threads.
        for st in &states {
            ops = ops.combined(&st.ops);
        }

        Ok(SophieOutcome {
            best_cut: tracker.best_cut(),
            best_bits,
            global_iters_run: schedule.rounds().len(),
            global_iters_to_target: tracker.first_hit(),
            cut_trace: trace,
            activity_trace: activity,
            ops,
        })
    }

    /// Executes the local iterations of one selected pair for one round.
    ///
    /// Called concurrently for distinct pairs: everything mutated lives in
    /// `st`, the shared inputs (`offsets`, thresholds, noise scales) are
    /// read-only, and noise is drawn from the pair's private stream (see
    /// [`noise_stream_seed`]) — never from a shared RNG.
    fn run_local_iters<U: MvmUnit>(
        &self,
        st: &mut PairState<U>,
        offsets: &[f32],
        round_index: u64,
        seed: u64,
        local_iters: usize,
        phi: f32,
    ) {
        let t = self.grid.tile();
        let b = self.grid.blocks();
        let mut rng =
            SmallRng::seed_from_u64(noise_stream_seed(seed, round_index, st.index as u64));
        let mut gauss = GaussianSource::new();
        for l in 0..local_iters {
            let last = l + 1 == local_iters;
            match st.pair {
                TilePair::Diagonal(d) => {
                    st.unit.forward(&st.primary, &mut st.y);
                    if last {
                        st.unit.quantize_8bit(&mut st.y);
                        st.partial_primary.copy_from_slice(&st.y);
                    }
                    self.finish_half_step(
                        &mut st.y,
                        &offsets[vec_at(b, t, d, d)],
                        d,
                        phi,
                        &mut gauss,
                        &mut rng,
                        &mut st.primary,
                    );
                    count_local_mvm(&mut st.ops, t, last, 1);
                }
                TilePair::OffDiagonal { row, col } => {
                    // Tile (row, col): x_col → y_row.
                    st.unit.forward(&st.primary, &mut st.y);
                    if last {
                        st.unit.quantize_8bit(&mut st.y);
                        st.partial_primary.copy_from_slice(&st.y);
                    }
                    self.finish_half_step(
                        &mut st.y,
                        &offsets[vec_at(b, t, row, col)],
                        row,
                        phi,
                        &mut gauss,
                        &mut rng,
                        &mut st.partner,
                    );
                    // Tile (col, row) = transpose: x_row → y_col.
                    st.unit.transposed(&st.partner, &mut st.y);
                    if last {
                        st.unit.quantize_8bit(&mut st.y);
                        st.partial_partner.copy_from_slice(&st.y);
                    }
                    self.finish_half_step(
                        &mut st.y,
                        &offsets[vec_at(b, t, col, row)],
                        col,
                        phi,
                        &mut gauss,
                        &mut rng,
                        &mut st.primary,
                    );
                    count_local_mvm(&mut st.ops, t, last, 2);
                }
            }
        }
    }

    /// Offsets `o[r][c] = Σ_{c'≠c} p[r][c']` — the controller's glue
    /// computation, gathered from the per-pair partial-sum segments.
    fn recompute_offsets<U>(
        &self,
        states: &[PairState<U>],
        offsets: &mut [f32],
        ops: &mut OpCounts,
    ) {
        let b = self.grid.blocks();
        let t = self.grid.tile();
        let mut rowsum = vec![0.0_f32; t];
        for r in 0..b {
            rowsum.fill(0.0);
            for c in 0..b {
                let p = self.partial_slot(states, r, c);
                for (s, &v) in rowsum.iter_mut().zip(p) {
                    *s += v;
                }
            }
            for c in 0..b {
                let p = self.partial_slot(states, r, c);
                let base = (r * b + c) * t;
                for i in 0..t {
                    offsets[base + i] = rowsum[i] - p[i];
                }
            }
        }
        ops.glue_adds += 2 * (b * b * t) as u64;
    }

    /// The latest 8-bit partial-sum segment of logical tile `(r, c)`.
    fn partial_slot<'a, U>(&self, states: &'a [PairState<U>], r: usize, c: usize) -> &'a [f32] {
        let pi = self.pair_index(r, c);
        if r <= c {
            &states[pi].partial_primary
        } else {
            &states[pi].partial_partner
        }
    }

    /// Adds offset + noise to the raw MVM result and thresholds it into a
    /// fresh spin copy (one ADC pass).
    #[allow(clippy::too_many_arguments)]
    fn finish_half_step(
        &self,
        y: &mut [f32],
        offset: &[f32],
        out_block: usize,
        phi: f32,
        gauss: &mut GaussianSource,
        rng: &mut SmallRng,
        out: &mut [f32],
    ) {
        let t = self.grid.tile();
        let theta = &self.thresholds[out_block * t..(out_block + 1) * t];
        let scale = &self.noise_scale[out_block * t..(out_block + 1) * t];
        if phi > 0.0 {
            for i in 0..t {
                let noisy = y[i] + offset[i] + phi * scale[i] * gauss.sample(rng) as f32;
                out[i] = if noisy >= theta[i] { 1.0 } else { 0.0 };
            }
        } else {
            for i in 0..t {
                out[i] = if y[i] + offset[i] >= theta[i] {
                    1.0
                } else {
                    0.0
                };
            }
        }
    }

    /// The spin copy of column `cblock` held at block row `donor`.
    fn column_copy<'a, U>(
        &self,
        states: &'a [PairState<U>],
        donor: usize,
        cblock: usize,
    ) -> &'a [f32] {
        let pi = self.pair_index(donor, cblock);
        if donor <= cblock {
            // Tile (donor, cblock) is the pair's primary: input is x_cblock.
            &states[pi].primary
        } else {
            // Pair (cblock, donor): the partner tile (donor, cblock) reads
            // x_cblock as its input copy.
            &states[pi].partner
        }
    }

    /// Majority vote over the fresh copies of column `cblock`.
    fn majority_update<U>(
        &self,
        states: &[PairState<U>],
        rows: &[usize],
        cblock: usize,
        out: &mut [f32],
    ) {
        let t = self.grid.tile();
        let mut votes = vec![0.0_f32; t];
        for &r in rows {
            let copy = self.column_copy(states, r, cblock);
            for (v, &x) in votes.iter_mut().zip(copy) {
                *v += x;
            }
        }
        let half = rows.len() as f32 / 2.0;
        for (o, &v) in out.iter_mut().zip(&votes) {
            *o = if v >= half { 1.0 } else { 0.0 };
        }
    }
}

/// Per-pair mutable state: the pair's physical unit, private spin copies,
/// latest partial-sum segments, MVM scratch, and op tally.
///
/// During the local iterations of a round each selected pair's state is
/// mutated by exactly one pool task while all cross-pair inputs are frozen,
/// which is what makes the fan-out race-free without locks.
#[derive(Debug, Clone)]
struct PairState<U> {
    pair: TilePair,
    /// Position in the solver's pair list (= the RNG sub-stream id).
    index: usize,
    unit: U,
    /// Copy of `x_col` — input of the primary tile `(row, col)`.
    primary: Vec<f32>,
    /// Copy of `x_row` — input of the partner tile `(col, row)`; empty for
    /// diagonal pairs.
    partner: Vec<f32>,
    /// Latest 8-bit partial sum produced by the primary tile.
    partial_primary: Vec<f32>,
    /// Latest 8-bit partial sum of the partner tile; empty for diagonals.
    partial_partner: Vec<f32>,
    /// MVM output scratch.
    y: Vec<f32>,
    /// Operations attributed to this pair, folded into the run total after
    /// the last round.
    ops: OpCounts,
}

impl<U: MvmUnit> PairState<U> {
    fn new(pair: TilePair, index: usize, unit: U, t: usize) -> Self {
        let off = matches!(pair, TilePair::OffDiagonal { .. });
        PairState {
            pair,
            index,
            unit,
            primary: vec![0.0; t],
            partner: if off { vec![0.0; t] } else { Vec::new() },
            partial_primary: vec![0.0; t],
            partial_partner: if off { vec![0.0; t] } else { Vec::new() },
            y: vec![0.0; t],
            ops: OpCounts::new(),
        }
    }

    /// First 8-bit pass: this pair's tiles' contributions to their block
    /// rows at the initial global state (no noise, no thresholding).
    fn initial_partials(&mut self, global: &[f32], t: usize) {
        match self.pair {
            TilePair::Diagonal(d) => {
                self.unit.forward(&global[d * t..(d + 1) * t], &mut self.y);
                self.unit.quantize_8bit(&mut self.y);
                self.partial_primary.copy_from_slice(&self.y);
                self.ops.tile_mvms_8bit += 1;
                self.ops.adc_8bit_samples += t as u64;
                self.ops.eo_input_bits += t as u64;
            }
            TilePair::OffDiagonal { row, col } => {
                self.unit
                    .forward(&global[col * t..(col + 1) * t], &mut self.y);
                self.unit.quantize_8bit(&mut self.y);
                self.partial_primary.copy_from_slice(&self.y);
                self.unit
                    .transposed(&global[row * t..(row + 1) * t], &mut self.y);
                self.unit.quantize_8bit(&mut self.y);
                self.partial_partner.copy_from_slice(&self.y);
                self.ops.tile_mvms_8bit += 2;
                self.ops.adc_8bit_samples += 2 * t as u64;
                self.ops.eo_input_bits += 2 * t as u64;
            }
        }
    }

    /// Refreshes this pair's private spin copies from the global state.
    fn reset_from_global(&mut self, global: &[f32], t: usize) {
        match self.pair {
            TilePair::Diagonal(d) => {
                self.primary.copy_from_slice(&global[d * t..(d + 1) * t]);
            }
            TilePair::OffDiagonal { row, col } => {
                self.primary
                    .copy_from_slice(&global[col * t..(col + 1) * t]);
                self.partner
                    .copy_from_slice(&global[row * t..(row + 1) * t]);
            }
        }
    }
}

/// Flat index range of logical tile `(r, c)` in the `b²·t`-long offsets
/// buffer.
fn vec_at(b: usize, t: usize, r: usize, c: usize) -> std::ops::Range<usize> {
    (r * b + c) * t..(r * b + c + 1) * t
}

/// Seed of the private noise stream used by pair `pair_index` during round
/// `round_index` (1-based; 0 is implicitly the serial setup stream of
/// `SmallRng::seed_from_u64(seed)`).
///
/// Derived purely from the job seed and the (round, pair) coordinates —
/// never from thread identity or execution order — which is what makes
/// engine traces bit-identical for every `SOPHIE_THREADS` setting. The
/// chained SplitMix64 finalizers decorrelate adjacent coordinates.
fn noise_stream_seed(seed: u64, round_index: u64, pair_index: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    mix(mix(mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)) ^ round_index) ^ pair_index)
}

/// Collects disjoint mutable borrows of the selected pair states.
///
/// `selected` must be sorted ascending and duplicate-free (the schedule
/// guarantees this); walking one `iter_mut` keeps the aliasing proof in
/// safe code.
fn collect_selected<'a, U>(
    states: &'a mut [PairState<U>],
    selected: &[usize],
) -> Vec<&'a mut PairState<U>> {
    let mut out = Vec::with_capacity(selected.len());
    let mut iter = states.iter_mut().enumerate();
    for &want in selected {
        for (i, st) in iter.by_ref() {
            if i == want {
                out.push(st);
                break;
            }
        }
    }
    assert_eq!(
        out.len(),
        selected.len(),
        "selected pair indices must be sorted, unique, and in range"
    );
    out
}

fn count_local_mvm(ops: &mut OpCounts, t: usize, last: bool, mvms: u64) {
    let samples = mvms * t as u64;
    if last {
        ops.tile_mvms_8bit += mvms;
        ops.adc_8bit_samples += samples;
    } else {
        ops.tile_mvms_1bit += mvms;
        ops.adc_1bit_samples += samples;
    }
    ops.eo_input_bits += samples;
    ops.noise_injections += samples;
}

fn global_bits(global: &[f32], n: usize) -> Vec<bool> {
    global[..n].iter().map(|&x| x > 0.5).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sophie_graph::generate::{complete, gnm, WeightDist};

    fn small_config(tile: usize, giters: usize) -> SophieConfig {
        SophieConfig {
            tile_size: tile,
            local_iters: 5,
            global_iters: giters,
            tile_fraction: 1.0,
            phi: 0.25,
            alpha: 0.0,
            stochastic_spin_update: true,
        }
    }

    #[test]
    fn pair_index_matches_enumeration() {
        let g = complete(40, WeightDist::Unit, 0).unwrap();
        let solver = SophieSolver::from_graph(&g, small_config(8, 1)).unwrap();
        let b = solver.grid().blocks();
        for r in 0..b {
            for c in 0..b {
                let pi = solver.pair_index(r, c);
                let (lo, hi) = if r <= c { (r, c) } else { (c, r) };
                let pair = solver.pairs[pi];
                match pair {
                    TilePair::Diagonal(d) => assert_eq!((lo, hi), (d, d)),
                    TilePair::OffDiagonal { row, col } => assert_eq!((lo, hi), (row, col)),
                }
            }
        }
    }

    #[test]
    fn solves_k4_exactly() {
        let g = complete(4, WeightDist::Unit, 0).unwrap();
        let config = SophieConfig {
            tile_size: 2,
            local_iters: 3,
            global_iters: 80,
            phi: 0.3,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, config).unwrap();
        let out = solver.run(&g, 3, Some(4.0)).unwrap();
        assert_eq!(out.best_cut, 4.0);
        assert!(out.global_iters_to_target.is_some());
    }

    #[test]
    fn beats_random_on_sparse_graph() {
        let g = gnm(96, 400, WeightDist::Unit, 7).unwrap();
        let solver = SophieSolver::from_graph(&g, small_config(16, 120)).unwrap();
        let out = solver.run(&g, 5, None).unwrap();
        assert!(
            out.best_cut > 230.0,
            "best cut {} ≤ random baseline",
            out.best_cut
        );
        // Reported bits must reproduce the reported cut.
        assert_eq!(cut_value_binary(&g, &out.best_bits), out.best_cut);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(48, 180, WeightDist::Unit, 2).unwrap();
        let solver = SophieSolver::from_graph(&g, small_config(16, 30)).unwrap();
        let a = solver.run(&g, 11, None).unwrap();
        let b = solver.run(&g, 11, None).unwrap();
        assert_eq!(a.best_cut, b.best_cut);
        assert_eq!(a.cut_trace, b.cut_trace);
        let c = solver.run(&g, 12, None).unwrap();
        assert_ne!(a.cut_trace, c.cut_trace);
    }

    #[test]
    fn trace_has_one_entry_per_sync_plus_initial() {
        let g = gnm(40, 100, WeightDist::Unit, 1).unwrap();
        let solver = SophieSolver::from_graph(&g, small_config(16, 25)).unwrap();
        let out = solver.run(&g, 0, None).unwrap();
        assert_eq!(out.cut_trace.len(), 26);
        assert_eq!(out.global_iters_run, 25);
        assert_eq!(out.ops.global_syncs, 25);
    }

    #[test]
    fn op_counts_match_closed_form_at_full_selection() {
        let g = gnm(64, 200, WeightDist::Unit, 4).unwrap();
        let cfg = small_config(16, 10); // 4 blocks → 10 pairs (4 diag, 6 off)
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let out = solver.run(&g, 0, None).unwrap();
        let (b, t, l, giters) = (4u64, 16u64, cfg.local_iters as u64, 10u64);
        let pairs = b * (b + 1) / 2;
        let off = pairs - b;
        let mvms_per_local_pass = b + 2 * off; // logical tiles touched
                                               // Init: every logical tile once (8-bit); per round: L passes, the
                                               // last one 8-bit.
        let expect_8bit = mvms_per_local_pass + giters * mvms_per_local_pass;
        let expect_1bit = giters * (l - 1) * mvms_per_local_pass;
        assert_eq!(out.ops.tile_mvms_8bit, expect_8bit);
        assert_eq!(out.ops.tile_mvms_1bit, expect_1bit);
        assert_eq!(out.ops.pairs_executed, giters * pairs);
        assert_eq!(out.ops.tiles_programmed, pairs);
        // All columns update each round at full selection.
        assert_eq!(out.ops.spin_broadcast_bits, giters * b * b * t);
        assert_eq!(
            out.ops.partial_sum_bits,
            giters * mvms_per_local_pass * t * 8
        );
    }

    #[test]
    fn stochastic_selection_reduces_compute() {
        let g = gnm(64, 200, WeightDist::Unit, 4).unwrap();
        let full = SophieSolver::from_graph(&g, small_config(16, 20)).unwrap();
        let half_cfg = SophieConfig {
            tile_fraction: 0.5,
            ..small_config(16, 20)
        };
        let half = SophieSolver::from_graph(&g, half_cfg).unwrap();
        let fo = full.run(&g, 1, None).unwrap();
        let ho = half.run(&g, 1, None).unwrap();
        assert!(ho.ops.total_tile_mvms() < fo.ops.total_tile_mvms());
        assert!(ho.ops.pairs_executed <= fo.ops.pairs_executed / 2 + 20);
        assert!(ho.ops.sync_traffic_bits() < fo.ops.sync_traffic_bits());
    }

    #[test]
    fn majority_vote_mode_runs() {
        let g = gnm(40, 120, WeightDist::Unit, 3).unwrap();
        let cfg = SophieConfig {
            stochastic_spin_update: false,
            ..small_config(8, 40)
        };
        let solver = SophieSolver::from_graph(&g, cfg).unwrap();
        let out = solver.run(&g, 2, None).unwrap();
        assert!(out.best_cut > 60.0, "cut {}", out.best_cut);
    }

    #[test]
    fn tiled_engine_matches_pris_quality_on_small_graph() {
        // With one tile covering the whole matrix and the paper's L=10, the
        // engine should solve small instances as well as plain PRIS.
        let g = complete(16, WeightDist::Unit, 5).unwrap();
        let cfg = SophieConfig {
            tile_size: 16,
            local_iters: 10,
            global_iters: 50,
            phi: 0.3,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, cfg).unwrap();
        let out = solver.run(&g, 7, None).unwrap();
        // Optimum of K16 (unit weights) is 8·8 = 64.
        assert!(out.best_cut >= 60.0, "cut {}", out.best_cut);
    }

    #[test]
    fn rejects_mismatched_graph() {
        let g = complete(20, WeightDist::Unit, 0).unwrap();
        let other = complete(24, WeightDist::Unit, 0).unwrap();
        let solver = SophieSolver::from_graph(&g, small_config(8, 2)).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = solver.run(&other, 0, None);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn zero_noise_still_produces_valid_runs() {
        let g = gnm(32, 90, WeightDist::Unit, 9).unwrap();
        let cfg = SophieConfig {
            phi: 0.0,
            ..small_config(8, 15)
        };
        let solver = SophieSolver::from_graph(&g, cfg).unwrap();
        let out = solver.run(&g, 0, None).unwrap();
        assert!(out.best_cut >= 0.0);
        assert_eq!(
            out.ops.noise_injections,
            out.ops.adc_1bit_samples + out.ops.adc_8bit_samples - initial_samples(&solver)
        );
    }

    fn initial_samples(solver: &SophieSolver) -> u64 {
        // Initial partial-sum pass: one 8-bit sample set per logical tile,
        // no noise applied there.
        let b = solver.grid().blocks() as u64;
        let t = solver.grid().tile() as u64;
        let off = b * (b + 1) / 2 - b;
        (b + 2 * off) * t
    }
}

#[cfg(test)]
mod warm_start_tests {
    use super::*;
    use crate::schedule::Schedule;
    use sophie_graph::generate::{gnm, WeightDist};

    #[test]
    fn warm_start_begins_from_the_given_state() {
        let g = gnm(40, 150, WeightDist::Unit, 23).unwrap();
        let cfg = SophieConfig {
            tile_size: 16,
            global_iters: 10,
            phi: 0.1,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let schedule = Schedule::generate(solver.grid(), cfg.global_iters, 1.0, true, 3);
        let initial = vec![true; 40]; // all-one-side: cut 0 at iteration 0
        let out = solver
            .run_scheduled_from(&IdealBackend::new(), &g, &schedule, 1, None, Some(&initial))
            .unwrap();
        assert_eq!(out.cut_trace[0], 0.0);
        assert!(out.best_cut > 0.0, "annealing should escape the start");
    }

    #[test]
    fn warm_start_from_good_state_does_not_regress_best() {
        let g = gnm(48, 200, WeightDist::Unit, 29).unwrap();
        let cfg = SophieConfig {
            tile_size: 16,
            global_iters: 30,
            phi: 0.08,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let cold = solver.run(&g, 5, None).unwrap();
        let schedule = Schedule::generate(solver.grid(), cfg.global_iters, 1.0, true, 7);
        let warm = solver
            .run_scheduled_from(
                &IdealBackend::new(),
                &g,
                &schedule,
                6,
                None,
                Some(&cold.best_bits),
            )
            .unwrap();
        // The warm run starts at the cold run's best, so its best can only
        // match or improve it.
        assert!(warm.best_cut >= cold.best_cut);
        assert_eq!(warm.cut_trace[0], cold.best_cut);
    }

    #[test]
    #[should_panic(expected = "initial state length")]
    fn rejects_wrong_length_initial_state() {
        let g = gnm(30, 90, WeightDist::Unit, 1).unwrap();
        let cfg = SophieConfig {
            tile_size: 16,
            global_iters: 2,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let schedule = Schedule::generate(solver.grid(), 2, 1.0, true, 0);
        let _ = solver.run_scheduled_from(
            &IdealBackend::new(),
            &g,
            &schedule,
            0,
            None,
            Some(&[true; 10]),
        );
    }
}
