use sophie_graph::cut::cut_value_binary;
use sophie_graph::generate::{complete, gnm, WeightDist};
use sophie_linalg::TilePair;
use sophie_solve::{SolveEvent, TraceRecorder};

use super::SophieSolver;
use crate::backend::IdealBackend;
use crate::config::SophieConfig;
use crate::schedule::Schedule;

fn small_config(tile: usize, giters: usize) -> SophieConfig {
    SophieConfig {
        tile_size: tile,
        local_iters: 5,
        global_iters: giters,
        tile_fraction: 1.0,
        phi: 0.25,
        alpha: 0.0,
        stochastic_spin_update: true,
        ..SophieConfig::default()
    }
}

#[test]
fn pair_index_matches_enumeration() {
    let g = complete(40, WeightDist::Unit, 0).unwrap();
    let solver = SophieSolver::from_graph(&g, small_config(8, 1)).unwrap();
    let b = solver.grid().blocks();
    for r in 0..b {
        for c in 0..b {
            let pi = solver.pair_index(r, c);
            let (lo, hi) = if r <= c { (r, c) } else { (c, r) };
            let pair = solver.pairs[pi];
            match pair {
                TilePair::Diagonal(d) => assert_eq!((lo, hi), (d, d)),
                TilePair::OffDiagonal { row, col } => assert_eq!((lo, hi), (row, col)),
            }
        }
    }
}

#[test]
fn solves_k4_exactly() {
    let g = complete(4, WeightDist::Unit, 0).unwrap();
    let config = SophieConfig {
        tile_size: 2,
        local_iters: 3,
        global_iters: 80,
        phi: 0.3,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, config).unwrap();
    let out = solver.run(&g, 3, Some(4.0)).unwrap();
    assert_eq!(out.best_cut, 4.0);
    assert!(out.global_iters_to_target.is_some());
}

#[test]
fn beats_random_on_sparse_graph() {
    let g = gnm(96, 400, WeightDist::Unit, 7).unwrap();
    let solver = SophieSolver::from_graph(&g, small_config(16, 120)).unwrap();
    let out = solver.run(&g, 5, None).unwrap();
    assert!(
        out.best_cut > 230.0,
        "best cut {} ≤ random baseline",
        out.best_cut
    );
    // Reported bits must reproduce the reported cut.
    assert_eq!(cut_value_binary(&g, &out.best_bits), out.best_cut);
}

#[test]
fn deterministic_per_seed() {
    let g = gnm(48, 180, WeightDist::Unit, 2).unwrap();
    let solver = SophieSolver::from_graph(&g, small_config(16, 30)).unwrap();
    let a = solver.run(&g, 11, None).unwrap();
    let b = solver.run(&g, 11, None).unwrap();
    assert_eq!(a.best_cut, b.best_cut);
    assert_eq!(a.cut_trace, b.cut_trace);
    let c = solver.run(&g, 12, None).unwrap();
    assert_ne!(a.cut_trace, c.cut_trace);
}

#[test]
fn trace_has_one_entry_per_sync_plus_initial() {
    let g = gnm(40, 100, WeightDist::Unit, 1).unwrap();
    let solver = SophieSolver::from_graph(&g, small_config(16, 25)).unwrap();
    let out = solver.run(&g, 0, None).unwrap();
    assert_eq!(out.cut_trace.len(), 26);
    assert_eq!(out.global_iters_run, 25);
    assert_eq!(out.ops.global_syncs, 25);
}

#[test]
fn op_counts_match_closed_form_at_full_selection() {
    let g = gnm(64, 200, WeightDist::Unit, 4).unwrap();
    let cfg = small_config(16, 10); // 4 blocks → 10 pairs (4 diag, 6 off)
    let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
    let out = solver.run(&g, 0, None).unwrap();
    let (b, t, l, giters) = (4u64, 16u64, cfg.local_iters as u64, 10u64);
    let pairs = b * (b + 1) / 2;
    let off = pairs - b;
    let mvms_per_local_pass = b + 2 * off; // logical tiles touched
                                           // Init: every logical tile once (8-bit); per round: L passes, the
                                           // last one 8-bit.
    let expect_8bit = mvms_per_local_pass + giters * mvms_per_local_pass;
    let expect_1bit = giters * (l - 1) * mvms_per_local_pass;
    assert_eq!(out.ops.tile_mvms_8bit, expect_8bit);
    assert_eq!(out.ops.tile_mvms_1bit, expect_1bit);
    assert_eq!(out.ops.pairs_executed, giters * pairs);
    assert_eq!(out.ops.tiles_programmed, pairs);
    // All columns update each round at full selection.
    assert_eq!(out.ops.spin_broadcast_bits, giters * b * b * t);
    assert_eq!(
        out.ops.partial_sum_bits,
        giters * mvms_per_local_pass * t * 8
    );
}

#[test]
fn stochastic_selection_reduces_compute() {
    let g = gnm(64, 200, WeightDist::Unit, 4).unwrap();
    let full = SophieSolver::from_graph(&g, small_config(16, 20)).unwrap();
    let half_cfg = SophieConfig {
        tile_fraction: 0.5,
        ..small_config(16, 20)
    };
    let half = SophieSolver::from_graph(&g, half_cfg).unwrap();
    let fo = full.run(&g, 1, None).unwrap();
    let ho = half.run(&g, 1, None).unwrap();
    assert!(ho.ops.total_tile_mvms() < fo.ops.total_tile_mvms());
    assert!(ho.ops.pairs_executed <= fo.ops.pairs_executed / 2 + 20);
    assert!(ho.ops.sync_traffic_bits() < fo.ops.sync_traffic_bits());
}

#[test]
fn majority_vote_mode_runs() {
    let g = gnm(40, 120, WeightDist::Unit, 3).unwrap();
    let cfg = SophieConfig {
        stochastic_spin_update: false,
        ..small_config(8, 40)
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    let out = solver.run(&g, 2, None).unwrap();
    assert!(out.best_cut > 60.0, "cut {}", out.best_cut);
}

#[test]
fn tiled_engine_matches_pris_quality_on_small_graph() {
    // With one tile covering the whole matrix and the paper's L=10, the
    // engine should solve small instances as well as plain PRIS.
    let g = complete(16, WeightDist::Unit, 5).unwrap();
    let cfg = SophieConfig {
        tile_size: 16,
        local_iters: 10,
        global_iters: 50,
        phi: 0.3,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    let out = solver.run(&g, 7, None).unwrap();
    // Optimum of K16 (unit weights) is 8·8 = 64.
    assert!(out.best_cut >= 60.0, "cut {}", out.best_cut);
}

#[test]
fn rejects_mismatched_graph() {
    let g = complete(20, WeightDist::Unit, 0).unwrap();
    let other = complete(24, WeightDist::Unit, 0).unwrap();
    let solver = SophieSolver::from_graph(&g, small_config(8, 2)).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = solver.run(&other, 0, None);
    }));
    assert!(result.is_err());
}

#[test]
fn zero_noise_still_produces_valid_runs() {
    let g = gnm(32, 90, WeightDist::Unit, 9).unwrap();
    let cfg = SophieConfig {
        phi: 0.0,
        ..small_config(8, 15)
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    let out = solver.run(&g, 0, None).unwrap();
    assert!(out.best_cut >= 0.0);
    assert_eq!(
        out.ops.noise_injections,
        out.ops.adc_1bit_samples + out.ops.adc_8bit_samples - initial_samples(&solver)
    );
}

fn initial_samples(solver: &SophieSolver) -> u64 {
    // Initial partial-sum pass: one 8-bit sample set per logical tile,
    // no noise applied there.
    let b = solver.grid().blocks() as u64;
    let t = solver.grid().tile() as u64;
    let off = b * (b + 1) / 2 - b;
    (b + 2 * off) * t
}

#[test]
fn compute_modes_are_bit_identical() {
    use crate::config::ComputeMode;
    use sophie_solve::EventLog;

    let g = gnm(60, 240, WeightDist::Unit, 4).unwrap();
    let mut reference: Option<(crate::SophieOutcome, EventLog)> = None;
    for (compute, crossover) in [
        (ComputeMode::Dense, None),
        (ComputeMode::Sparse, None),
        (ComputeMode::Auto, Some(0.25)),
        (ComputeMode::Auto, Some(1e-9)), // effectively always dense
    ] {
        let cfg = SophieConfig {
            compute,
            sparse_crossover: crossover,
            ..small_config(16, 12)
        };
        let solver = SophieSolver::from_graph(&g, cfg).unwrap();
        let mut log = EventLog::new();
        let out = solver.run_observed(&g, 9, None, &mut log).unwrap();
        match &reference {
            None => reference = Some((out, log)),
            Some((ref_out, ref_log)) => {
                assert_eq!(
                    ref_out.best_cut, out.best_cut,
                    "cut diverged for {compute:?}"
                );
                assert_eq!(ref_out.best_bits, out.best_bits);
                assert_eq!(ref_out.cut_trace, out.cut_trace);
                assert_eq!(ref_out.ops, out.ops);
                assert_eq!(
                    ref_log.events(),
                    log.events(),
                    "event stream diverged for {compute:?}"
                );
            }
        }
    }
}

mod observed {
    use super::*;
    use sophie_solve::{EventLog, OpCounts};

    #[test]
    fn observed_run_is_bit_identical_to_plain_run() {
        let g = gnm(48, 180, WeightDist::Unit, 2).unwrap();
        let solver = SophieSolver::from_graph(&g, small_config(16, 30)).unwrap();
        let plain = solver.run(&g, 11, Some(300.0)).unwrap();
        let mut rec = TraceRecorder::new();
        let observed = solver.run_observed(&g, 11, Some(300.0), &mut rec).unwrap();
        assert_eq!(plain.best_cut, observed.best_cut);
        assert_eq!(plain.best_bits, observed.best_bits);
        assert_eq!(plain.cut_trace, observed.cut_trace);
        assert_eq!(plain.activity_trace, observed.activity_trace);
        assert_eq!(plain.ops, observed.ops);
        // The recorder's reconstruction matches the legacy outcome fields.
        let report = rec.into_report();
        assert_eq!(report.cut_trace, plain.cut_trace);
        assert_eq!(report.activity_trace, plain.activity_trace);
        assert_eq!(report.best_cut, plain.best_cut);
        assert_eq!(report.iterations_to_target, plain.global_iters_to_target);
        assert_eq!(report.ops, plain.ops);
        assert_eq!(report.solver, "sophie");
    }

    #[test]
    fn event_stream_follows_the_ordering_contract() {
        let g = gnm(40, 120, WeightDist::Unit, 3).unwrap();
        let solver = SophieSolver::from_graph(&g, small_config(8, 12)).unwrap();
        let mut log = EventLog::new();
        let out = solver.run_observed(&g, 4, None, &mut log).unwrap();
        let events = log.into_events();
        assert!(matches!(
            events.first(),
            Some(SolveEvent::RunStarted { .. })
        ));
        assert!(matches!(
            events.last(),
            Some(SolveEvent::RunFinished { .. })
        ));
        // One sync per round plus the initial state.
        let syncs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                SolveEvent::GlobalSync { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(syncs, (0..=12).collect::<Vec<_>>());
        // The per-round ops deltas add up to the run totals.
        let delta_sum = events.iter().fold(OpCounts::new(), |acc, e| match e {
            SolveEvent::GlobalSync { ops_delta, .. } => acc.combined(ops_delta),
            _ => acc,
        });
        assert_eq!(delta_sum, out.ops);
        // Pair events stay in ascending pair order within each round.
        let mut last: Option<(usize, usize)> = None;
        for e in &events {
            if let SolveEvent::PairIterated { round, pair, .. } = e {
                if let Some((lr, lp)) = last {
                    assert!(*round > lr || (*round == lr && *pair > lp));
                }
                last = Some((*round, *pair));
            }
        }
        assert!(last.is_some(), "tiled engine must emit pair events");
    }

    #[test]
    fn target_reached_emitted_at_most_once() {
        let g = complete(4, WeightDist::Unit, 0).unwrap();
        let config = SophieConfig {
            tile_size: 2,
            local_iters: 3,
            global_iters: 80,
            phi: 0.3,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, config).unwrap();
        let mut log = EventLog::new();
        let out = solver.run_observed(&g, 3, Some(4.0), &mut log).unwrap();
        let hits: Vec<_> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                SolveEvent::TargetReached { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(Some(hits[0]), out.global_iters_to_target);
    }
}

mod warm_start_tests {
    use super::*;

    #[test]
    fn warm_start_begins_from_the_given_state() {
        let g = gnm(40, 150, WeightDist::Unit, 23).unwrap();
        let cfg = SophieConfig {
            tile_size: 16,
            global_iters: 10,
            phi: 0.1,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let schedule = Schedule::generate(solver.grid(), cfg.global_iters, 1.0, true, 3);
        let initial = vec![true; 40]; // all-one-side: cut 0 at iteration 0
        let out = solver
            .run_scheduled_from(&IdealBackend::new(), &g, &schedule, 1, None, Some(&initial))
            .unwrap();
        assert_eq!(out.cut_trace[0], 0.0);
        assert!(out.best_cut > 0.0, "annealing should escape the start");
    }

    #[test]
    fn warm_start_from_good_state_does_not_regress_best() {
        let g = gnm(48, 200, WeightDist::Unit, 29).unwrap();
        let cfg = SophieConfig {
            tile_size: 16,
            global_iters: 30,
            phi: 0.08,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let cold = solver.run(&g, 5, None).unwrap();
        let schedule = Schedule::generate(solver.grid(), cfg.global_iters, 1.0, true, 7);
        let warm = solver
            .run_scheduled_from(
                &IdealBackend::new(),
                &g,
                &schedule,
                6,
                None,
                Some(&cold.best_bits),
            )
            .unwrap();
        // The warm run starts at the cold run's best, so its best can only
        // match or improve it.
        assert!(warm.best_cut >= cold.best_cut);
        assert_eq!(warm.cut_trace[0], cold.best_cut);
    }

    #[test]
    #[should_panic(expected = "initial state length")]
    fn rejects_wrong_length_initial_state() {
        let g = gnm(30, 90, WeightDist::Unit, 1).unwrap();
        let cfg = SophieConfig {
            tile_size: 16,
            global_iters: 2,
            ..SophieConfig::default()
        };
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let schedule = Schedule::generate(solver.grid(), 2, 1.0, true, 0);
        let _ = solver.run_scheduled_from(
            &IdealBackend::new(),
            &g,
            &schedule,
            0,
            None,
            Some(&[true; 10]),
        );
    }
}
