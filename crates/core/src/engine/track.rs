//! Stage 4 — best/target/trace bookkeeping and event emission.
//!
//! Scores every synchronized state, maintains the best configuration and
//! time-to-target via the shared [`SolutionTracker`], derives per-round
//! [`OpCounts`] deltas, and emits the corresponding
//! [`SolveEvent::GlobalSync`] / [`SolveEvent::TargetReached`] /
//! [`SolveEvent::RunFinished`] events. All emission happens on the thread
//! driving the run, never on the worker pool.

use sophie_solve::{OpCounts, SolutionTracker, SolveEvent, SolveObserver};

use crate::outcome::SophieOutcome;

/// Tracks one run's quality trajectory and reports it as events.
#[derive(Debug)]
pub(super) struct RunTracker {
    tracker: SolutionTracker,
    /// Run-total op counts at the last emitted sync (the delta baseline).
    ops_at_last_sync: OpCounts,
}

impl RunTracker {
    /// Scores the initial synchronized state (round 0) and emits its
    /// `GlobalSync` — whose `ops_delta` is the whole setup cost — plus a
    /// `TargetReached` if the starting state already meets the target.
    pub fn start(
        target: Option<f64>,
        bits: &[bool],
        cut: f64,
        ops_total: OpCounts,
        observer: &mut dyn SolveObserver,
    ) -> Self {
        let tracker = SolutionTracker::start(target, bits, cut);
        observer.on_event(&SolveEvent::GlobalSync {
            round: 0,
            cut,
            activity: 0,
            ops_delta: ops_total,
        });
        if tracker.hit_at_start() {
            observer.on_event(&SolveEvent::TargetReached { round: 0, cut });
        }
        RunTracker {
            tracker,
            ops_at_last_sync: ops_total,
        }
    }

    /// Scores the state after round `round` (1-based) and emits its
    /// `GlobalSync` (and `TargetReached` on the first crossing).
    pub fn observe(
        &mut self,
        round: usize,
        bits: &[bool],
        cut: f64,
        ops_total: OpCounts,
        observer: &mut dyn SolveObserver,
    ) {
        let obs = self.tracker.observe(round, bits, cut);
        let delta = ops_total.delta_since(&self.ops_at_last_sync);
        self.ops_at_last_sync = ops_total;
        observer.on_event(&SolveEvent::GlobalSync {
            round,
            cut,
            activity: obs.flips,
            ops_delta: delta,
        });
        if obs.reached_target {
            observer.on_event(&SolveEvent::TargetReached { round, cut });
        }
    }

    /// Emits `RunFinished` and assembles the outcome.
    pub fn finish(
        self,
        rounds_run: usize,
        ops: OpCounts,
        observer: &mut dyn SolveObserver,
    ) -> SophieOutcome {
        observer.on_event(&SolveEvent::RunFinished {
            best_cut: self.tracker.best_cut(),
            best_round: self.tracker.best_iteration(),
            rounds_run,
            ops,
        });
        let (best_cut, best_bits, first_hit, cut_trace, activity_trace) = self.tracker.into_parts();
        SophieOutcome {
            best_cut,
            best_bits,
            global_iters_run: rounds_run,
            global_iters_to_target: first_hit,
            cut_trace,
            activity_trace,
            ops,
        }
    }
}
