//! Stage 3b — calibration probing and fault recovery.
//!
//! On fault-aware runs this stage executes right after each global
//! synchronization (every `check_interval`-th round): it sends a known
//! probe vector through every live pair's physical unit, compares the
//! result against the exact tile product, and — when the relative
//! residual exceeds the configured threshold — applies the
//! [`RecoveryPolicy`]: reprogram-with-retry, remap to a spare array, or
//! quarantine. Probing and recovery run serially on the driving thread in
//! ascending pair order, so the emitted `FaultDetected` /
//! `TileRecovered` / `RecoveryExhausted` stream is bit-identical for
//! every `SOPHIE_THREADS` value.
//!
//! Every probe and reprogram is tallied in the pair's
//! [`OpCounts`](sophie_solve::OpCounts) (`probe_mvms`,
//! `recovery_reprograms`, `units_remapped`, `pairs_quarantined`, plus the
//! underlying MVM/ADC/programming counters), so the recovery overhead
//! flows into the round's `ops_delta` and the `sophie-hw` cost models.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sophie_solve::{SolveEvent, SolveObserver};

use super::state::{noise_stream_seed, MachineState, PairState};
use super::{sync, SophieSolver};
use crate::backend::{MvmBackend, MvmUnit};
use crate::health::{HealthConfig, RecoveryPolicy};

/// Floor on the probe-residual denominator, guarding all-zero tiles
/// (whose exact product is identically zero).
const DENOM_FLOOR: f32 = 1e-6;

/// Per-run health-monitor state: the configuration, the spare-array
/// budget consumed so far, and probe scratch buffers.
#[derive(Debug)]
pub(super) struct HealthMonitor {
    config: HealthConfig,
    spares_used: usize,
    probe: Vec<f32>,
    expected: Vec<f32>,
    measured: Vec<f32>,
}

impl HealthMonitor {
    pub fn new(config: HealthConfig, t: usize) -> Self {
        HealthMonitor {
            config,
            spares_used: 0,
            probe: vec![0.0; t],
            expected: vec![0.0; t],
            measured: vec![0.0; t],
        }
    }

    /// Whether round `round` (1-based) ends with a probe pass.
    pub fn due(&self, round: usize) -> bool {
        round.is_multiple_of(self.config.check_interval)
    }

    /// Probes every live pair and recovers the faulty ones.
    ///
    /// Runs serially in ascending pair order. When any recovery changed
    /// the machine (fresh array contents or a quarantined pair), the
    /// affected partial sums are refreshed and the offset vectors
    /// regathered so the next round iterates against consistent state.
    pub fn inspect<B: MvmBackend>(
        &mut self,
        solver: &SophieSolver,
        backend: &B,
        ms: &mut MachineState<B::Unit>,
        round: usize,
        observer: &mut dyn SolveObserver,
    ) {
        let t = solver.grid.tile();
        let mut machine_changed = false;
        {
            let MachineState { states, global, .. } = ms;
            for st in states.iter_mut() {
                if st.disabled {
                    continue;
                }
                let residual = self.probe_residual(solver, st, t);
                if residual <= self.config.threshold {
                    continue;
                }
                observer.on_event(&SolveEvent::FaultDetected {
                    round,
                    pair: st.index,
                    residual,
                });
                if matches!(self.config.policy, RecoveryPolicy::DetectOnly) {
                    continue;
                }
                machine_changed |= self.recover(solver, backend, st, global, round, t, observer);
            }
        }
        if machine_changed {
            sync::recompute_offsets(solver, ms);
        }
    }

    /// One calibration MVM: device output vs. exact tile product on the
    /// pair's deterministic probe vector, as a relative ∞-norm residual.
    fn probe_residual<U: MvmUnit>(
        &mut self,
        solver: &SophieSolver,
        st: &mut PairState<U>,
        t: usize,
    ) -> f64 {
        // The probe vector is fixed per pair (independent of round and job
        // seed): a dense 0/1 pattern matching the unit's operational input
        // domain, so the ADC range assumptions hold.
        let mut rng = SmallRng::seed_from_u64(noise_stream_seed(
            self.config.probe_seed,
            0,
            st.index as u64,
        ));
        for p in self.probe.iter_mut() {
            *p = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
        }
        solver.tiles[st.index].mvm(&self.probe, &mut self.expected);
        st.unit.forward(&self.probe, &mut self.measured);
        st.unit.quantize_8bit(&mut self.measured);
        st.ops.probe_mvms += 1;
        st.ops.tile_mvms_8bit += 1;
        st.ops.adc_8bit_samples += t as u64;
        st.ops.eo_input_bits += t as u64;

        let mut max_abs = 0.0_f32;
        let mut max_err = 0.0_f32;
        for (&m, &e) in self.measured.iter().zip(&self.expected) {
            max_abs = max_abs.max(e.abs());
            max_err = max_err.max((m - e).abs());
        }
        f64::from(max_err) / f64::from(max_abs.max(DENOM_FLOOR))
    }

    /// Applies the recovery policy to one flagged pair; returns whether
    /// the machine state changed (partials refreshed or pair quarantined).
    #[allow(clippy::too_many_arguments)]
    fn recover<B: MvmBackend>(
        &mut self,
        solver: &SophieSolver,
        backend: &B,
        st: &mut PairState<B::Unit>,
        global: &[f32],
        round: usize,
        t: usize,
        observer: &mut dyn SolveObserver,
    ) -> bool {
        let (reprogram_budget, try_spare, quarantine) = match self.config.policy {
            RecoveryPolicy::DetectOnly => unreachable!("handled by caller"),
            RecoveryPolicy::Reprogram { max_attempts } => (max_attempts, false, false),
            RecoveryPolicy::Remap {
                reprogram_attempts, ..
            } => (reprogram_attempts, true, false),
            RecoveryPolicy::Quarantine { reprogram_attempts } => (reprogram_attempts, false, true),
        };
        let max_spares = match self.config.policy {
            RecoveryPolicy::Remap { max_spares, .. } => max_spares,
            _ => 0,
        };

        let ops_before = st.ops;
        let mut attempts = 0_u32;
        let mut healthy = false;
        let mut remapped = false;

        // In-place reprogram clears drift, droop, and dropout (a fresh
        // OPCM write of the intended tile) but cannot cure stuck cells.
        for _ in 0..reprogram_budget {
            attempts += 1;
            st.unit.program(&solver.tiles[st.index]);
            st.ops.tiles_programmed += 1;
            st.ops.recovery_reprograms += 1;
            if self.probe_residual(solver, st, t) <= self.config.threshold {
                healthy = true;
                break;
            }
        }

        // Remap: swap in a spare physical array — the only cure for
        // stuck cells — and program it with the intended tile.
        if !healthy && try_spare && self.spares_used < max_spares {
            attempts += 1;
            remapped = true;
            self.spares_used += 1;
            let mut unit = backend.unit(t);
            unit.program(&solver.tiles[st.index]);
            st.unit = unit;
            st.ops.tiles_programmed += 1;
            st.ops.recovery_reprograms += 1;
            st.ops.units_remapped += 1;
            healthy = self.probe_residual(solver, st, t) <= self.config.threshold;
        }

        if healthy {
            // The array contents changed, so the pair's cached partial
            // sums are stale: recompute them from the synchronized global
            // state (counted like any other 8-bit pass).
            st.initial_partials(global, t);
            observer.on_event(&SolveEvent::TileRecovered {
                round,
                pair: st.index,
                attempts,
                remapped,
                cost: st.ops.delta_since(&ops_before),
            });
            return true;
        }

        if quarantine {
            st.disabled = true;
            st.partial_primary.fill(0.0);
            st.partial_partner.fill(0.0);
            st.ops.pairs_quarantined += 1;
        }
        observer.on_event(&SolveEvent::RecoveryExhausted {
            round,
            pair: st.index,
            attempts,
            quarantined: quarantine,
        });
        quarantine
    }
}
