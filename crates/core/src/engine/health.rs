//! Stage 3b — calibration probing and fault recovery.
//!
//! On fault-aware runs the monitor splits its work around the device
//! queue so probe traffic overlaps the solve MVMs: every
//! `check_interval`-th round it submits one `Probe` command per live pair
//! *into the same flush* as the round's local-iteration chains
//! ([`HealthMonitor::submit_probes`]), then — after the global
//! synchronization — walks the completed residuals in ascending pair
//! order and applies the [`RecoveryPolicy`] to the pairs that failed
//! ([`HealthMonitor::resolve`]): reprogram-with-retry, remap to a spare
//! array, or quarantine. Recovery itself runs as serial single-unit
//! mini-flushes on the driving thread (it needs backend access for
//! spares), so the emitted `FaultDetected` / `TileRecovered` /
//! `RecoveryExhausted` stream is bit-identical for every `SOPHIE_THREADS`
//! value.
//!
//! Every probe and reprogram arrives as a command completion carrying its
//! exact cost record, folded into the pair's
//! [`OpCounts`](sophie_solve::OpCounts) (`probe_mvms`,
//! `recovery_reprograms`, `units_remapped`, `pairs_quarantined`, plus the
//! underlying MVM/ADC/programming counters), so the recovery overhead
//! flows into the round's `ops_delta`, the timeline, and the `sophie-hw`
//! cost models.

use sophie_solve::{OpCounts, SolveEvent, SolveObserver};

use super::dispatch;
use super::state::MachineState;
use super::{sync, SophieSolver};
use crate::backend::MvmBackend;
use crate::health::{HealthConfig, RecoveryPolicy};
use crate::queue::{CommandKind, DeviceQueue, TimelineSink};

/// Per-run health-monitor state: the configuration and the spare-array
/// budget consumed so far.
#[derive(Debug)]
pub(super) struct HealthMonitor {
    config: HealthConfig,
    spares_used: usize,
}

impl HealthMonitor {
    pub fn new(config: HealthConfig) -> Self {
        HealthMonitor {
            config,
            spares_used: 0,
        }
    }

    /// The probe-vector stream seed (threaded into every flush context).
    pub fn probe_seed(&self) -> u64 {
        self.config.probe_seed
    }

    /// Whether round `round` (1-based) ends with a probe pass.
    pub fn due(&self, round: usize) -> bool {
        round.is_multiple_of(self.config.check_interval)
    }

    /// Submits one `Probe` command per live pair — including pairs not
    /// selected this round — into the pending flush, so calibration
    /// traffic executes alongside the in-flight solve MVMs instead of
    /// serializing after them.
    pub fn submit_probes<U>(&self, ms: &mut MachineState<U>) {
        let MachineState { states, queue, .. } = ms;
        for st in states.iter() {
            if !st.disabled {
                queue.submit(st.index, false, CommandKind::Probe);
            }
        }
    }

    /// Consumes the round's probe residuals (ascending pair order) and
    /// recovers the pairs whose residual exceeds the threshold.
    ///
    /// When any recovery changed the machine (fresh array contents or a
    /// quarantined pair), the affected partial sums have been refreshed
    /// from the synchronized global state and the offset vectors are
    /// regathered so the next round iterates against consistent state.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve<B: MvmBackend>(
        &mut self,
        solver: &SophieSolver,
        backend: &B,
        ms: &mut MachineState<B::Unit>,
        round: usize,
        seed: u64,
        residuals: &[(usize, f64)],
        timeline: &mut dyn TimelineSink,
        observer: &mut dyn SolveObserver,
    ) {
        let mut machine_changed = false;
        for &(pair, residual) in residuals {
            if residual <= self.config.threshold {
                continue;
            }
            observer.on_event(&SolveEvent::FaultDetected {
                round,
                pair,
                residual,
            });
            if matches!(self.config.policy, RecoveryPolicy::DetectOnly) {
                continue;
            }
            machine_changed |=
                self.recover(solver, backend, ms, pair, round, seed, timeline, observer);
        }
        if machine_changed {
            dispatch::host_record(ms, round as u64, "recompute_offsets", timeline, |ms| {
                sync::recompute_offsets(solver, ms);
            });
        }
    }

    /// One recovery step: submit `cmd` plus a re-probe on the pair's unit
    /// and execute them as a serial mini-flush; returns the residual.
    #[allow(clippy::too_many_arguments)]
    fn step<B: MvmBackend>(
        &mut self,
        solver: &SophieSolver,
        backend: &B,
        ms: &mut MachineState<B::Unit>,
        pair: usize,
        cmd: CommandKind,
        seed: u64,
        timeline: &mut dyn TimelineSink,
    ) -> f64 {
        ms.queue.submit(pair, false, cmd);
        ms.queue.submit(pair, false, CommandKind::Probe);
        dispatch::flush_unit_serial(
            solver,
            backend,
            ms,
            pair,
            seed,
            self.config.probe_seed,
            timeline,
        )
        .expect("recovery mini-flush produced no probe residual")
    }

    /// Applies the recovery policy to one flagged pair; returns whether
    /// the machine state changed (partials refreshed or pair quarantined).
    #[allow(clippy::too_many_arguments)]
    fn recover<B: MvmBackend>(
        &mut self,
        solver: &SophieSolver,
        backend: &B,
        ms: &mut MachineState<B::Unit>,
        pair: usize,
        round: usize,
        seed: u64,
        timeline: &mut dyn TimelineSink,
        observer: &mut dyn SolveObserver,
    ) -> bool {
        let (reprogram_budget, try_spare, quarantine) = match self.config.policy {
            RecoveryPolicy::DetectOnly => unreachable!("handled by caller"),
            RecoveryPolicy::Reprogram { max_attempts } => (max_attempts, false, false),
            RecoveryPolicy::Remap {
                reprogram_attempts, ..
            } => (reprogram_attempts, true, false),
            RecoveryPolicy::Quarantine { reprogram_attempts } => (reprogram_attempts, false, true),
        };
        let max_spares = match self.config.policy {
            RecoveryPolicy::Remap { max_spares, .. } => max_spares,
            _ => 0,
        };

        let ops_before = ms.states[pair].ops;
        let mut attempts = 0_u32;
        let mut healthy = false;
        let mut remapped = false;

        // In-place reprogram clears drift, droop, and dropout (a fresh
        // OPCM write of the intended tile) but cannot cure stuck cells.
        for _ in 0..reprogram_budget {
            attempts += 1;
            let residual = self.step(
                solver,
                backend,
                ms,
                pair,
                CommandKind::Reprogram,
                seed,
                timeline,
            );
            if residual <= self.config.threshold {
                healthy = true;
                break;
            }
        }

        // Remap: swap in a spare physical array — the only cure for
        // stuck cells — and program it with the intended tile.
        if !healthy && try_spare && self.spares_used < max_spares {
            attempts += 1;
            remapped = true;
            self.spares_used += 1;
            let residual = self.step(
                solver,
                backend,
                ms,
                pair,
                CommandKind::Remap,
                seed,
                timeline,
            );
            healthy = residual <= self.config.threshold;
        }

        if healthy {
            // The array contents changed, so the pair's cached partial
            // sums are stale: recompute them from the synchronized global
            // state (counted like any other 8-bit pass).
            {
                let MachineState { states, queue, .. } = ms;
                dispatch::submit_partial_refresh(queue, &states[pair]);
            }
            dispatch::flush_unit_serial(
                solver,
                backend,
                ms,
                pair,
                seed,
                self.config.probe_seed,
                timeline,
            );
            observer.on_event(&SolveEvent::TileRecovered {
                round,
                pair,
                attempts,
                remapped,
                cost: ms.states[pair].ops.delta_since(&ops_before),
            });
            return true;
        }

        if quarantine {
            let MachineState { states, pool, .. } = ms;
            let st = &mut states[pair];
            st.disabled = true;
            pool.get_mut(st.partial_primary).fill(0.0);
            pool.get_mut(st.partial_partner).fill(0.0);
            st.ops.pairs_quarantined += 1;
            let mut cost = OpCounts::new();
            cost.pairs_quarantined = 1;
            timeline.host(round as u64, "quarantine", &cost);
        }
        observer.on_event(&SolveEvent::RecoveryExhausted {
            round,
            pair,
            attempts,
            quarantined: quarantine,
        });
        quarantine
    }
}
