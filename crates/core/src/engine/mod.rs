//! The tiled recurrent Ising engine (paper Algorithm 1), as a staged
//! round pipeline.
//!
//! [`SophieSolver`] executes the modified PRIS algorithm:
//!
//! * the transformation matrix is tiled and each **symmetric pair** of
//!   tiles is mapped to one bidirectional MVM unit (§III-A1, §III-D);
//! * each selected pair runs `local_iters` **local iterations** against its
//!   private spin copies and frozen offset vectors;
//! * a **global synchronization** then exchanges partial sums and spin
//!   states, with *stochastic tile computation* and *stochastic spin
//!   update* shrinking both compute and traffic (§III-A2).
//!
//! The engine is generic over [`MvmBackend`] so the identical algorithm can
//! run on the exact floating-point substrate or on the OPCM device model in
//! `sophie-hw`, and it tallies an [`OpCounts`](sophie_solve::OpCounts) as it
//! goes — the interface to the power/performance models.
//!
//! # Stage pipeline
//!
//! A run is a thin loop over four explicit stages, each its own module:
//!
//! 1. [`program`] — unit programming and state upload (once per run);
//! 2. [`round`] — pair selection and parallel local iteration;
//! 3. [`sync`] — global synchronization and partial-sum merge;
//! 4. [`track`] — best/target/trace bookkeeping and event emission.
//!
//! The stages communicate through one [`state::MachineState`] value, and
//! every `run*` entry point has an `_observed` variant that streams typed
//! [`sophie_solve::SolveEvent`]s to a [`SolveObserver`] (the plain
//! variants attach a no-op observer; outcomes are bit-identical either
//! way).
//!
//! # Threading model
//!
//! Within a round, the selected tile pairs are independent by construction:
//! each owns a private spin copy and partial-sum segment, and reads only
//! offset vectors frozen at the last synchronization. The engine exploits
//! this by fanning the pairs of every round across the persistent worker
//! pool in [`sophie_linalg::par`] (bounded by `SOPHIE_THREADS`). Noise is
//! drawn from counter-derived per-`(round, pair)` RNG streams rather than
//! one shared generator, per-pair [`OpCounts`](sophie_solve::OpCounts)
//! tallies are folded in a
//! fixed order at every synchronization, and all observer events are
//! emitted from the driving thread — so outcomes *and event streams*
//! (traces, bits, op counts) are bit-identical regardless of the thread
//! count.

mod dispatch;
mod health;
mod program;
mod round;
mod state;
mod sync;
mod track;

#[cfg(test)]
mod tests;

use sophie_graph::cut::cut_value_binary;
use sophie_graph::Graph;
use sophie_linalg::{Matrix, SparseCsr, Tile, TileGrid, TilePair};
use sophie_solve::{
    NullObserver, OpCounts, RunControl, SolveError, SolveEvent, SolveJob, SolveObserver,
    SolveReport, Tee, TraceRecorder,
};

use crate::backend::{IdealBackend, MvmBackend};
use crate::config::{ComputeMode, SophieConfig};
use crate::error::{Result, SophieError};
use crate::health::HealthConfig;
use crate::outcome::SophieOutcome;
use crate::queue::{DeviceQueue, NullTimeline, TimelineSink};
use crate::schedule::Schedule;
use crate::sparse::SparseBackend;

/// The SOPHIE solver: a tiled transformation matrix plus everything needed
/// to run jobs against it.
///
/// ```
/// use sophie_core::{SophieConfig, SophieSolver};
/// use sophie_graph::generate::{complete, WeightDist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = complete(32, WeightDist::Unit, 0)?;
/// let config = SophieConfig { tile_size: 8, global_iters: 60, ..SophieConfig::default() };
/// let solver = SophieSolver::from_graph(&g, config)?;
/// let out = solver.run(&g, 1, None)?;
/// assert!(out.best_cut > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SophieSolver {
    config: SophieConfig,
    grid: TileGrid,
    pairs: Vec<TilePair>,
    /// Primary (upper-triangular or diagonal) tile of each pair.
    tiles: Vec<Tile>,
    /// Per-node thresholds `θ_i = ½ Σ_j C_ij`, zero on padding.
    thresholds: Vec<f32>,
    /// Per-node noise scales `ρ_i = ½ Σ_j |C_ij|`, zero on padding.
    noise_scale: Vec<f32>,
    /// True (unpadded) problem dimension.
    n: usize,
    /// Nonzero pattern of `C` as spin → adjacent-field adjacency (row `j`
    /// lists the rows `i` with `C_ij ≠ 0` after `f32` cast, matching the
    /// tiles). Drives the strategy-independent reuse-model op counters;
    /// see [`tally_reuse`].
    reuse: SparseCsr,
}

impl SophieSolver {
    /// Builds a solver from a max-cut instance: forms `K = -A`, applies
    /// eigenvalue dropout with the configured `α`, and tiles the result.
    ///
    /// # Errors
    ///
    /// Propagates configuration, eigensolver, and preprocessing errors.
    pub fn from_graph(graph: &Graph, config: SophieConfig) -> Result<Self> {
        config.validate()?;
        let k = sophie_graph::coupling::coupling_matrix(graph);
        let delta = sophie_graph::coupling::delta_diagonal(graph);
        let c = sophie_pris::dropout::transformation_matrix(
            &k,
            delta,
            config.alpha,
            sophie_pris::DeltaVariant::Gershgorin,
        )?;
        Self::from_transform(&c, config)
    }

    /// Builds a solver from an already-preprocessed transformation matrix
    /// `C` (useful when sweeping `α` with a cached
    /// [`sophie_pris::Preprocessor`]).
    ///
    /// # Errors
    ///
    /// Returns configuration errors or [`SophieError::Linalg`] if `c` is
    /// rectangular.
    pub fn from_transform(c: &Matrix, config: SophieConfig) -> Result<Self> {
        config.validate()?;
        if !c.is_square() {
            return Err(SophieError::Linalg(sophie_linalg::LinalgError::NotSquare {
                rows: c.rows(),
                cols: c.cols(),
            }));
        }
        let grid = TileGrid::new(c.rows(), config.tile_size)?;
        let pairs = grid.symmetric_pairs();
        let tiles: Vec<Tile> = pairs
            .iter()
            .map(|p| Tile::from_matrix(c, &grid, p.primary()))
            .collect();
        let padded = grid.padded_len();
        let mut thresholds = vec![0.0_f32; padded];
        let mut noise_scale = vec![0.0_f32; padded];
        for r in 0..c.rows() {
            let row = c.row(r);
            thresholds[r] = (0.5 * row.iter().sum::<f64>()) as f32;
            noise_scale[r] = (0.5 * row.iter().map(|x| x.abs()).sum::<f64>()) as f32;
        }
        // Column-major pattern of C in f32 (what the tiles store): row j of
        // the CSR lists the field rows adjacent to spin j.
        let n = c.rows();
        let mut transposed = vec![0.0_f32; n * n];
        for r in 0..n {
            for (j, &v) in c.row(r).iter().enumerate() {
                transposed[j * n + r] = v as f32;
            }
        }
        let reuse = SparseCsr::from_dense(n, n, &transposed)?;
        Ok(SophieSolver {
            config,
            grid,
            pairs,
            tiles,
            thresholds,
            noise_scale,
            n,
            reuse,
        })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &SophieConfig {
        &self.config
    }

    /// The tiling descriptor.
    #[must_use]
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Number of symmetric tile pairs (physical MVM units required).
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Problem dimension (graph order).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Index of the pair covering tile `(r, c)` in the pair list.
    ///
    /// # Panics
    ///
    /// Panics if the block indices are out of range.
    #[must_use]
    pub fn pair_index(&self, r: usize, c: usize) -> usize {
        let b = self.grid.blocks();
        assert!(r < b && c < b, "block index out of range");
        let (lo, hi) = if r <= c { (r, c) } else { (c, r) };
        // Pairs are emitted row-major: for row k, the diagonal then (k, k+1..B).
        lo * b - lo * (lo + 1) / 2 + lo + (hi - lo)
    }

    /// Runs one job on the exact floating-point substrate, dispatching on
    /// the configured [`ComputeMode`]: the dense [`IdealBackend`] or the
    /// delta-driven [`SparseBackend`]. The two are bit-identical in every
    /// output (see [`crate::sparse`]); the mode trades wall-clock only.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; kept fallible for parity
    /// with backend-specific runs.
    pub fn run(&self, graph: &Graph, seed: u64, target_cut: Option<f64>) -> Result<SophieOutcome> {
        match self.config.compute {
            ComputeMode::Dense => self.run_with_backend(
                &IdealBackend::from_config(&self.config),
                graph,
                seed,
                target_cut,
            ),
            ComputeMode::Sparse | ComputeMode::Auto => self.run_with_backend(
                &SparseBackend::from_config(&self.config),
                graph,
                seed,
                target_cut,
            ),
        }
    }

    /// Like [`Self::run`], but streaming [`SolveEvent`]s to `observer`.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    pub fn run_observed(
        &self,
        graph: &Graph,
        seed: u64,
        target_cut: Option<f64>,
        observer: &mut dyn SolveObserver,
    ) -> Result<SophieOutcome> {
        match self.config.compute {
            ComputeMode::Dense => self.run_with_backend_observed(
                &IdealBackend::from_config(&self.config),
                graph,
                seed,
                target_cut,
                observer,
            ),
            ComputeMode::Sparse | ComputeMode::Auto => self.run_with_backend_observed(
                &SparseBackend::from_config(&self.config),
                graph,
                seed,
                target_cut,
                observer,
            ),
        }
    }

    /// Runs one job on an arbitrary MVM backend, generating the static
    /// schedule from `seed`.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    pub fn run_with_backend<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        seed: u64,
        target_cut: Option<f64>,
    ) -> Result<SophieOutcome> {
        self.run_with_backend_observed(backend, graph, seed, target_cut, &mut NullObserver)
    }

    /// Like [`Self::run_with_backend`], but streaming [`SolveEvent`]s to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    pub fn run_with_backend_observed<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        seed: u64,
        target_cut: Option<f64>,
        observer: &mut dyn SolveObserver,
    ) -> Result<SophieOutcome> {
        let schedule = Schedule::generate(
            &self.grid,
            self.config.global_iters,
            self.config.tile_fraction,
            self.config.stochastic_spin_update,
            seed ^ 0x5c3a_11ed_0b57_aced,
        );
        self.run_scheduled_from_observed(
            backend, graph, &schedule, seed, target_cut, None, observer,
        )
    }

    /// Runs one job against a pre-generated schedule (the hardware flow:
    /// the host generates all scheduling decisions offline, §III-D).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    ///
    /// # Panics
    ///
    /// Panics if `graph.num_nodes() != self.dim()` or the schedule was
    /// generated for a different grid.
    pub fn run_scheduled<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        schedule: &Schedule,
        seed: u64,
        target_cut: Option<f64>,
    ) -> Result<SophieOutcome> {
        self.run_scheduled_from(backend, graph, schedule, seed, target_cut, None)
    }

    /// Like [`Self::run_scheduled`], but warm-started from `initial_bits`
    /// instead of a random state — e.g. to continue annealing from the
    /// best configuration of a previous batch, or to polish a baseline
    /// solver's output on the Ising machine.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    ///
    /// # Panics
    ///
    /// Panics on graph/schedule mismatch or if `initial_bits` has the
    /// wrong length.
    pub fn run_scheduled_from<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        schedule: &Schedule,
        seed: u64,
        target_cut: Option<f64>,
        initial_bits: Option<&[bool]>,
    ) -> Result<SophieOutcome> {
        self.run_scheduled_from_observed(
            backend,
            graph,
            schedule,
            seed,
            target_cut,
            initial_bits,
            &mut NullObserver,
        )
    }

    /// The fully general entry point: pre-generated schedule, optional
    /// warm start, and a [`SolveObserver`] receiving the run's event
    /// stream. All other `run*` methods funnel here (fault-aware runs via
    /// [`Self::run_fault_aware`], which additionally attaches a health
    /// monitor).
    ///
    /// The stage loop is: `program` once, then per scheduled round
    /// `round` → `sync` → `track` (one private module per stage, see the
    /// module docs). Events follow the ordering
    /// contract documented in [`sophie_solve`]: `RunStarted`, a round-0
    /// `GlobalSync` for the initial state (its `ops_delta` is the setup
    /// cost), then per round `RoundStarted`, one `PairIterated` per
    /// selected pair in ascending pair order, `GlobalSync`, and at most
    /// one `TargetReached`; finally `RunFinished`.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    ///
    /// # Panics
    ///
    /// Panics on graph/schedule mismatch or if `initial_bits` has the
    /// wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn run_scheduled_from_observed<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        schedule: &Schedule,
        seed: u64,
        target_cut: Option<f64>,
        initial_bits: Option<&[bool]>,
        observer: &mut dyn SolveObserver,
    ) -> Result<SophieOutcome> {
        self.run_impl(
            backend,
            graph,
            schedule,
            schedule.rounds().len(),
            seed,
            target_cut,
            initial_bits,
            None,
            &RunControl::unrestricted(),
            observer,
            &mut NullTimeline,
        )
    }

    /// Runs one job with the runtime health monitor attached: after each
    /// `check_interval`-th synchronization the engine probes every pair's
    /// physical unit with a calibration MVM and applies the configured
    /// [`crate::RecoveryPolicy`] to the units that fail, emitting
    /// `FaultDetected` / `TileRecovered` / `RecoveryExhausted` events
    /// (and, from fault-capable backends, `FaultInjected`) alongside the
    /// usual stream. All probe and reprogram work is tallied in the
    /// outcome's op counts, so the `sophie-hw` cost models charge the
    /// recovery overhead.
    ///
    /// The schedule is generated from `seed` exactly as in
    /// [`Self::run_with_backend`].
    ///
    /// # Errors
    ///
    /// Returns [`SophieError::BadConfig`] if `health` is invalid.
    pub fn run_fault_aware<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        seed: u64,
        target_cut: Option<f64>,
        health: &HealthConfig,
        observer: &mut dyn SolveObserver,
    ) -> Result<SophieOutcome> {
        health.validate()?;
        let schedule = Schedule::generate(
            &self.grid,
            self.config.global_iters,
            self.config.tile_fraction,
            self.config.stochastic_spin_update,
            seed ^ 0x5c3a_11ed_0b57_aced,
        );
        self.run_impl(
            backend,
            graph,
            &schedule,
            schedule.rounds().len(),
            seed,
            target_cut,
            None,
            Some(health),
            &RunControl::unrestricted(),
            observer,
            &mut NullTimeline,
        )
    }

    /// Runs a [`SolveJob`] on `backend` through the shared
    /// [`Solver`](sophie_solve::Solver) contract: the job's seed and
    /// target replace per-call parameters, `budget.max_iterations` caps
    /// the configured `global_iters`, the job's [`RunControl`] is polled
    /// between rounds, and the returned [`SolveReport`] is distilled from
    /// the exact event stream `observer` receives. With no budget or
    /// cancellation the stream is byte-identical to
    /// [`Self::run_with_backend_observed`] (or, with `health` set, to
    /// [`Self::run_fault_aware`]) for the same (graph, seed, target).
    ///
    /// This is the backend-generic core of the `Solver` impls: the ideal
    /// impl on this type fixes the backend to [`IdealBackend`], and the
    /// OPCM adapter in `sophie-hw` supplies its device model.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadJob`] if the job's graph order differs from the
    /// engine dimension, [`SolveError::BadConfig`] for an invalid
    /// `health`.
    pub fn solve_job<B: MvmBackend>(
        &self,
        backend: &B,
        job: &SolveJob,
        health: Option<&HealthConfig>,
        observer: &mut dyn SolveObserver,
    ) -> std::result::Result<SolveReport, SolveError> {
        self.solve_job_with_timeline(backend, job, health, observer, &mut NullTimeline)
    }

    /// Like [`Self::solve_job`], but streaming every device command
    /// completion and host-side cost record of the run to `timeline` —
    /// the exact per-command attribution behind the aggregate
    /// [`OpCounts`] in the report. The sum of all device-record costs
    /// plus all host-record costs reproduces the report's op totals
    /// exactly, and the device stream's `(round, wave, unit)` keys are
    /// byte-identical for every `SOPHIE_THREADS` and `queue_depth`
    /// setting. Outcomes and events are unaffected by the sink.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve_job`].
    pub fn solve_job_with_timeline<B: MvmBackend>(
        &self,
        backend: &B,
        job: &SolveJob,
        health: Option<&HealthConfig>,
        observer: &mut dyn SolveObserver,
        timeline: &mut dyn TimelineSink,
    ) -> std::result::Result<SolveReport, SolveError> {
        if job.graph.num_nodes() != self.n {
            return Err(SolveError::BadJob {
                solver: "sophie".to_string(),
                message: format!(
                    "graph order {} does not match engine dimension {}",
                    job.graph.num_nodes(),
                    self.n
                ),
            });
        }
        if let Some(h) = health {
            h.validate().map_err(|e| SolveError::BadConfig {
                solver: "sophie".to_string(),
                message: e.to_string(),
            })?;
        }
        let planned = job.budget.cap(self.config.global_iters);
        let control = job.control();
        // Cooperative generation: schedule setup is O(global_iters) work
        // before the first round, so it honors cancellation and deadlines
        // too. Truncation is unobservable — a run stopped during setup
        // would never execute the missing rounds — and `planned` still
        // reports the requested count.
        let schedule = Schedule::generate_while(
            &self.grid,
            planned,
            self.config.tile_fraction,
            self.config.stochastic_spin_update,
            job.seed ^ 0x5c3a_11ed_0b57_aced,
            || !control.should_stop(),
        );
        let mut recorder = TraceRecorder::new();
        let outcome = {
            let mut tee = Tee::new(&mut recorder, observer);
            self.run_impl(
                backend, &job.graph, &schedule, planned, job.seed, job.target, None, health,
                &control, &mut tee, timeline,
            )
            .map_err(|e| SolveError::Failed {
                solver: "sophie".to_string(),
                message: e.to_string(),
            })?
        };
        let mut report = recorder.into_report();
        // Events carry no bits; attach the winning state out-of-band so
        // problem decoders can map the report back to their domain.
        report.best_bits = outcome.best_bits;
        Ok(report)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_impl<B: MvmBackend>(
        &self,
        backend: &B,
        graph: &Graph,
        schedule: &Schedule,
        planned: usize,
        seed: u64,
        target_cut: Option<f64>,
        initial_bits: Option<&[bool]>,
        health_config: Option<&HealthConfig>,
        control: &RunControl,
        observer: &mut dyn SolveObserver,
        timeline: &mut dyn TimelineSink,
    ) -> Result<SophieOutcome> {
        assert_eq!(graph.num_nodes(), self.n, "graph order mismatch");
        assert_eq!(
            schedule.blocks(),
            self.grid.blocks(),
            "schedule grid mismatch"
        );

        observer.on_event(&SolveEvent::RunStarted {
            solver: "sophie",
            dimension: self.n,
            planned_iterations: planned,
            seed,
            target: target_cut,
        });

        let mut monitor = health_config.map(|h| health::HealthMonitor::new(*h));
        let probe_seed = monitor
            .as_ref()
            .map_or(0, health::HealthMonitor::probe_seed);

        // Stage 1: program the units and upload the initial state.
        let mut ms = program::program(self, backend, seed, initial_bits, probe_seed, timeline);
        // Reuse-model setup charge: the initial state computes every field
        // from scratch (one full pass over the nonzeros of C).
        dispatch::host_record(&mut ms, 0, "reuse_setup", timeline, |ms| {
            ms.ops.sparse_field_updates += self.n as u64;
            ms.ops.sparse_delta_macs += self.reuse.nnz() as u64;
        });

        let bits = state::global_bits(&ms.global, self.n);
        let cut0 = cut_value_binary(graph, &bits);
        let mut tracker = track::RunTracker::start(target_cut, &bits, cut0, ms.ops, observer);
        let mut prev_bits = bits;
        let mut reuse_stamp = vec![0_u32; self.n];
        let mut reuse_gen = 0_u32;

        let local_iters = self.config.local_iters;
        // Queue-depth knob: flush whenever this many commands are pending,
        // always at chain boundaries (never mid-pair), so results are
        // invariant in the depth. `None` batches whole rounds.
        let queue_depth = self.config.queue_depth.unwrap_or(usize::MAX).max(1);
        let mut active: Vec<usize> = Vec::with_capacity(self.pairs.len());
        let mut rounds_done = 0usize;
        for (g, sched_round) in schedule.rounds().iter().enumerate() {
            // Cooperative stop (deadline or sibling cancellation): wind
            // down at round granularity, still emitting `RunFinished`.
            if control.should_stop() {
                break;
            }
            let round_index = g + 1;
            rounds_done = round_index;

            // Stage 2: submit the selected pairs' local-iteration chains
            // (minus any the health monitor quarantined).
            active.clear();
            active.extend(
                sched_round
                    .pairs
                    .iter()
                    .copied()
                    .filter(|&pi| !ms.states[pi].disabled),
            );
            observer.on_event(&SolveEvent::RoundStarted {
                round: round_index,
                pairs_selected: active.len(),
            });
            ms.queue.begin_round(round_index as u64);
            let mut art = dispatch::RoundArtifacts::default();
            for &pi in &active {
                if ms.queue.pending() >= queue_depth {
                    dispatch::flush_all(self, &mut ms, seed, probe_seed, timeline, &mut art);
                }
                let state::MachineState { states, queue, .. } = &mut ms;
                round::submit_pair(queue, &states[pi], local_iters);
            }
            // Health probes (every live pair, selected or not) ride the
            // same flush as the in-flight solve chains: the sorted
            // timeline shows probe completions interleaved with solve
            // MVMs of the same round.
            let probing = monitor.as_ref().is_some_and(|m| m.due(round_index));
            if probing {
                monitor.as_ref().unwrap().submit_probes(&mut ms);
            }
            dispatch::flush_all(self, &mut ms, seed, probe_seed, timeline, &mut art);
            art.sort();

            for &pi in &active {
                observer.on_event(&SolveEvent::PairIterated {
                    round: round_index,
                    pair: pi,
                    local_iters,
                });
            }
            // The round's transient-fault reports, drained by the
            // per-pair `CollectFaults` commands, surface in ascending
            // pair order.
            for (pi, faults) in &art.fault_stash {
                for fault in faults {
                    observer.on_event(&SolveEvent::FaultInjected {
                        round: round_index,
                        pair: *pi,
                        kind: fault.kind,
                        wave: fault.wave,
                    });
                }
            }

            // Stage 3: global synchronization and partial-sum merge
            // (host-side glue, reported to the timeline as one record).
            dispatch::host_record(&mut ms, round_index as u64, "global_sync", timeline, |ms| {
                sync::synchronize(self, ms, schedule, sched_round, &active);
            });

            // Stage 3b: recovery of the pairs whose probe failed
            // (fault-aware runs only), charged to the same round's ops
            // delta. Probe residuals are state-independent of the global
            // sync, so resolving after it matches the legacy serial
            // probe-then-recover flow exactly.
            if probing {
                monitor.as_mut().unwrap().resolve(
                    self,
                    backend,
                    &mut ms,
                    round_index,
                    seed,
                    &art.probe_residuals,
                    timeline,
                    observer,
                );
            }
            ms.drain_pair_ops();

            // Stage 4: score the synchronized state and emit its events.
            let bits = state::global_bits(&ms.global, self.n);
            dispatch::host_record(&mut ms, round_index as u64, "reuse_tally", timeline, |ms| {
                tally_reuse(
                    &self.reuse,
                    &prev_bits,
                    &bits,
                    &mut reuse_stamp,
                    &mut reuse_gen,
                    &mut ms.ops,
                );
            });
            let cut = cut_value_binary(graph, &bits);
            tracker.observe(round_index, &bits, cut, ms.ops, observer);
            prev_bits = bits;
        }

        Ok(tracker.finish(rounds_done, ms.ops, observer))
    }
}

/// Tallies the reuse-model op counters for one global synchronization.
///
/// The counters model what an incremental-update ASIC datapath would pay
/// for this sync: every spin whose global bit flipped since the previous
/// sync (`sparse_spin_flips`), every field adjacent to at least one
/// flipped spin (`sparse_field_updates`, deduplicated via generation
/// stamps), and one MAC per (flipped spin, adjacent field) pair
/// (`sparse_delta_macs`).
///
/// Deliberately **strategy- and thread-independent**: derived solely from
/// the synchronized global state and the static pattern of `C`, never from
/// which kernel the backend actually executed — so event streams stay
/// byte-identical across [`ComputeMode`]s and `SOPHIE_THREADS` settings.
fn tally_reuse(
    adjacency: &SparseCsr,
    prev: &[bool],
    now: &[bool],
    stamp: &mut [u32],
    gen: &mut u32,
    ops: &mut OpCounts,
) {
    *gen = gen.wrapping_add(1);
    if *gen == 0 {
        stamp.fill(0);
        *gen = 1;
    }
    let mut flips = 0_u64;
    let mut touched = 0_u64;
    let mut macs = 0_u64;
    for (j, (&a, &b)) in prev.iter().zip(now).enumerate() {
        if a != b {
            flips += 1;
            let (rows, _) = adjacency.row(j);
            macs += rows.len() as u64;
            for &i in rows {
                if stamp[i as usize] != *gen {
                    stamp[i as usize] = *gen;
                    touched += 1;
                }
            }
        }
    }
    ops.sparse_spin_flips += flips;
    ops.sparse_field_updates += touched;
    ops.sparse_delta_macs += macs;
}
