//! Stage 3 — global synchronization and partial-sum merge.
//!
//! After the flushed local iterations, this stage rebuilds the shared
//! view of the machine serially (cheap copies and votes): it updates the
//! global spin state per block column — stochastic donor copy or majority
//! vote (§III-A2) — broadcasts the synchronized columns back into every
//! pair's private copies, accounts the synchronization traffic, and
//! regathers the offset vectors for the next round. It reads the pairs'
//! device buffers through the pool by handle; no device commands are
//! issued (the controller's glue work is host-side by construction and
//! reported to the timeline as host records by the caller).

use crate::queue::BufferPool;
use crate::schedule::{Round, Schedule};

use super::state::{MachineState, PairState};
use super::SophieSolver;

/// Synchronizes the machine after one round's local iterations.
///
/// `active_pairs` is the subset of `round.pairs` that actually executed
/// (quarantined pairs are excluded on fault-aware runs; otherwise the two
/// are the same list) — it drives the partial-sum traffic and
/// pair-execution accounting.
pub(super) fn synchronize<U>(
    solver: &SophieSolver,
    ms: &mut MachineState<U>,
    schedule: &Schedule,
    round: &Round,
    active_pairs: &[usize],
) {
    let t = solver.grid.tile();
    let b = solver.grid.blocks();

    let mut updated_cols = 0u64;
    {
        // Split borrow: the column updates read the pair buffers out of
        // the pool and write the global vector (plus the op tally).
        let MachineState {
            states,
            global,
            ops,
            pool,
            ..
        } = ms;
        for cblock in 0..b {
            if schedule.stochastic_spin() {
                if let Some(donor) = round.donors[cblock] {
                    let copy = column_copy(solver, states, pool, donor, cblock);
                    global[cblock * t..(cblock + 1) * t].copy_from_slice(copy);
                    updated_cols += 1;
                }
            } else {
                let rows = schedule.eligible_rows(round, cblock);
                if !rows.is_empty() {
                    majority_update(
                        solver,
                        states,
                        pool,
                        &rows,
                        cblock,
                        &mut global[cblock * t..(cblock + 1) * t],
                    );
                    ops.glue_adds += (rows.len() * t) as u64;
                    updated_cols += 1;
                }
            }
        }
        // Broadcast the synchronized columns to every tile's copy.
        for st in states.iter() {
            st.reset_from_global(pool, global, t);
        }
    }
    ms.ops.spin_broadcast_bits += updated_cols * (b * t) as u64;
    let selected_logical: u64 = active_pairs
        .iter()
        .map(|&pi| solver.pairs[pi].logical_tiles() as u64)
        .sum();
    ms.ops.partial_sum_bits += selected_logical * (t * 8) as u64;
    recompute_offsets(solver, ms);
    ms.ops.global_syncs += 1;
    ms.ops.pairs_executed += active_pairs.len() as u64;
}

/// Offsets `o[r][c] = Σ_{c'≠c} p[r][c']` — the controller's glue
/// computation, gathered from the per-pair partial-sum segments.
pub(super) fn recompute_offsets<U>(solver: &SophieSolver, ms: &mut MachineState<U>) {
    let b = solver.grid.blocks();
    let t = solver.grid.tile();
    let MachineState {
        states,
        offsets,
        ops,
        pool,
        ..
    } = ms;
    let mut rowsum = vec![0.0_f32; t];
    for r in 0..b {
        rowsum.fill(0.0);
        for c in 0..b {
            let p = partial_slot(solver, states, pool, r, c);
            for (s, &v) in rowsum.iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..b {
            let p = partial_slot(solver, states, pool, r, c);
            let base = (r * b + c) * t;
            for i in 0..t {
                offsets[base + i] = rowsum[i] - p[i];
            }
        }
    }
    ops.glue_adds += 2 * (b * b * t) as u64;
}

/// The latest 8-bit partial-sum segment of logical tile `(r, c)`.
fn partial_slot<'a, U>(
    solver: &SophieSolver,
    states: &[PairState<U>],
    pool: &'a BufferPool,
    r: usize,
    c: usize,
) -> &'a [f32] {
    let pi = solver.pair_index(r, c);
    if r <= c {
        pool.get(states[pi].partial_primary)
    } else {
        pool.get(states[pi].partial_partner)
    }
}

/// The spin copy of column `cblock` held at block row `donor`.
fn column_copy<'a, U>(
    solver: &SophieSolver,
    states: &[PairState<U>],
    pool: &'a BufferPool,
    donor: usize,
    cblock: usize,
) -> &'a [f32] {
    let pi = solver.pair_index(donor, cblock);
    if donor <= cblock {
        // Tile (donor, cblock) is the pair's primary: input is x_cblock.
        pool.get(states[pi].primary)
    } else {
        // Pair (cblock, donor): the partner tile (donor, cblock) reads
        // x_cblock as its input copy.
        pool.get(states[pi].partner)
    }
}

/// Majority vote over the fresh copies of column `cblock`.
fn majority_update<U>(
    solver: &SophieSolver,
    states: &[PairState<U>],
    pool: &BufferPool,
    rows: &[usize],
    cblock: usize,
    out: &mut [f32],
) {
    let t = solver.grid.tile();
    let mut votes = vec![0.0_f32; t];
    for &r in rows {
        let copy = column_copy(solver, states, pool, r, cblock);
        for (v, &x) in votes.iter_mut().zip(copy) {
            *v += x;
        }
    }
    let half = rows.len() as f32 / 2.0;
    for (o, &v) in out.iter_mut().zip(&votes) {
        *o = if v >= half { 1.0 } else { 0.0 };
    }
}
