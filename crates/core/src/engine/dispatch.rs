//! Stage glue between the engine and the device runtime: builds unit
//! lanes over the pair states, flushes the [`CommandQueue`], folds each
//! completion's exact cost record into the owning pair's tally, streams
//! the records to the run's [`TimelineSink`], and collects the artifacts
//! the driving thread consumes after the flush (probe residuals,
//! fault-report drains).
//!
//! This module is the only place engine code touches `MvmUnit`s — and it
//! does so solely by handing exclusive lane borrows to the queue
//! executor. The stage modules themselves never call unit methods
//! (enforced by a CI grep gate).

use super::state::{MachineState, PairState};
use super::SophieSolver;
use crate::backend::{FaultReport, MvmBackend, MvmUnit};
use crate::queue::{
    CommandKind, CommandQueue, Completion, DeviceQueue, ExecCtx, Lane, MvmDir, Src, TimelineSink,
};

/// What a round's flushes produced beyond machine-state mutation: the
/// per-pair probe residuals and drained fault reports the driving thread
/// turns into events after the flush.
///
/// Accumulated across every flush of a round (there are several when a
/// `queue_depth` is configured); call [`RoundArtifacts::sort`] before
/// consuming so emission follows ascending pair order regardless of how
/// submissions were batched.
#[derive(Debug, Default)]
pub(super) struct RoundArtifacts {
    /// `(pair, residual)` of every completed probe command.
    pub probe_residuals: Vec<(usize, f64)>,
    /// `(pair, reports)` of every non-empty fault drain, reports in
    /// firing order.
    pub fault_stash: Vec<(usize, Vec<FaultReport>)>,
}

impl RoundArtifacts {
    /// Orders both artifact lists by pair index (each pair contributes at
    /// most one probe and one drain per round, so the order is total).
    pub fn sort(&mut self) {
        self.probe_residuals.sort_by_key(|&(pi, _)| pi);
        self.fault_stash.sort_by_key(|&(pi, _)| pi);
    }
}

/// Builds the flush context from the solver's frozen tables and the
/// machine's shared vectors.
fn exec_ctx<'a>(
    solver: &'a SophieSolver,
    global: &'a [f32],
    offsets: &'a [f32],
    seed: u64,
    probe_seed: u64,
) -> ExecCtx<'a> {
    ExecCtx {
        tiles: &solver.tiles,
        thresholds: &solver.thresholds,
        noise_scale: &solver.noise_scale,
        offsets,
        global,
        t: solver.grid.tile(),
        b: solver.grid.blocks(),
        seed,
        probe_seed,
        phi: solver.config.phi as f32,
        plan: sophie_linalg::KernelPlan::for_choice(solver.config.kernel, solver.grid.tile()),
    }
}

/// Folds a batch of completions into the owning pairs' tallies, streams
/// them to the timeline, and extracts the round artifacts.
fn fold<U>(
    states: &mut [PairState<U>],
    completions: Vec<Completion>,
    timeline: &mut dyn TimelineSink,
    art: &mut RoundArtifacts,
) {
    for c in completions {
        let pi = c.key.unit as usize;
        let st = &mut states[pi];
        st.ops = st.ops.combined(&c.cost);
        timeline.device(&c);
        if let Some(residual) = c.residual {
            art.probe_residuals.push((pi, residual));
        }
        if !c.faults.is_empty() {
            art.fault_stash.push((pi, c.faults));
        }
    }
}

/// Flushes everything pending, fanning independent unit chains across
/// the worker pool.
pub(super) fn flush_all<U: MvmUnit>(
    solver: &SophieSolver,
    ms: &mut MachineState<U>,
    seed: u64,
    probe_seed: u64,
    timeline: &mut dyn TimelineSink,
    art: &mut RoundArtifacts,
) {
    let MachineState {
        states,
        global,
        offsets,
        pool,
        queue,
        ..
    } = ms;
    let ctx = exec_ctx(solver, global, offsets, seed, probe_seed);
    let completions = {
        let mut lanes: Vec<Lane<'_, U>> = states
            .iter_mut()
            .map(|st| Lane {
                unit_index: st.index,
                unit: &mut st.unit,
            })
            .collect();
        queue.flush(&mut lanes, pool, &ctx)
    };
    fold(states, completions, timeline, art);
}

/// Flushes everything pending serially in ascending unit order on the
/// calling thread — for setup programming (backends may hand out unit
/// identity from shared counters, so the order must not depend on
/// timing).
pub(super) fn flush_all_serial<B: MvmBackend>(
    solver: &SophieSolver,
    backend: &B,
    ms: &mut MachineState<B::Unit>,
    seed: u64,
    probe_seed: u64,
    timeline: &mut dyn TimelineSink,
    art: &mut RoundArtifacts,
) {
    let MachineState {
        states,
        global,
        offsets,
        pool,
        queue,
        ..
    } = ms;
    let ctx = exec_ctx(solver, global, offsets, seed, probe_seed);
    let completions = {
        let mut lanes: Vec<Lane<'_, B::Unit>> = states
            .iter_mut()
            .map(|st| Lane {
                unit_index: st.index,
                unit: &mut st.unit,
            })
            .collect();
        queue.flush_serial(backend, &mut lanes, pool, &ctx)
    };
    fold(states, completions, timeline, art);
}

/// Serial mini-flush over a single unit — the recovery path, which needs
/// backend access for `Remap` spares and runs on the driving thread.
/// Returns the residual of the last probe completion, if any.
pub(super) fn flush_unit_serial<B: MvmBackend>(
    solver: &SophieSolver,
    backend: &B,
    ms: &mut MachineState<B::Unit>,
    pair: usize,
    seed: u64,
    probe_seed: u64,
    timeline: &mut dyn TimelineSink,
) -> Option<f64> {
    let MachineState {
        states,
        global,
        offsets,
        pool,
        queue,
        ..
    } = ms;
    let ctx = exec_ctx(solver, global, offsets, seed, probe_seed);
    let st = &mut states[pair];
    let completions = {
        let mut lanes = [Lane {
            unit_index: st.index,
            unit: &mut st.unit,
        }];
        queue.flush_serial(backend, &mut lanes, pool, &ctx)
    };
    let mut residual = None;
    for c in completions {
        assert_eq!(c.key.unit as usize, pair, "mini-flush crossed units");
        st.ops = st.ops.combined(&c.cost);
        if c.residual.is_some() {
            residual = c.residual;
        }
        timeline.device(&c);
    }
    residual
}

/// Submits the commands that recompute a pair's partial sums from the
/// current global state (the first 8-bit pass of setup, and the refresh
/// after a successful recovery): no noise, no thresholding, inputs read
/// straight from the shared global vector.
///
/// The MVMs write directly into the partial buffers (no scratch +
/// `save_partial` copy): the outputs are then distinct, which makes an
/// off-diagonal pair's forward/transposed refresh eligible for the
/// executor's fused-pair submission — one pass over the stored weights
/// on kernel-plan-aware backends.
pub(super) fn submit_partial_refresh<U>(queue: &mut CommandQueue, st: &PairState<U>) {
    match st.pair {
        sophie_linalg::TilePair::Diagonal(d) => {
            queue.submit(
                st.index,
                false,
                CommandKind::Mvm {
                    dir: MvmDir::Forward,
                    input: Src::GlobalBlock(d),
                    output: st.partial_primary,
                    quantize: true,
                    save_partial: None,
                    threshold: None,
                },
            );
        }
        sophie_linalg::TilePair::OffDiagonal { row, col } => {
            queue.submit(
                st.index,
                false,
                CommandKind::Mvm {
                    dir: MvmDir::Forward,
                    input: Src::GlobalBlock(col),
                    output: st.partial_primary,
                    quantize: true,
                    save_partial: None,
                    threshold: None,
                },
            );
            queue.submit(
                st.index,
                false,
                CommandKind::Mvm {
                    dir: MvmDir::Transposed,
                    input: Src::GlobalBlock(row),
                    output: st.partial_partner,
                    quantize: true,
                    save_partial: None,
                    threshold: None,
                },
            );
        }
    }
}

/// Records a host-side op-count mutation on the timeline: snapshot
/// `ms.ops` before the stage, run it, report the delta.
pub(super) fn host_record<U, R>(
    ms: &mut MachineState<U>,
    round: u64,
    stage: &'static str,
    timeline: &mut dyn TimelineSink,
    f: impl FnOnce(&mut MachineState<U>) -> R,
) -> R {
    let before = ms.ops;
    let out = f(ms);
    timeline.host(round, stage, &ms.ops.delta_since(&before));
    out
}
