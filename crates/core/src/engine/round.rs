//! Stage 2 — pair selection and parallel local iteration.
//!
//! Runs the scheduled pairs of one round concurrently on the persistent
//! worker pool, each executing `local_iters` recurrent steps against its
//! private spin copies and the offset vectors frozen at the previous
//! synchronization (§III-A1).

use rand::rngs::SmallRng;
use sophie_linalg::{par, TilePair};

use super::state::{collect_selected, count_local_mvm, noise_rng, vec_at, MachineState, PairState};
use super::SophieSolver;
use crate::backend::MvmUnit;
use crate::gaussian::GaussianSource;

/// Executes the local iterations of every selected pair for round
/// `round_index` (1-based).
///
/// Each pair owns its unit, spin copies, partial-sum segments and op
/// tally; shared state (offsets, thresholds) is read-only; and noise comes
/// from a counter-derived per-(round, pair) RNG stream — so traces are
/// bit-identical for every `SOPHIE_THREADS` value, including 1.
pub(super) fn execute<U: MvmUnit>(
    solver: &SophieSolver,
    ms: &mut MachineState<U>,
    selected_pairs: &[usize],
    round_index: u64,
    seed: u64,
) {
    let mut selected = collect_selected(&mut ms.states, selected_pairs);
    let offsets_ref: &[f32] = &ms.offsets;
    let local_iters = solver.config.local_iters;
    let phi = solver.config.phi as f32;
    par::for_each_chunk_mut(&mut selected, selected_pairs.len().max(1), |_, chunk| {
        for st in chunk.iter_mut() {
            run_local_iters(solver, st, offsets_ref, round_index, seed, local_iters, phi);
        }
    });
}

/// Executes the local iterations of one selected pair for one round.
///
/// Called concurrently for distinct pairs: everything mutated lives in
/// `st`, the shared inputs (`offsets`, thresholds, noise scales) are
/// read-only, and noise is drawn from the pair's private stream (see
/// [`super::state::noise_stream_seed`]) — never from a shared RNG.
fn run_local_iters<U: MvmUnit>(
    solver: &SophieSolver,
    st: &mut PairState<U>,
    offsets: &[f32],
    round_index: u64,
    seed: u64,
    local_iters: usize,
    phi: f32,
) {
    let t = solver.grid.tile();
    let b = solver.grid.blocks();
    // Let fault-capable backends draw this round's transient-fault
    // schedule (keyed by (fault seed, round, unit id), so it is identical
    // under any worker-pool scheduling). A no-op on ideal hardware.
    st.unit.begin_round(round_index);
    let mut rng = noise_rng(seed, round_index, st.index as u64);
    let mut gauss = GaussianSource::new();
    for l in 0..local_iters {
        let last = l + 1 == local_iters;
        match st.pair {
            TilePair::Diagonal(d) => {
                st.unit.forward(&st.primary, &mut st.y);
                if last {
                    st.unit.quantize_8bit(&mut st.y);
                    st.partial_primary.copy_from_slice(&st.y);
                }
                finish_half_step(
                    solver,
                    &mut st.y,
                    &offsets[vec_at(b, t, d, d)],
                    d,
                    phi,
                    &mut gauss,
                    &mut rng,
                    &mut st.primary,
                );
                count_local_mvm(&mut st.ops, t, last, 1);
            }
            TilePair::OffDiagonal { row, col } => {
                // Tile (row, col): x_col → y_row.
                st.unit.forward(&st.primary, &mut st.y);
                if last {
                    st.unit.quantize_8bit(&mut st.y);
                    st.partial_primary.copy_from_slice(&st.y);
                }
                finish_half_step(
                    solver,
                    &mut st.y,
                    &offsets[vec_at(b, t, row, col)],
                    row,
                    phi,
                    &mut gauss,
                    &mut rng,
                    &mut st.partner,
                );
                // Tile (col, row) = transpose: x_row → y_col.
                st.unit.transposed(&st.partner, &mut st.y);
                if last {
                    st.unit.quantize_8bit(&mut st.y);
                    st.partial_partner.copy_from_slice(&st.y);
                }
                finish_half_step(
                    solver,
                    &mut st.y,
                    &offsets[vec_at(b, t, col, row)],
                    col,
                    phi,
                    &mut gauss,
                    &mut rng,
                    &mut st.primary,
                );
                count_local_mvm(&mut st.ops, t, last, 2);
            }
        }
    }
}

/// Adds offset + noise to the raw MVM result and thresholds it into a
/// fresh spin copy (one ADC pass).
#[allow(clippy::too_many_arguments)]
fn finish_half_step(
    solver: &SophieSolver,
    y: &mut [f32],
    offset: &[f32],
    out_block: usize,
    phi: f32,
    gauss: &mut GaussianSource,
    rng: &mut SmallRng,
    out: &mut [f32],
) {
    let t = solver.grid.tile();
    let theta = &solver.thresholds[out_block * t..(out_block + 1) * t];
    let scale = &solver.noise_scale[out_block * t..(out_block + 1) * t];
    if phi > 0.0 {
        for i in 0..t {
            let noisy = y[i] + offset[i] + phi * scale[i] * gauss.sample(rng) as f32;
            out[i] = if noisy >= theta[i] { 1.0 } else { 0.0 };
        }
    } else {
        for i in 0..t {
            out[i] = if y[i] + offset[i] >= theta[i] {
                1.0
            } else {
                0.0
            };
        }
    }
}
