//! Stage 2 — building each selected pair's local-iteration command chain.
//!
//! For every scheduled pair of a round this stage submits one atomic
//! chain of typed MVM commands to the device queue: `local_iters`
//! recurrent steps against the pair's private spin copies and the offset
//! vectors frozen at the previous synchronization (§III-A1), capped by a
//! fault drain. Execution happens at flush boundaries (see
//! [`super::dispatch`]), fanning independent chains across the worker
//! pool; because each chain touches only its own unit and buffers and
//! draws noise from a counter-derived per-`(round, pair)` stream, traces
//! are bit-identical for every `SOPHIE_THREADS` value and every flush
//! granularity.

use sophie_linalg::TilePair;

use super::state::PairState;
use crate::queue::{CommandKind, CommandQueue, DeviceQueue, MvmDir, Src, ThresholdSpec};

/// Submits one selected pair's full round chain: the local iterations
/// (each MVM carrying its threshold epilogue; the last in 8-bit capture
/// mode saving the partial sums) followed by a fault-report drain.
///
/// The chain's first command carries `starts_round`, so fault-capable
/// backends draw this round's transient-fault schedule (keyed by
/// (fault seed, round, unit id) — identical under any scheduling) before
/// the first array read. The chain is atomic: callers flush only at
/// chain boundaries, never mid-pair, so the pair's per-round noise
/// stream never spans a flush.
pub(super) fn submit_pair<U>(queue: &mut CommandQueue, st: &PairState<U>, local_iters: usize) {
    for l in 0..local_iters {
        let first = l == 0;
        let last = l + 1 == local_iters;
        match st.pair {
            TilePair::Diagonal(d) => {
                queue.submit(
                    st.index,
                    first,
                    CommandKind::Mvm {
                        dir: MvmDir::Forward,
                        input: Src::Buf(st.primary),
                        output: st.y,
                        quantize: last,
                        save_partial: last.then_some(st.partial_primary),
                        threshold: Some(ThresholdSpec {
                            tile_row: d,
                            tile_col: d,
                            out_block: d,
                            dest: st.primary,
                        }),
                    },
                );
            }
            TilePair::OffDiagonal { row, col } => {
                // Tile (row, col): x_col → y_row.
                queue.submit(
                    st.index,
                    first,
                    CommandKind::Mvm {
                        dir: MvmDir::Forward,
                        input: Src::Buf(st.primary),
                        output: st.y,
                        quantize: last,
                        save_partial: last.then_some(st.partial_primary),
                        threshold: Some(ThresholdSpec {
                            tile_row: row,
                            tile_col: col,
                            out_block: row,
                            dest: st.partner,
                        }),
                    },
                );
                // Tile (col, row) = transpose: x_row → y_col.
                queue.submit(
                    st.index,
                    false,
                    CommandKind::Mvm {
                        dir: MvmDir::Transposed,
                        input: Src::Buf(st.partner),
                        output: st.y,
                        quantize: last,
                        save_partial: last.then_some(st.partial_partner),
                        threshold: Some(ThresholdSpec {
                            tile_row: col,
                            tile_col: row,
                            out_block: col,
                            dest: st.primary,
                        }),
                    },
                );
            }
        }
    }
    // Drain the round's transient-fault reports at the exact point the
    // unit finished its solve MVMs (an empty, allocation-free drain on
    // ideal hardware). Completion order keeps the event stream in
    // ascending pair order.
    queue.submit(st.index, false, CommandKind::CollectFaults);
}
