//! Stage 1 — unit programming and state upload.
//!
//! Programs every pair's primary tile into a physical MVM unit, seeds the
//! global spin state (random or warm-started), computes the first 8-bit
//! partial sums, primes each pair's private spin copies, and gathers the
//! initial offset vectors. After this stage the machine is exactly at
//! "round 0": the state every subsequent round iterates from.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::dispatch::{self, RoundArtifacts};
use super::state::{MachineState, PairState};
use super::{sync, SophieSolver};
use crate::backend::MvmBackend;
use crate::queue::{BufferPool, CommandKind, CommandQueue, DeviceQueue, TimelineSink};

/// Builds the programmed machine for one run.
///
/// Unit creation and tile programming stay serial in ascending pair
/// order: backends may hand out unit ids from a shared counter, and the
/// id ↔ pair mapping must not depend on timing. The first partial-sum
/// pass is submitted as per-pair MVM commands and flushed across the
/// worker pool — one independent chain per pair.
///
/// On return the per-pair tallies have been drained, so `ms.ops` is the
/// complete setup cost (the `ops_delta` of the round-0 `GlobalSync`
/// event).
///
/// # Panics
///
/// Panics if `initial_bits` has the wrong length.
pub(super) fn program<B: MvmBackend>(
    solver: &SophieSolver,
    backend: &B,
    seed: u64,
    initial_bits: Option<&[bool]>,
    probe_seed: u64,
    timeline: &mut dyn TimelineSink,
) -> MachineState<B::Unit> {
    let t = solver.grid.tile();
    let b = solver.grid.blocks();

    let mut pool = BufferPool::new();
    let states: Vec<PairState<B::Unit>> = solver
        .pairs
        .iter()
        .enumerate()
        .map(|(pi, &pair)| PairState::new(pair, pi, backend.unit(t), t, &mut pool))
        .collect();
    let mut queue = CommandQueue::new(states.len());
    for st in &states {
        queue.submit(st.index, false, CommandKind::ProgramTile);
    }

    // Global spin state, padded; padding stays 0 and couples to nothing.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut global = vec![0.0_f32; solver.grid.padded_len()];
    match initial_bits {
        Some(bits) => {
            assert_eq!(bits.len(), solver.n, "initial state length mismatch");
            for (g, &bit) in global.iter_mut().zip(bits) {
                *g = if bit { 1.0 } else { 0.0 };
            }
        }
        None => {
            for g in global.iter_mut().take(solver.n) {
                *g = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
            }
        }
    }

    let mut ms = MachineState {
        states,
        global,
        offsets: vec![0.0_f32; b * b * t],
        ops: sophie_solve::OpCounts::new(),
        pool,
        queue,
    };

    // Program every tile (serial flush: the OPCM write order is part of
    // the device contract).
    let mut art = RoundArtifacts::default();
    dispatch::flush_all_serial(
        solver, backend, &mut ms, seed, probe_seed, timeline, &mut art,
    );

    // Initial partial sums — every tile's contribution to its block row —
    // as one parallel flush of per-pair MVM chains reading the fresh
    // global state.
    {
        let MachineState { states, queue, .. } = &mut ms;
        for st in states.iter() {
            dispatch::submit_partial_refresh(queue, st);
        }
    }
    dispatch::flush_all(solver, &mut ms, seed, probe_seed, timeline, &mut art);
    debug_assert!(art.probe_residuals.is_empty() && art.fault_stash.is_empty());

    // Private spin copies: pure host-side copies of the global state.
    {
        let MachineState {
            states,
            global,
            pool,
            ..
        } = &mut ms;
        for st in states.iter() {
            st.reset_from_global(pool, global, t);
        }
    }

    dispatch::host_record(&mut ms, 0, "recompute_offsets", timeline, |ms| {
        sync::recompute_offsets(solver, ms);
    });
    ms.drain_pair_ops();
    ms
}
