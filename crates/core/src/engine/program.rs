//! Stage 1 — unit programming and state upload.
//!
//! Programs every pair's primary tile into a physical MVM unit, seeds the
//! global spin state (random or warm-started), computes the first 8-bit
//! partial sums, primes each pair's private spin copies, and gathers the
//! initial offset vectors. After this stage the machine is exactly at
//! "round 0": the state every subsequent round iterates from.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sophie_linalg::par;
use sophie_solve::OpCounts;

use super::state::{MachineState, PairState};
use super::{sync, SophieSolver};
use crate::backend::{MvmBackend, MvmUnit};

/// Builds the programmed machine for one run.
///
/// Unit programming stays serial: backends may hand out unit ids from a
/// shared counter, and the id ↔ pair mapping must not depend on timing.
/// The initial partial sums and spin-copy resets fan out across the worker
/// pool — one independent task per pair.
///
/// On return the per-pair tallies have been drained, so `ms.ops` is the
/// complete setup cost (the `ops_delta` of the round-0 `GlobalSync`
/// event).
///
/// # Panics
///
/// Panics if `initial_bits` has the wrong length.
pub(super) fn program<B: MvmBackend>(
    solver: &SophieSolver,
    backend: &B,
    seed: u64,
    initial_bits: Option<&[bool]>,
) -> MachineState<B::Unit> {
    let t = solver.grid.tile();
    let b = solver.grid.blocks();
    let mut ops = OpCounts::new();

    let mut states: Vec<PairState<B::Unit>> = solver
        .pairs
        .iter()
        .enumerate()
        .map(|(pi, &pair)| {
            let mut unit = backend.unit(t);
            unit.program(&solver.tiles[pi]);
            PairState::new(pair, pi, unit, t)
        })
        .collect();
    ops.tiles_programmed += solver.pairs.len() as u64;

    // Global spin state, padded; padding stays 0 and couples to nothing.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut global = vec![0.0_f32; solver.grid.padded_len()];
    match initial_bits {
        Some(bits) => {
            assert_eq!(bits.len(), solver.n, "initial state length mismatch");
            for (g, &bit) in global.iter_mut().zip(bits) {
                *g = if bit { 1.0 } else { 0.0 };
            }
        }
        None => {
            for g in global.iter_mut().take(solver.n) {
                *g = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
            }
        }
    }

    // Initial partial sums — every tile's contribution to its block row —
    // and private spin copies: one independent task per pair.
    {
        let global_ref: &[f32] = &global;
        par::for_each_chunk_mut(&mut states, solver.pairs.len(), |_, chunk| {
            for st in chunk {
                st.initial_partials(global_ref, t);
                st.reset_from_global(global_ref, t);
            }
        });
    }

    let mut ms = MachineState {
        states,
        global,
        offsets: vec![0.0_f32; b * b * t],
        ops,
    };
    sync::recompute_offsets(solver, &mut ms);
    ms.drain_pair_ops();
    ms
}
