//! Per-run mutable state shared by the engine's stages.
//!
//! [`MachineState`] is the "machine" the stages operate on: the programmed
//! MVM units with their private spin copies ([`PairState`]), the global
//! spin vector, the frozen offset vectors, and the run's operation tally.
//! The stage modules ([`super::program`], [`super::round`],
//! [`super::sync`], [`super::track`]) each mutate a well-defined slice of
//! it.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sophie_linalg::TilePair;
use sophie_solve::OpCounts;

use crate::backend::MvmUnit;

/// Everything one run mutates: pair states, the global spin vector, the
/// offset vectors frozen between synchronizations, and the operation
/// totals accumulated so far.
#[derive(Debug)]
pub(super) struct MachineState<U> {
    /// One entry per symmetric tile pair, in pair-list order.
    pub states: Vec<PairState<U>>,
    /// Global spin state, padded; padding stays 0 and couples to nothing.
    pub global: Vec<f32>,
    /// Per-logical-tile offset vectors (`b²·t` values): read-only during
    /// local iterations, regathered at every synchronization.
    pub offsets: Vec<f32>,
    /// Run-total operation counts. Serial stages add to this directly;
    /// per-pair tallies are folded in via [`MachineState::drain_pair_ops`].
    pub ops: OpCounts,
}

impl<U> MachineState<U> {
    /// Folds every pair's private tally into the run total, zeroing the
    /// per-pair counters.
    ///
    /// Called once per round (and once after setup) in fixed pair order;
    /// because `u64` addition is exact and commutative the final totals
    /// are identical to folding once at the end of the run, while the
    /// intermediate totals give the per-round deltas the observer layer
    /// reports.
    pub fn drain_pair_ops(&mut self) {
        for st in &mut self.states {
            let taken = std::mem::take(&mut st.ops);
            self.ops = self.ops.combined(&taken);
        }
    }
}

/// Per-pair mutable state: the pair's physical unit, private spin copies,
/// latest partial-sum segments, MVM scratch, and op tally.
///
/// During the local iterations of a round each selected pair's state is
/// mutated by exactly one pool task while all cross-pair inputs are frozen,
/// which is what makes the fan-out race-free without locks.
#[derive(Debug, Clone)]
pub(super) struct PairState<U> {
    pub pair: TilePair,
    /// Position in the solver's pair list (= the RNG sub-stream id).
    pub index: usize,
    pub unit: U,
    /// Copy of `x_col` — input of the primary tile `(row, col)`.
    pub primary: Vec<f32>,
    /// Copy of `x_row` — input of the partner tile `(col, row)`; empty for
    /// diagonal pairs.
    pub partner: Vec<f32>,
    /// Latest 8-bit partial sum produced by the primary tile.
    pub partial_primary: Vec<f32>,
    /// Latest 8-bit partial sum of the partner tile; empty for diagonals.
    pub partial_partner: Vec<f32>,
    /// MVM output scratch.
    pub y: Vec<f32>,
    /// Operations attributed to this pair since the last drain.
    pub ops: OpCounts,
    /// Set when the health monitor quarantined this pair (graceful
    /// degradation): it is skipped by round execution and its partial
    /// sums stay zeroed. Never set on non-fault-aware runs.
    pub disabled: bool,
}

impl<U> PairState<U> {
    /// Refreshes this pair's private spin copies from the global state.
    pub fn reset_from_global(&mut self, global: &[f32], t: usize) {
        match self.pair {
            TilePair::Diagonal(d) => {
                self.primary.copy_from_slice(&global[d * t..(d + 1) * t]);
            }
            TilePair::OffDiagonal { row, col } => {
                self.primary
                    .copy_from_slice(&global[col * t..(col + 1) * t]);
                self.partner
                    .copy_from_slice(&global[row * t..(row + 1) * t]);
            }
        }
    }
}

impl<U: MvmUnit> PairState<U> {
    pub fn new(pair: TilePair, index: usize, unit: U, t: usize) -> Self {
        let off = matches!(pair, TilePair::OffDiagonal { .. });
        PairState {
            pair,
            index,
            unit,
            primary: vec![0.0; t],
            partner: if off { vec![0.0; t] } else { Vec::new() },
            partial_primary: vec![0.0; t],
            partial_partner: if off { vec![0.0; t] } else { Vec::new() },
            y: vec![0.0; t],
            ops: OpCounts::new(),
            disabled: false,
        }
    }

    /// First 8-bit pass: this pair's tiles' contributions to their block
    /// rows at the initial global state (no noise, no thresholding).
    pub fn initial_partials(&mut self, global: &[f32], t: usize) {
        match self.pair {
            TilePair::Diagonal(d) => {
                self.unit.forward(&global[d * t..(d + 1) * t], &mut self.y);
                self.unit.quantize_8bit(&mut self.y);
                self.partial_primary.copy_from_slice(&self.y);
                self.ops.tile_mvms_8bit += 1;
                self.ops.adc_8bit_samples += t as u64;
                self.ops.eo_input_bits += t as u64;
            }
            TilePair::OffDiagonal { row, col } => {
                self.unit
                    .forward(&global[col * t..(col + 1) * t], &mut self.y);
                self.unit.quantize_8bit(&mut self.y);
                self.partial_primary.copy_from_slice(&self.y);
                self.unit
                    .transposed(&global[row * t..(row + 1) * t], &mut self.y);
                self.unit.quantize_8bit(&mut self.y);
                self.partial_partner.copy_from_slice(&self.y);
                self.ops.tile_mvms_8bit += 2;
                self.ops.adc_8bit_samples += 2 * t as u64;
                self.ops.eo_input_bits += 2 * t as u64;
            }
        }
    }
}

/// Flat index range of logical tile `(r, c)` in the `b²·t`-long offsets
/// buffer.
pub(super) fn vec_at(b: usize, t: usize, r: usize, c: usize) -> std::ops::Range<usize> {
    (r * b + c) * t..(r * b + c + 1) * t
}

/// Seed of the private noise stream used by pair `pair_index` during round
/// `round_index` (1-based; 0 is implicitly the serial setup stream of
/// `SmallRng::seed_from_u64(seed)`).
///
/// Derived purely from the job seed and the (round, pair) coordinates —
/// never from thread identity or execution order — which is what makes
/// engine traces bit-identical for every `SOPHIE_THREADS` setting. The
/// chained SplitMix64 finalizers decorrelate adjacent coordinates.
pub(super) fn noise_stream_seed(seed: u64, round_index: u64, pair_index: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    mix(mix(mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)) ^ round_index) ^ pair_index)
}

/// The pair's private noise RNG for one round.
pub(super) fn noise_rng(seed: u64, round_index: u64, pair_index: u64) -> SmallRng {
    SmallRng::seed_from_u64(noise_stream_seed(seed, round_index, pair_index))
}

/// Collects disjoint mutable borrows of the selected pair states.
///
/// `selected` must be sorted ascending and duplicate-free (the schedule
/// guarantees this); walking one `iter_mut` keeps the aliasing proof in
/// safe code.
pub(super) fn collect_selected<'a, U>(
    states: &'a mut [PairState<U>],
    selected: &[usize],
) -> Vec<&'a mut PairState<U>> {
    let mut out = Vec::with_capacity(selected.len());
    let mut iter = states.iter_mut().enumerate();
    for &want in selected {
        for (i, st) in iter.by_ref() {
            if i == want {
                out.push(st);
                break;
            }
        }
    }
    assert_eq!(
        out.len(),
        selected.len(),
        "selected pair indices must be sorted, unique, and in range"
    );
    out
}

/// Tallies the MVMs and ADC samples of one local pass over a pair.
pub(super) fn count_local_mvm(ops: &mut OpCounts, t: usize, last: bool, mvms: u64) {
    let samples = mvms * t as u64;
    if last {
        ops.tile_mvms_8bit += mvms;
        ops.adc_8bit_samples += samples;
    } else {
        ops.tile_mvms_1bit += mvms;
        ops.adc_1bit_samples += samples;
    }
    ops.eo_input_bits += samples;
    ops.noise_injections += samples;
}

/// Thresholds the first `n` (unpadded) entries of the global state into
/// bits.
pub(super) fn global_bits(global: &[f32], n: usize) -> Vec<bool> {
    global[..n].iter().map(|&x| x > 0.5).collect()
}
