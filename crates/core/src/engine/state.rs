//! Per-run mutable state shared by the engine's stages.
//!
//! [`MachineState`] is the "machine" the stages operate on: the programmed
//! MVM units with their private spin copies ([`PairState`]), the global
//! spin vector, the frozen offset vectors, the run's operation tally, and
//! the device-runtime pieces — the [`BufferPool`] holding every
//! device-visible buffer and the [`CommandQueue`] the stages submit typed
//! commands to. The stage modules ([`super::program`], [`super::round`],
//! [`super::sync`], [`super::track`]) each mutate a well-defined slice of
//! it; device work flows exclusively through the queue (see
//! [`super::dispatch`]).

use sophie_linalg::TilePair;
use sophie_solve::OpCounts;

use crate::queue::{BufferHandle, BufferPool, CommandQueue};

/// Everything one run mutates: pair states, the global spin vector, the
/// offset vectors frozen between synchronizations, the operation totals
/// accumulated so far, and the device runtime (buffer pool + command
/// queue).
#[derive(Debug)]
pub(super) struct MachineState<U> {
    /// One entry per symmetric tile pair, in pair-list order.
    pub states: Vec<PairState<U>>,
    /// Global spin state, padded; padding stays 0 and couples to nothing.
    pub global: Vec<f32>,
    /// Per-logical-tile offset vectors (`b²·t` values): read-only during
    /// local iterations, regathered at every synchronization.
    pub offsets: Vec<f32>,
    /// Run-total operation counts. Host-side stages add to this directly
    /// (each such addition is reported to the timeline as a host record);
    /// per-pair tallies fed by command completions are folded in via
    /// [`MachineState::drain_pair_ops`].
    pub ops: OpCounts,
    /// Every device-visible buffer of the run (spin copies, partial sums,
    /// MVM scratch), addressed by the handles in [`PairState`].
    pub pool: BufferPool,
    /// The device command queue all stages submit to.
    pub queue: CommandQueue,
}

impl<U> MachineState<U> {
    /// Folds every pair's private tally into the run total, zeroing the
    /// per-pair counters.
    ///
    /// Called once per round (and once after setup) in fixed pair order;
    /// because `u64` addition is exact and commutative the final totals
    /// are identical to folding once at the end of the run, while the
    /// intermediate totals give the per-round deltas the observer layer
    /// reports.
    pub fn drain_pair_ops(&mut self) {
        for st in &mut self.states {
            let taken = std::mem::take(&mut st.ops);
            self.ops = self.ops.combined(&taken);
        }
    }
}

/// Per-pair mutable state: the pair's physical unit, handles to its
/// private spin copies, latest partial-sum segments and MVM scratch in
/// the run's [`BufferPool`], and its op tally.
///
/// During a flush each unit's command chain is executed by exactly one
/// pool task, and a chain touches only its own unit and buffers — which
/// is what makes the fan-out race-free without locks.
#[derive(Debug)]
pub(super) struct PairState<U> {
    pub pair: TilePair,
    /// Position in the solver's pair list (= the unit lane index and the
    /// RNG sub-stream id).
    pub index: usize,
    pub unit: U,
    /// Copy of `x_col` — input of the primary tile `(row, col)`.
    pub primary: BufferHandle,
    /// Copy of `x_row` — input of the partner tile `(col, row)`;
    /// zero-length for diagonal pairs.
    pub partner: BufferHandle,
    /// Latest 8-bit partial sum produced by the primary tile.
    pub partial_primary: BufferHandle,
    /// Latest 8-bit partial sum of the partner tile; zero-length for
    /// diagonals.
    pub partial_partner: BufferHandle,
    /// MVM output scratch.
    pub y: BufferHandle,
    /// Operations attributed to this pair since the last drain — fed by
    /// the pair's command completions.
    pub ops: OpCounts,
    /// Set when the health monitor quarantined this pair (graceful
    /// degradation): it is skipped by round execution and its partial
    /// sums stay zeroed. Never set on non-fault-aware runs.
    pub disabled: bool,
}

impl<U> PairState<U> {
    pub fn new(pair: TilePair, index: usize, unit: U, t: usize, pool: &mut BufferPool) -> Self {
        let off = matches!(pair, TilePair::OffDiagonal { .. });
        let side = |off: bool| if off { t } else { 0 };
        PairState {
            pair,
            index,
            unit,
            primary: pool.alloc(t),
            partner: pool.alloc(side(off)),
            partial_primary: pool.alloc(t),
            partial_partner: pool.alloc(side(off)),
            y: pool.alloc(t),
            ops: OpCounts::new(),
            disabled: false,
        }
    }

    /// Refreshes this pair's private spin copies from the global state
    /// (pure host-side copies; no device commands).
    pub fn reset_from_global(&self, pool: &mut BufferPool, global: &[f32], t: usize) {
        match self.pair {
            TilePair::Diagonal(d) => {
                pool.get_mut(self.primary)
                    .copy_from_slice(&global[d * t..(d + 1) * t]);
            }
            TilePair::OffDiagonal { row, col } => {
                pool.get_mut(self.primary)
                    .copy_from_slice(&global[col * t..(col + 1) * t]);
                pool.get_mut(self.partner)
                    .copy_from_slice(&global[row * t..(row + 1) * t]);
            }
        }
    }
}

/// Thresholds the first `n` (unpadded) entries of the global state into
/// bits.
pub(super) fn global_bits(global: &[f32], n: usize) -> Vec<bool> {
    global[..n].iter().map(|&x| x > 0.5).collect()
}
