//! Results of a SOPHIE run.

use sophie_solve::OpCounts;

/// Outcome of one job executed by the tiled engine.
#[derive(Debug, Clone)]
pub struct SophieOutcome {
    /// Best cut value observed at any global synchronization point.
    pub best_cut: f64,
    /// Binary configuration attaining the best cut (unpadded, graph order).
    pub best_bits: Vec<bool>,
    /// Global iterations executed.
    pub global_iters_run: usize,
    /// First global iteration whose synchronized state reached the target
    /// cut, if a target was set and reached. Iteration `0` is the initial
    /// random state.
    pub global_iters_to_target: Option<usize>,
    /// Cut value after every global synchronization; `cut_trace[0]` is the
    /// initial random state, `cut_trace[g]` the state after global
    /// iteration `g`.
    pub cut_trace: Vec<f64>,
    /// Spins that changed at each global synchronization (Hamming distance
    /// between consecutive synchronized states) — the annealing "activity":
    /// high early, decaying as the system settles.
    pub activity_trace: Vec<usize>,
    /// Operation counts for the whole job (input to the PPA models).
    pub ops: OpCounts,
}

impl SophieOutcome {
    /// Total local iterations until the target was first met
    /// (`global_iters_to_target × local_iters`), the unit of Fig. 8.
    #[must_use]
    pub fn local_iters_to_target(&self, local_iters: usize) -> Option<usize> {
        self.global_iters_to_target.map(|g| g * local_iters)
    }

    /// Ratio of the best cut to a positive reference (best-known) cut.
    ///
    /// Quality ratios are only meaningful against a positive reference: a
    /// zero or negative `best_known` (or NaN) yields [`f64::NAN`] rather
    /// than a sign-flipped or infinite ratio, matching
    /// [`sophie_solve::SolveReport::quality_vs`].
    #[must_use]
    pub fn quality_vs(&self, best_known: f64) -> f64 {
        if best_known > 0.0 {
            self.best_cut / best_known
        } else {
            f64::NAN
        }
    }

    /// Signed gap `best_cut - reference`, defined for any finite
    /// reference including zero and negative values.
    ///
    /// Problem-domain targets are often feasibility thresholds at or
    /// below zero (a 0-conflict coloring, a 0-BER decode lowered through
    /// `sophie-problems`); [`Self::quality_vs`] deliberately returns NaN
    /// there, so those consumers use this variant and test the sign,
    /// matching [`sophie_solve::SolveReport::gap_vs`].
    #[must_use]
    pub fn gap_vs(&self, reference: f64) -> f64 {
        self.best_cut - reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SophieOutcome {
        SophieOutcome {
            best_cut: 95.0,
            best_bits: vec![true, false],
            global_iters_run: 10,
            global_iters_to_target: Some(4),
            cut_trace: vec![50.0, 80.0, 95.0],
            activity_trace: vec![40, 12],
            ops: OpCounts::default(),
        }
    }

    #[test]
    fn local_iterations_scale_with_l() {
        let o = sample();
        assert_eq!(o.local_iters_to_target(10), Some(40));
    }

    #[test]
    fn no_target_no_local_iterations() {
        let mut o = sample();
        o.global_iters_to_target = None;
        assert_eq!(o.local_iters_to_target(10), None);
    }

    #[test]
    fn quality_ratio() {
        let o = sample();
        assert!((o.quality_vs(100.0) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn quality_ratio_undefined_for_nonpositive_reference() {
        let o = sample();
        assert!(o.quality_vs(0.0).is_nan());
        assert!(o.quality_vs(-25.0).is_nan());
        assert!(o.quality_vs(f64::NAN).is_nan());
    }

    #[test]
    fn signed_gap_handles_feasibility_style_references() {
        let o = sample();
        assert!((o.gap_vs(0.0) - 95.0).abs() < 1e-12);
        assert!((o.gap_vs(-25.0) - 120.0).abs() < 1e-12);
        assert!((o.gap_vs(100.0) + 5.0).abs() < 1e-12);
    }
}
