//! Analytic (state-free) operation counting.
//!
//! The iteration schedule of the modified algorithm is fixed ahead of time
//! (§III-D) and the per-round work depends only on *which* pairs were
//! selected, never on spin values. So for performance/energy questions —
//! Table III's K16384/K32768 rows, Fig. 9's EDAP sweep — the operation
//! counts can be replayed from the schedule alone, without materializing a
//! 32768² coupling matrix or any spin state. [`analytic_op_counts`] produces
//! exactly the counts the engine would have tallied for the same schedule
//! seed (asserted by tests against real runs on small instances).

use sophie_linalg::{TileGrid, TilePair};

use crate::config::SophieConfig;
use crate::error::Result;
use crate::schedule::RoundGenerator;
use sophie_solve::OpCounts;

/// Replays the schedule for a problem of order `n` and returns the exact
/// operation counts of one job.
///
/// `schedule_seed` must match the seed handed to
/// [`crate::Schedule::generate`] for count-for-count equality with a real
/// run (engine runs derive it as `seed ^ 0x5c3a_11ed_0b57_aced`).
///
/// The reuse-model counters (`sparse_spin_flips`, `sparse_field_updates`,
/// `sparse_delta_macs`) depend on the spin dynamics and are left zero: a
/// schedule-only replay cannot know which spins flip.
///
/// # Errors
///
/// Returns configuration or tiling errors.
pub fn analytic_op_counts(n: usize, config: &SophieConfig, schedule_seed: u64) -> Result<OpCounts> {
    config.validate()?;
    let grid = TileGrid::new(n, config.tile_size)?;
    let b = grid.blocks() as u64;
    let t = grid.tile() as u64;
    let total_pairs = grid.blocks() * (grid.blocks() + 1) / 2;
    let off_pairs = total_pairs as u64 - b;
    let l = config.local_iters as u64;

    let mut ops = OpCounts::new();
    ops.tiles_programmed = total_pairs as u64;

    // Initial partial-sum pass: one 8-bit read per logical tile.
    let logical_tiles = b + 2 * off_pairs;
    ops.tile_mvms_8bit += logical_tiles;
    ops.adc_8bit_samples += logical_tiles * t;
    ops.eo_input_bits += logical_tiles * t;
    ops.glue_adds += 2 * b * b * t; // initial offset computation

    let mut gen = RoundGenerator::new(
        &grid,
        config.tile_fraction,
        config.stochastic_spin_update,
        schedule_seed,
    );
    let mut covered = vec![false; grid.blocks()];
    for _ in 0..config.global_iters {
        let round = gen.next_round();
        let mut diag_sel = 0u64;
        let mut off_sel = 0u64;
        covered.fill(false);
        for &pi in &round.pairs {
            match gen.pairs()[pi] {
                TilePair::Diagonal(d) => {
                    diag_sel += 1;
                    covered[d] = true;
                }
                TilePair::OffDiagonal { row, col } => {
                    off_sel += 1;
                    covered[row] = true;
                    covered[col] = true;
                }
            }
        }
        let lambda = diag_sel + 2 * off_sel; // logical tiles touched per pass

        ops.tile_mvms_8bit += lambda;
        ops.adc_8bit_samples += lambda * t;
        ops.tile_mvms_1bit += (l - 1) * lambda;
        ops.adc_1bit_samples += (l - 1) * lambda * t;
        ops.eo_input_bits += l * lambda * t;
        ops.noise_injections += l * lambda * t;

        let covered_cols = covered.iter().filter(|&&x| x).count() as u64;
        if !config.stochastic_spin_update {
            // Majority vote sums every fresh copy in each covered column.
            for (c, &cov) in covered.iter().enumerate() {
                if cov {
                    let votes = gen
                        .pairs()
                        .iter()
                        .enumerate()
                        .filter(|&(pi, p)| {
                            round.pairs.binary_search(&pi).is_ok()
                                && match *p {
                                    TilePair::Diagonal(d) => d == c,
                                    TilePair::OffDiagonal { row, col } => row == c || col == c,
                                }
                        })
                        .count() as u64;
                    ops.glue_adds += votes * t;
                }
            }
        }
        ops.spin_broadcast_bits += covered_cols * b * t;
        ops.partial_sum_bits += lambda * t * 8;
        ops.glue_adds += 2 * b * b * t;
        ops.global_syncs += 1;
        ops.pairs_executed += round.pairs.len() as u64;
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::IdealBackend;
    use crate::engine::SophieSolver;
    use crate::schedule::Schedule;
    use sophie_graph::generate::{gnm, WeightDist};

    fn config(tile: usize, frac: f64, giters: usize) -> SophieConfig {
        SophieConfig {
            tile_size: tile,
            local_iters: 4,
            global_iters: giters,
            tile_fraction: frac,
            phi: 0.2,
            alpha: 0.0,
            stochastic_spin_update: true,
            ..SophieConfig::default()
        }
    }

    /// The analytic replay must equal a real engine run count-for-count.
    fn check_matches_engine(n: usize, cfg: &SophieConfig, seed: u64) {
        let g = gnm(n, 3 * n, WeightDist::Unit, 17).unwrap();
        let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
        let schedule = Schedule::generate(
            solver.grid(),
            cfg.global_iters,
            cfg.tile_fraction,
            cfg.stochastic_spin_update,
            seed,
        );
        let run = solver
            .run_scheduled(&IdealBackend::new(), &g, &schedule, 99, None)
            .unwrap();
        let analytic = analytic_op_counts(n, cfg, seed).unwrap();
        // The reuse-model counters (`sparse_*`) depend on the spin
        // dynamics, which a schedule-only replay cannot know; the analytic
        // replay leaves them zero. Compare everything else exactly.
        let mut run_ops = run.ops;
        run_ops.sparse_spin_flips = 0;
        run_ops.sparse_field_updates = 0;
        run_ops.sparse_delta_macs = 0;
        assert_eq!(run_ops, analytic);
    }

    #[test]
    fn matches_engine_full_selection() {
        check_matches_engine(64, &config(16, 1.0, 8), 3);
    }

    #[test]
    fn matches_engine_half_selection() {
        check_matches_engine(80, &config(16, 0.5, 12), 5);
    }

    #[test]
    fn matches_engine_sparse_selection() {
        check_matches_engine(96, &config(16, 0.2, 10), 7);
    }

    #[test]
    fn matches_engine_majority_mode() {
        let cfg = SophieConfig {
            stochastic_spin_update: false,
            ..config(16, 0.6, 9)
        };
        check_matches_engine(72, &cfg, 11);
    }

    #[test]
    fn scales_to_k32768_shapes_quickly() {
        // The Table III workload: 32768 nodes, tile 64 → 512 blocks,
        // 131 328 pairs. Must run in well under a second per round set.
        let cfg = SophieConfig {
            global_iters: 5,
            ..config(64, 0.74, 5)
        };
        let ops = analytic_op_counts(32_768, &cfg, 1).unwrap();
        assert!(ops.total_tile_mvms() > 0);
        assert_eq!(ops.global_syncs, 5);
        assert_eq!(ops.tiles_programmed, 512 * 513 / 2);
    }

    #[test]
    fn halving_fraction_halves_compute() {
        let full = analytic_op_counts(1024, &config(64, 1.0, 20), 2).unwrap();
        let half = analytic_op_counts(1024, &config(64, 0.5, 20), 2).unwrap();
        let ratio = half.total_tile_mvms() as f64 / full.total_tile_mvms() as f64;
        assert!((0.4..=0.62).contains(&ratio), "ratio {ratio}");
        assert!(half.sync_traffic_bits() < full.sync_traffic_bits());
    }
}
