//! Batched job execution and aggregate statistics.
//!
//! The accelerator amortizes OPCM programming by running a *batch* of
//! independent jobs (different initial states, same coupling matrix)
//! between reprogramming passes (§III-E; Fig. 9 picks batch = 100). This
//! module runs such a batch through the functional engine and aggregates
//! the statistics the evaluation needs: mean/best quality and the
//! `T90`-style percentile of iterations-to-target that Table II reports.

use sophie_graph::Graph;
use sophie_solve::stats::{self, StatsError};

use crate::backend::{IdealBackend, MvmBackend};
use crate::engine::SophieSolver;
use crate::error::Result;
use crate::outcome::SophieOutcome;

/// Aggregate result of one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-job outcomes, in seed order.
    pub jobs: Vec<SophieOutcome>,
    /// Mean best cut across jobs.
    pub mean_cut: f64,
    /// Best cut across jobs.
    pub best_cut: f64,
    /// Jobs that reached the target (when one was set).
    pub converged: usize,
}

impl BatchOutcome {
    /// The `q`-quantile (0 ≤ q ≤ 1) of global-iterations-to-target, with
    /// non-converged jobs counted at `budget`. `q = 0.9` gives the T90
    /// statistic of Table II. Delegates to
    /// [`sophie_solve::stats::iters_to_target_quantile`].
    ///
    /// # Errors
    ///
    /// [`StatsError`] if the batch is empty or `q` is outside `[0, 1]`.
    pub fn iters_to_target_quantile(
        &self,
        q: f64,
        budget: usize,
    ) -> std::result::Result<usize, StatsError> {
        stats::iters_to_target_quantile(
            self.jobs.iter().map(|j| j.global_iters_to_target),
            q,
            budget,
        )
    }

    /// Fraction of jobs that reached the target.
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        self.converged as f64 / self.jobs.len().max(1) as f64
    }
}

/// Runs `batch` jobs with seeds `0..batch` on the given backend,
/// parallelized across worker threads.
///
/// # Errors
///
/// Propagates engine errors (none after successful construction).
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn run_batch<B: MvmBackend + Sync>(
    solver: &SophieSolver,
    backend: &B,
    graph: &Graph,
    batch: usize,
    target_cut: Option<f64>,
) -> Result<BatchOutcome> {
    assert!(batch > 0, "batch must contain at least one job");
    let jobs: Vec<SophieOutcome> = sophie_linalg::par::parallel_map(batch, |seed| {
        solver
            .run_with_backend(backend, graph, seed as u64, target_cut)
            .expect("engine runs are infallible after construction")
    });
    let mean_cut = jobs.iter().map(|j| j.best_cut).sum::<f64>() / batch as f64;
    let best_cut = jobs
        .iter()
        .map(|j| j.best_cut)
        .fold(f64::NEG_INFINITY, f64::max);
    let converged = jobs
        .iter()
        .filter(|j| j.global_iters_to_target.is_some())
        .count();
    Ok(BatchOutcome {
        jobs,
        mean_cut,
        best_cut,
        converged,
    })
}

/// Convenience wrapper over [`run_batch`] with the exact floating-point
/// backend.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_batch_ideal(
    solver: &SophieSolver,
    graph: &Graph,
    batch: usize,
    target_cut: Option<f64>,
) -> Result<BatchOutcome> {
    run_batch(solver, &IdealBackend::new(), graph, batch, target_cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SophieConfig;
    use sophie_graph::generate::{complete, WeightDist};

    fn solver_and_graph() -> (SophieSolver, Graph) {
        let g = complete(24, WeightDist::Unit, 3).unwrap();
        let cfg = SophieConfig {
            tile_size: 8,
            global_iters: 60,
            phi: 0.1,
            ..SophieConfig::default()
        };
        (SophieSolver::from_graph(&g, cfg).unwrap(), g)
    }

    #[test]
    fn batch_aggregates_are_consistent() {
        let (solver, g) = solver_and_graph();
        let out = run_batch_ideal(&solver, &g, 6, None).unwrap();
        assert_eq!(out.jobs.len(), 6);
        assert!(out.best_cut >= out.mean_cut);
        let manual_mean = out.jobs.iter().map(|j| j.best_cut).sum::<f64>() / 6.0;
        assert!((out.mean_cut - manual_mean).abs() < 1e-12);
    }

    #[test]
    fn t90_counts_nonconverged_at_budget() {
        let (solver, g) = solver_and_graph();
        // Impossible target: nothing converges, quantile = budget.
        let out = run_batch_ideal(&solver, &g, 5, Some(1e9)).unwrap();
        assert_eq!(out.converged, 0);
        assert_eq!(out.convergence_rate(), 0.0);
        assert_eq!(out.iters_to_target_quantile(0.9, 60).unwrap(), 60);
    }

    #[test]
    fn easy_target_converges_quickly() {
        let (solver, g) = solver_and_graph();
        // K24 optimum is 144; 100 is easy.
        let out = run_batch_ideal(&solver, &g, 5, Some(100.0)).unwrap();
        assert!(out.converged >= 4, "converged {}", out.converged);
        assert!(out.iters_to_target_quantile(0.9, 60).unwrap() < 60);
        let t50 = out.iters_to_target_quantile(0.5, 60).unwrap();
        let t90 = out.iters_to_target_quantile(0.9, 60).unwrap();
        assert!(t50 <= t90);
    }

    #[test]
    fn jobs_are_seed_deterministic() {
        let (solver, g) = solver_and_graph();
        let a = run_batch_ideal(&solver, &g, 3, None).unwrap();
        let b = run_batch_ideal(&solver, &g, 3, None).unwrap();
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.best_cut, y.best_cut);
        }
    }

    #[test]
    fn rejects_bad_quantile_with_typed_error() {
        let (solver, g) = solver_and_graph();
        let out = run_batch_ideal(&solver, &g, 2, None).unwrap();
        assert_eq!(
            out.iters_to_target_quantile(1.5, 10),
            Err(StatsError::BadQuantile { q: 1.5 })
        );
    }
}
