//! Health monitoring and fault-recovery configuration.
//!
//! A fault-aware run (see [`crate::SophieSolver::run_fault_aware`])
//! interleaves cheap calibration MVMs with the solve: every
//! [`HealthConfig::check_interval`] rounds the engine sends a known probe
//! vector through each pair's physical unit, compares the result against
//! the exact tile product, and flags the unit when the relative residual
//! exceeds [`HealthConfig::threshold`]. What happens next is the
//! [`RecoveryPolicy`]: reprogram the array and retry, remap the pair onto
//! a spare array, or quarantine it (graceful degradation). Every probe and
//! reprogram is tallied in [`sophie_solve::OpCounts`]
//! (`probe_mvms`, `recovery_reprograms`, …) so the `sophie-hw` cost models
//! charge recovered runs their honest energy/time overhead.

use crate::error::{Result, SophieError};

/// What the runtime does after a calibration probe flags a faulty unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RecoveryPolicy {
    /// Report `FaultDetected` events but never intervene — the
    /// measurement baseline for the robustness sweeps.
    DetectOnly,
    /// Reprogram the array in place (an OPCM write of the intended tile)
    /// and re-probe, up to `max_attempts` times. Clears drift, droop, and
    /// dropout; cannot clear stuck cells.
    Reprogram {
        /// Maximum reprogram attempts per detection (≥ 1).
        max_attempts: u32,
    },
    /// Reprogram up to `reprogram_attempts` times, then — if the unit is
    /// still faulty — remap the pair onto a fresh spare array (the only
    /// cure for stuck cells). At most `max_spares` remaps per run.
    Remap {
        /// Reprogram attempts before reaching for a spare (may be 0).
        reprogram_attempts: u32,
        /// Spare physical arrays available for the whole run (≥ 1).
        max_spares: usize,
    },
    /// Reprogram up to `reprogram_attempts` times, then quarantine the
    /// pair: zero its partial-sum contribution and stop scheduling it.
    /// The machine keeps solving at reduced precision instead of running
    /// spins through a faulty unit.
    Quarantine {
        /// Reprogram attempts before quarantining (may be 0).
        reprogram_attempts: u32,
    },
}

/// Configuration of the runtime health monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HealthConfig {
    /// Probe every pair after each `check_interval`-th round (≥ 1; 1
    /// probes after every global synchronization).
    pub check_interval: usize,
    /// Relative probe-residual threshold above which a unit is declared
    /// faulty. Healthy 6-bit OPCM units with default read noise sit below
    /// ~0.05, so the default 0.15 keeps false positives rare while
    /// catching droop, dropout, stuck cells, and accumulated drift.
    pub threshold: f64,
    /// What to do about a detected fault.
    pub policy: RecoveryPolicy,
    /// Seed of the deterministic per-pair probe vectors (independent of
    /// the job seed so probing never perturbs the solve's noise streams).
    pub probe_seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            check_interval: 1,
            threshold: 0.15,
            policy: RecoveryPolicy::Reprogram { max_attempts: 3 },
            probe_seed: 0x5EA1_7B0B,
        }
    }
}

impl HealthConfig {
    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`SophieError::BadConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<()> {
        if self.check_interval == 0 {
            return Err(SophieError::BadConfig {
                field: "check_interval",
                message: "must be positive".into(),
            });
        }
        if !(self.threshold > 0.0 && self.threshold.is_finite()) {
            return Err(SophieError::BadConfig {
                field: "threshold",
                message: format!("must be positive and finite, got {}", self.threshold),
            });
        }
        match self.policy {
            RecoveryPolicy::Reprogram { max_attempts: 0 } => Err(SophieError::BadConfig {
                field: "policy",
                message: "Reprogram.max_attempts must be positive".into(),
            }),
            RecoveryPolicy::Remap { max_spares: 0, .. } => Err(SophieError::BadConfig {
                field: "policy",
                message: "Remap.max_spares must be positive".into(),
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(HealthConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_zero_interval() {
        let c = HealthConfig {
            check_interval: 0,
            ..HealthConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SophieError::BadConfig {
                field: "check_interval",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_threshold() {
        for bad in [0.0, -0.1, f64::NAN, f64::INFINITY] {
            let c = HealthConfig {
                threshold: bad,
                ..HealthConfig::default()
            };
            assert!(c.validate().is_err(), "threshold {bad} should be rejected");
        }
    }

    #[test]
    fn rejects_zero_attempt_budgets() {
        let c = HealthConfig {
            policy: RecoveryPolicy::Reprogram { max_attempts: 0 },
            ..HealthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = HealthConfig {
            policy: RecoveryPolicy::Remap {
                reprogram_attempts: 1,
                max_spares: 0,
            },
            ..HealthConfig::default()
        };
        assert!(c.validate().is_err());
        // Zero reprogram attempts are fine when a spare or quarantine
        // backstop exists.
        let c = HealthConfig {
            policy: RecoveryPolicy::Quarantine {
                reprogram_attempts: 0,
            },
            ..HealthConfig::default()
        };
        assert!(c.validate().is_ok());
    }
}
