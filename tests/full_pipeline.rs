//! Integration tests spanning every crate: graph generation →
//! preprocessing → tiled engine → hardware backend → PPA models.

use sophie::core::{SophieConfig, SophieSolver};
use sophie::graph::cut::cut_value_binary;
use sophie::graph::generate::{gnm, WeightDist};
use sophie::hw::arch::MachineConfig;
use sophie::hw::cost::{edap, params::CostParams, workload::WorkloadSummary};
use sophie::hw::device::opcm::OpcmCellSpec;
use sophie::hw::OpcmBackend;

fn config(giters: usize) -> SophieConfig {
    SophieConfig {
        tile_size: 32,
        local_iters: 10,
        global_iters: giters,
        tile_fraction: 0.75,
        phi: 0.1,
        alpha: 0.0,
        stochastic_spin_update: true,
        ..SophieConfig::default()
    }
}

#[test]
fn graph_to_ppa_pipeline_runs_end_to_end() {
    // 1. Workload.
    let graph = gnm(200, 1200, WeightDist::Unit, 13).unwrap();
    let cfg = config(40);

    // 2. Functional run on the hardware backend.
    let solver = SophieSolver::from_graph(&graph, cfg.clone()).unwrap();
    let backend = OpcmBackend::default();
    let out = solver.run_with_backend(&backend, &graph, 5, None).unwrap();
    assert!(out.best_cut > 600.0 * 0.55, "cut {}", out.best_cut);
    assert_eq!(cut_value_binary(&graph, &out.best_bits), out.best_cut);

    // 3. Operation counts feed the PPA models.
    let w = WorkloadSummary::from_ops(200, &cfg, &out.ops, 10);
    let machine = MachineConfig::sophie_default(1);
    let ppa = edap::evaluate(
        &machine,
        &CostParams::default(),
        &OpcmCellSpec::default(),
        &w,
        &out.ops,
        8,
    )
    .unwrap();
    assert!(ppa.timing.per_job_s > 0.0 && ppa.timing.per_job_s.is_finite());
    assert!(ppa.energy.total_j() > 0.0);
    assert!(ppa.area.total_mm2() > 100.0);
    assert!(ppa.edap().is_finite());
}

#[test]
fn engine_quality_tracks_pris_quality() {
    // The tiled engine approximates PRIS; on a mid-size sparse graph their
    // best cuts should be within a few percent of each other.
    let graph = gnm(160, 800, WeightDist::Unit, 21).unwrap();
    let pris = sophie::pris::runner::solve_max_cut(
        &graph,
        0.0,
        &sophie::pris::RunConfig {
            iterations: 600,
            phi: 0.1,
            seed: 3,
            target_cut: None,
        },
    )
    .unwrap();
    let solver = SophieSolver::from_graph(&graph, config(60)).unwrap();
    let tiled = solver.run(&graph, 3, None).unwrap();
    assert!(
        tiled.best_cut >= 0.9 * pris.best_cut,
        "tiled {} vs pris {}",
        tiled.best_cut,
        pris.best_cut
    );
}

#[test]
fn gset_io_round_trips_through_the_solver() {
    let graph = gnm(96, 400, WeightDist::PlusMinusOne, 2).unwrap();
    let text = sophie::graph::io::format_graph(&graph);
    let parsed = sophie::graph::io::parse_graph(&text).unwrap();
    let solver = SophieSolver::from_graph(&parsed, config(30)).unwrap();
    let out = solver.run(&parsed, 1, None).unwrap();
    assert_eq!(cut_value_binary(&parsed, &out.best_bits), out.best_cut);
}

#[test]
fn analytic_counts_predict_engine_counts_across_crates() {
    let graph = gnm(128, 700, WeightDist::Unit, 9).unwrap();
    let cfg = config(15);
    let solver = SophieSolver::from_graph(&graph, cfg.clone()).unwrap();
    let schedule = sophie::core::Schedule::generate(
        solver.grid(),
        cfg.global_iters,
        cfg.tile_fraction,
        cfg.stochastic_spin_update,
        77,
    );
    let out = solver
        .run_scheduled(
            &sophie::core::backend::IdealBackend::new(),
            &graph,
            &schedule,
            1,
            None,
        )
        .unwrap();
    let analytic = sophie::core::analytic::analytic_op_counts(128, &cfg, 77).unwrap();
    // Reuse-model counters are dynamics-dependent and stay zero in the
    // schedule-only analytic replay (see `analytic_op_counts`).
    let mut measured = out.ops;
    measured.sparse_spin_flips = 0;
    measured.sparse_field_updates = 0;
    measured.sparse_delta_macs = 0;
    assert_eq!(measured, analytic);
}
