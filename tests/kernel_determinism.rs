//! Kernel-choice independence of solver results.
//!
//! The kernel stack's determinism contract (see `sophie-linalg`'s
//! `kernel` module docs) promises that every kernel variant accumulates
//! in the same canonical order, so picking a different variant — by env
//! override, config knob, or autotuner — can never change a single bit
//! of solver output. This golden test pins that promise at the level
//! users observe it: the *entire* solve-event stream must be
//! byte-identical under `SOPHIE_KERNEL=scalar` and every tuned variant,
//! at every `SOPHIE_THREADS` value, in both compute modes.

use std::sync::Mutex;

use sophie::core::observe::EventLog;
use sophie::core::{ComputeMode, SophieConfig, SophieSolver};
use sophie::graph::generate::{gnm, WeightDist};
use sophie::graph::Graph;

/// `SOPHIE_KERNEL`/`SOPHIE_THREADS` are process-global; serialize access.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<T>(kernel: &str, threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("SOPHIE_KERNEL", kernel);
    std::env::set_var("SOPHIE_THREADS", threads);
    let out = f();
    std::env::remove_var("SOPHIE_KERNEL");
    std::env::remove_var("SOPHIE_THREADS");
    out
}

/// n=100 at tile 64 gives a 2×2 grid whose edge tiles are trimmed to 36
/// used rows/columns — the stream only stays identical if the trimmed
/// fringe path is exact in every variant too.
fn test_instance(compute: ComputeMode) -> (Graph, SophieSolver) {
    let g = gnm(100, 800, WeightDist::UniformInt { lo: -3, hi: 3 }, 5).unwrap();
    let cfg = SophieConfig {
        tile_size: 64,
        local_iters: 4,
        global_iters: 25,
        tile_fraction: 0.7,
        phi: 0.25,
        alpha: 0.1,
        compute,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    (g, solver)
}

/// One observed run, returning the whole event stream rendered to JSONL
/// (byte comparison catches any divergence) plus the best cut.
fn run_stream(solver: &SophieSolver, g: &Graph, kernel: &str, threads: &str) -> (String, f64) {
    with_env(kernel, threads, || {
        let mut log = EventLog::new();
        let outcome = solver.run_observed(g, 42, None, &mut log).unwrap();
        let jsonl: Vec<String> = log.events().iter().map(|e| e.to_json()).collect();
        (jsonl.join("\n"), outcome.best_cut)
    })
}

#[test]
fn event_streams_are_byte_identical_across_kernels_and_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Keep the autotuner's cache file out of the real host cache.
    let cache_dir = std::env::temp_dir().join(format!("sophie-kd-{}", std::process::id()));
    std::env::set_var(
        "SOPHIE_KERNEL_CACHE",
        cache_dir.join("kernel-tune").as_os_str(),
    );

    for compute in [ComputeMode::Dense, ComputeMode::Sparse] {
        let (g, solver) = test_instance(compute);
        let (golden, golden_cut) = run_stream(&solver, &g, "scalar", "1");
        assert!(
            golden.contains("round_start"),
            "the run must actually emit events"
        );
        for kernel in ["scalar", "axpy", "b8u4", "b32u2", "auto"] {
            for threads in ["1", "4"] {
                let (stream, cut) = run_stream(&solver, &g, kernel, threads);
                assert_eq!(
                    golden, stream,
                    "stream diverged: compute {compute:?}, kernel {kernel}, threads {threads}"
                );
                assert_eq!(golden_cut, cut);
            }
        }
    }

    std::env::remove_var("SOPHIE_KERNEL_CACHE");
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn dense_and_sparse_streams_agree_under_a_tuned_kernel() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, dense) = test_instance(ComputeMode::Dense);
    let (_, sparse) = test_instance(ComputeMode::Sparse);
    let (a, _) = run_stream(&dense, &g, "b32u2", "1");
    let (b, _) = run_stream(&sparse, &g, "b32u2", "4");
    assert_eq!(a, b, "compute-mode contract must hold per kernel choice");
}
