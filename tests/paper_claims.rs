//! Tests pinning the paper's qualitative claims at reduced scale.

use sophie::baselines::{best_known_cut, Effort};
use sophie::core::{SophieConfig, SophieSolver};
use sophie::graph::generate::{gnm, WeightDist};
use sophie::linalg::TileGrid;

fn base_config() -> SophieConfig {
    SophieConfig {
        tile_size: 16,
        local_iters: 10,
        global_iters: 80,
        tile_fraction: 1.0,
        phi: 0.1,
        alpha: 0.0,
        stochastic_spin_update: true,
        ..SophieConfig::default()
    }
}

/// Claim (§III-D, Conclusion): symmetric tile mapping saves ≈½ the OPCM
/// array area.
#[test]
fn symmetric_mapping_halves_physical_arrays() {
    for n in [512usize, 1024, 2048] {
        let grid = TileGrid::new(n, 64).unwrap();
        let logical = grid.logical_tiles();
        let physical = grid.symmetric_pairs().len();
        let saving = logical as f64 / physical as f64;
        assert!(
            (1.75..=2.0).contains(&saving),
            "n={n}: saving {saving}× should approach 2×"
        );
    }
}

/// Claim (Abstract, §IV): stochastic global iteration removes 25–50 % of
/// computation and synchronization traffic at 50–75 % tile selection.
#[test]
fn stochastic_selection_cuts_25_to_50_percent_of_work() {
    let cfg_full = base_config();
    let cfg_half = SophieConfig {
        tile_fraction: 0.5,
        ..base_config()
    };
    let cfg_75 = SophieConfig {
        tile_fraction: 0.75,
        ..base_config()
    };
    let full = sophie::core::analytic::analytic_op_counts(512, &cfg_full, 1).unwrap();
    let half = sophie::core::analytic::analytic_op_counts(512, &cfg_half, 1).unwrap();
    let sel75 = sophie::core::analytic::analytic_op_counts(512, &cfg_75, 1).unwrap();

    let ratio_half = half.total_tile_mvms() as f64 / full.total_tile_mvms() as f64;
    let ratio_75 = sel75.total_tile_mvms() as f64 / full.total_tile_mvms() as f64;
    assert!(
        (0.45..0.60).contains(&ratio_half),
        "50% selection → {ratio_half}"
    );
    assert!(
        (0.70..0.85).contains(&ratio_75),
        "75% selection → {ratio_75}"
    );
    assert!(half.sync_traffic_bits() < full.sync_traffic_bits());
}

/// Claim (Fig. 7): reducing the selected fraction degrades quality only
/// mildly (within ~10 % of the best-known solution at the same budget).
#[test]
fn quality_degrades_mildly_with_fewer_tiles() {
    let graph = gnm(192, 1000, WeightDist::Unit, 4).unwrap();
    let reference = best_known_cut(&graph, Effort::Quick);

    let quality = |fraction: f64| {
        let cfg = SophieConfig {
            tile_fraction: fraction,
            ..base_config()
        };
        let solver = SophieSolver::from_graph(&graph, cfg).unwrap();
        let mut best: f64 = 0.0;
        for seed in 0..3 {
            best = best.max(solver.run(&graph, seed, None).unwrap().best_cut);
        }
        best / reference
    };

    let full = quality(1.0);
    let half = quality(0.5);
    assert!(full > 0.85, "full selection quality {full}");
    assert!(
        half > full - 0.12,
        "half selection quality {half} vs {full}"
    );
}

/// Claim (Fig. 8 trend): more local iterations per global iteration (less
/// synchronization) needs more total iterations to converge.
#[test]
fn skipping_synchronization_slows_convergence() {
    let graph = gnm(160, 900, WeightDist::Unit, 8).unwrap();
    let reference = best_known_cut(&graph, Effort::Quick);
    let target = 0.9 * reference;

    let avg_local_iters_to_target = |local: usize| {
        let cfg = SophieConfig {
            local_iters: local,
            global_iters: 3000 / local, // same total local-iteration budget
            ..base_config()
        };
        let solver = SophieSolver::from_graph(&graph, cfg).unwrap();
        let mut total = 0.0;
        let mut hits = 0u32;
        for seed in 0..4 {
            let out = solver.run(&graph, seed, Some(target)).unwrap();
            if let Some(g) = out.global_iters_to_target {
                total += (g * local) as f64;
                hits += 1;
            }
        }
        (
            hits,
            if hits > 0 {
                total / f64::from(hits)
            } else {
                f64::INFINITY
            },
        )
    };

    let (hits_tight, iters_tight) = avg_local_iters_to_target(2);
    let (hits_loose, iters_loose) = avg_local_iters_to_target(30);
    assert!(hits_tight >= 3, "frequent sync should converge reliably");
    // Less frequent synchronization must not make convergence *faster*
    // in local-iteration terms (the paper's upper-left-corner effect).
    if hits_loose > 0 {
        assert!(
            iters_loose >= 0.8 * iters_tight,
            "loose sync {iters_loose} vs tight {iters_tight}"
        );
    }
}

/// Claim (§IV-B, Fig. 6): a moderate positive φ beats both the noiseless
/// and the very noisy regimes.
#[test]
fn moderate_noise_is_optimal() {
    let graph = gnm(128, 640, WeightDist::Unit, 6).unwrap();
    let quality = |phi: f64| {
        let cfg = SophieConfig {
            phi,
            ..base_config()
        };
        let solver = SophieSolver::from_graph(&graph, cfg).unwrap();
        (0..3)
            .map(|seed| solver.run(&graph, seed, None).unwrap().best_cut)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let none = quality(0.0);
    let moderate = quality(0.08);
    let heavy = quality(1.5);
    assert!(
        moderate > none,
        "noise should help escape: {moderate} vs {none}"
    );
    assert!(
        moderate > heavy,
        "too much noise should hurt: {moderate} vs {heavy}"
    );
}
