//! Cooperative-cancellation regression tests across the solver family.
//!
//! Every solver polls [`SolveJob::should_stop`] once per iteration, so a
//! [`CancelToken`] fired mid-run must stop the run within one iteration of
//! the firing point — and because the firing point here is defined by the
//! event stream (cancel at the K-th `GlobalSync`), the stream up to the
//! stop point must be byte-identical no matter what `SOPHIE_THREADS` is.

use std::sync::{Arc, Mutex};

use sophie::baselines::{BlsConfig, PtConfig, SaConfig, SbConfig};
use sophie::core::SophieConfig;
use sophie::graph::generate::presets::k_graph;
use sophie::hw::OpcmBackendConfig;
use sophie::pris::PrisJobConfig;
use sophie::solve::{
    run_batch, BatchJob, BatchOptions, CancelToken, FnObserver, NullObserver, SolveEvent, SolveJob,
    Solver, SolverRegistry,
};

/// `SOPHIE_THREADS` is process-global; serialize the tests that set it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("SOPHIE_THREADS", threads);
    let out = f();
    std::env::remove_var("SOPHIE_THREADS");
    out
}

/// Every registered solver, configured for a planned run long enough that
/// a cancellation at the third sync is unambiguously "early".
fn all_solvers(registry: &SolverRegistry) -> Vec<(&'static str, Arc<dyn Solver>)> {
    let sophie_cfg = SophieConfig {
        tile_size: 16,
        local_iters: 2,
        global_iters: 60,
        ..SophieConfig::default()
    };
    vec![
        (
            "sa",
            registry
                .build(
                    "sa",
                    &SaConfig {
                        sweeps: 80,
                        ..SaConfig::default()
                    },
                )
                .unwrap(),
        ),
        (
            "sb",
            registry
                .build(
                    "sb",
                    &SbConfig {
                        steps: 80,
                        ..SbConfig::default()
                    },
                )
                .unwrap(),
        ),
        (
            "pt",
            registry
                .build(
                    "pt",
                    &PtConfig {
                        replicas: 3,
                        exchanges: 60,
                        sweeps_per_exchange: 1,
                        ..PtConfig::default()
                    },
                )
                .unwrap(),
        ),
        (
            "bls",
            registry
                .build(
                    "bls",
                    &BlsConfig {
                        rounds: 60,
                        perturbation: 4,
                        ..BlsConfig::default()
                    },
                )
                .unwrap(),
        ),
        (
            "pris",
            registry
                .build(
                    "pris",
                    &PrisJobConfig {
                        iterations: 80,
                        ..PrisJobConfig::default()
                    },
                )
                .unwrap(),
        ),
        (
            "sophie",
            registry.build("sophie", &sophie_cfg.clone()).unwrap(),
        ),
        (
            "sophie-opcm",
            registry
                .build("sophie-opcm", &(sophie_cfg, OpcmBackendConfig::default()))
                .unwrap(),
        ),
    ]
}

/// Cancel at the `GlobalSync` whose round is `cancel_round`; a compliant
/// solver finishes at most the iteration in flight and winds down.
const CANCEL_ROUND: usize = 2;

fn run_cancelled_at_sync(
    solver: &Arc<dyn Solver>,
    graph: &Arc<sophie::graph::Graph>,
) -> (sophie::solve::SolveReport, Vec<String>) {
    let token = CancelToken::new();
    let trigger = token.clone();
    let mut lines = Vec::new();
    let mut observer = FnObserver::new(|event: &SolveEvent| {
        lines.push(event.to_json());
        if matches!(event, SolveEvent::GlobalSync { round, .. } if *round == CANCEL_ROUND) {
            trigger.cancel();
        }
    });
    let job = SolveJob::new(Arc::clone(graph), 7).with_cancel(token);
    let report = solver.solve(&job, &mut observer).unwrap();
    (report, lines)
}

#[test]
fn every_solver_stops_within_one_iteration_of_cancellation() {
    let registry = sophie::default_registry();
    let graph = Arc::new(k_graph(24, 1).unwrap());
    for (name, solver) in all_solvers(&registry) {
        let (report, lines) = run_cancelled_at_sync(&solver, &graph);
        assert!(
            report.iterations_run < report.planned_iterations,
            "{name}: cancelled run must stop early ({} of {})",
            report.iterations_run,
            report.planned_iterations
        );
        assert!(
            report.iterations_run <= CANCEL_ROUND + 1,
            "{name}: must stop within one iteration of the cancel \
             (ran {}, cancelled at sync {CANCEL_ROUND})",
            report.iterations_run,
        );
        // The stream still winds down cleanly.
        assert!(
            lines.last().is_some_and(|l| l.contains("run_finished")),
            "{name}: cancelled stream must close with run_finished"
        );
    }
}

#[test]
fn pre_cancelled_token_stops_within_the_first_iteration() {
    let registry = sophie::default_registry();
    let graph = Arc::new(k_graph(24, 1).unwrap());
    let token = CancelToken::new();
    token.cancel();
    for (name, solver) in all_solvers(&registry) {
        let job = SolveJob::new(Arc::clone(&graph), 7).with_cancel(token.clone());
        let report = solver.solve(&job, &mut NullObserver).unwrap();
        // The cooperative contract is "stop within one iteration": most
        // solvers poll before the first one (0 runs), BLS documents that
        // its first descent always executes (1 run).
        assert!(
            report.iterations_run <= 1,
            "{name}: a pre-cancelled job ran {} iterations",
            report.iterations_run
        );
    }
}

#[test]
fn cancelled_event_stream_is_byte_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let registry = sophie::default_registry();
    let graph = Arc::new(k_graph(32, 1).unwrap());
    for (name, solver) in all_solvers(&registry) {
        let serial = with_threads("1", || run_cancelled_at_sync(&solver, &graph));
        let four = with_threads("4", || run_cancelled_at_sync(&solver, &graph));
        assert!(!serial.1.is_empty(), "{name}: stream must not be empty");
        assert_eq!(
            serial.1, four.1,
            "{name}: cancelled stream must not depend on SOPHIE_THREADS"
        );
        assert_eq!(
            serial.0.iterations_run, four.0.iterations_run,
            "{name}: cancelled iteration count must not depend on SOPHIE_THREADS"
        );
    }
}

#[test]
fn shared_token_fired_mid_batch_stops_every_job() {
    let registry = sophie::default_registry();
    let graph = Arc::new(k_graph(24, 1).unwrap());
    let token = CancelToken::new();

    // Every job plans far more work than can finish before the cancel; a
    // counter observer fires the shared token once each job has reported
    // its first sync, so every solver is provably mid-run when it fires.
    let long: Vec<(&str, Arc<dyn Solver>)> = vec![
        (
            "sa",
            registry
                .build(
                    "sa",
                    &SaConfig {
                        sweeps: 50_000_000,
                        ..SaConfig::default()
                    },
                )
                .unwrap(),
        ),
        (
            "pris",
            registry
                .build(
                    "pris",
                    &PrisJobConfig {
                        iterations: 50_000_000,
                        ..PrisJobConfig::default()
                    },
                )
                .unwrap(),
        ),
        (
            "sophie",
            registry
                .build(
                    "sophie",
                    &SophieConfig {
                        tile_size: 16,
                        local_iters: 2,
                        global_iters: 50_000_000,
                        ..SophieConfig::default()
                    },
                )
                .unwrap(),
        ),
    ];
    // A deadline backstop: if cancellation were broken these jobs would
    // run for minutes; the time limit turns that bug into a fast failure.
    let budget = sophie::solve::JobBudget {
        max_iterations: None,
        time_limit: Some(std::time::Duration::from_secs(30)),
    };
    let jobs: Vec<BatchJob> = long
        .iter()
        .map(|(_, solver)| {
            BatchJob::new(
                Arc::clone(solver),
                SolveJob::new(Arc::clone(&graph), 3)
                    .with_budget(budget)
                    .with_cancel(token.clone()),
            )
        })
        .collect();
    let watcher = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(200));
            token.cancel();
        })
    };
    let batch = run_batch(&jobs, &BatchOptions::default()).unwrap();
    watcher.join().unwrap();
    assert_eq!(batch.reports.len(), long.len());
    for ((name, _), report) in long.iter().zip(&batch.reports) {
        assert!(
            report.iterations_run < report.planned_iterations,
            "{name}: shared cancel must stop the job early ({} of {})",
            report.iterations_run,
            report.planned_iterations
        );
    }
}
