//! Registry + scheduler integration tests across the whole solver family.
//!
//! Three contracts are pinned here, at the facade level, against every
//! solver in [`sophie::default_registry`]:
//!
//! 1. **Constructibility** — each of the seven configurations builds by
//!    name from its typed config and runs through the batch scheduler.
//! 2. **Stream fidelity** — `Solver::solve` emits an event stream
//!    byte-identical to the solver's legacy `*_observed` entry point, at
//!    `SOPHIE_THREADS` 1 *and* 4 (the trait adapters reuse the legacy
//!    loops through a tee, so any divergence is a regression).
//! 3. **Batch determinism** — a heterogeneous SOPHIE + SA batch produces
//!    bit-identical reports regardless of the worker-pool width.

use std::sync::{Arc, Mutex};

use sophie::baselines::{BlsConfig, PtConfig, SaConfig, SbConfig};
use sophie::core::{SophieConfig, SophieSolver};
use sophie::default_registry;
use sophie::graph::generate::{gnm, WeightDist};
use sophie::graph::Graph;
use sophie::hw::{OpcmBackend, OpcmBackendConfig};
use sophie::pris::{PrisJobConfig, PrisModel, RunConfig};
use sophie::solve::{
    run_batch, run_seeds, BatchJob, BatchOptions, EventLog, JobBudget, SolveEvent, SolveJob, Solver,
};

/// `SOPHIE_THREADS` is process-global; serialize the tests that set it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("SOPHIE_THREADS", threads);
    let out = f();
    std::env::remove_var("SOPHIE_THREADS");
    out
}

fn test_graph() -> Arc<Graph> {
    Arc::new(gnm(48, 220, WeightDist::UniformInt { lo: -2, hi: 2 }, 13).unwrap())
}

fn sophie_config() -> SophieConfig {
    SophieConfig {
        tile_size: 16,
        local_iters: 4,
        global_iters: 25,
        tile_fraction: 0.6,
        phi: 0.25,
        alpha: 0.1,
        ..SophieConfig::default()
    }
}

const SEED: u64 = 42;
const TARGET: Option<f64> = Some(120.0);

/// (registry name, trait solver built from a small typed config).
fn family() -> Vec<(&'static str, Arc<dyn Solver>)> {
    let registry = default_registry();
    vec![
        (
            "sophie",
            registry.build("sophie", &sophie_config()).unwrap(),
        ),
        (
            "sophie-opcm",
            registry
                .build("sophie-opcm", &(sophie_config(), opcm_config()))
                .unwrap(),
        ),
        ("pris", registry.build("pris", &pris_config()).unwrap()),
        ("sa", registry.build("sa", &sa_config()).unwrap()),
        ("sb", registry.build("sb", &sb_config()).unwrap()),
        ("pt", registry.build("pt", &pt_config()).unwrap()),
        ("bls", registry.build("bls", &bls_config()).unwrap()),
    ]
}

fn opcm_config() -> OpcmBackendConfig {
    OpcmBackendConfig {
        seed: 7,
        ..OpcmBackendConfig::default()
    }
}

fn pris_config() -> PrisJobConfig {
    PrisJobConfig {
        alpha: 0.0,
        iterations: 40,
        phi: 0.15,
    }
}

fn sa_config() -> SaConfig {
    SaConfig {
        sweeps: 60,
        ..SaConfig::default()
    }
}

fn sb_config() -> SbConfig {
    SbConfig {
        steps: 80,
        ..SbConfig::default()
    }
}

fn pt_config() -> PtConfig {
    PtConfig {
        exchanges: 10,
        ..PtConfig::default()
    }
}

fn bls_config() -> BlsConfig {
    BlsConfig {
        rounds: 12,
        ..BlsConfig::default()
    }
}

/// The legacy `*_observed` event stream for `name` on `graph`, with the
/// exact configs the trait solvers in [`family`] wrap (job seed/target
/// spliced into the config where the legacy API keeps them there).
fn legacy_stream(name: &str, graph: &Arc<Graph>) -> Vec<SolveEvent> {
    let mut log = EventLog::new();
    match name {
        "sophie" => {
            let solver = SophieSolver::from_graph(graph, sophie_config()).unwrap();
            solver.run_observed(graph, SEED, TARGET, &mut log).unwrap();
        }
        "sophie-opcm" => {
            let solver = SophieSolver::from_graph(graph, sophie_config()).unwrap();
            let backend = OpcmBackend::new(opcm_config());
            solver
                .run_with_backend_observed(&backend, graph, SEED, TARGET, &mut log)
                .unwrap();
        }
        "pris" => {
            let cfg = pris_config();
            let k = sophie::graph::coupling::coupling_matrix(graph);
            let delta = sophie::graph::coupling::delta_diagonal(graph);
            let c = sophie::pris::dropout::transformation_matrix(
                &k,
                delta,
                cfg.alpha,
                sophie::pris::DeltaVariant::Gershgorin,
            )
            .unwrap();
            let model = PrisModel::new(c).unwrap();
            let run = RunConfig {
                iterations: cfg.iterations,
                phi: cfg.phi,
                seed: SEED,
                target_cut: TARGET,
            };
            sophie::pris::runner::run_observed(&model, graph, &run, &mut log).unwrap();
        }
        "sa" => {
            let cfg = SaConfig {
                seed: SEED,
                ..sa_config()
            };
            let _ = sophie::baselines::sa::anneal_observed(graph, &cfg, TARGET, &mut log);
        }
        "sb" => {
            let cfg = SbConfig {
                seed: SEED,
                ..sb_config()
            };
            let _ = sophie::baselines::sb::bifurcate_observed(graph, &cfg, TARGET, &mut log);
        }
        "pt" => {
            let cfg = PtConfig {
                seed: SEED,
                ..pt_config()
            };
            let _ = sophie::baselines::tempering::temper_observed(graph, &cfg, TARGET, &mut log);
        }
        "bls" => {
            let cfg = BlsConfig {
                seed: SEED,
                ..bls_config()
            };
            let _ = sophie::baselines::local_search::search_observed(graph, &cfg, TARGET, &mut log);
        }
        other => panic!("unknown solver {other}"),
    }
    log.into_events()
}

fn trait_stream(solver: &Arc<dyn Solver>, graph: &Arc<Graph>) -> Vec<SolveEvent> {
    let mut log = EventLog::new();
    let job = SolveJob::new(Arc::clone(graph), SEED).with_target(TARGET);
    solver.solve(&job, &mut log).unwrap();
    log.into_events()
}

#[test]
fn all_seven_solvers_build_by_name_and_run_through_the_scheduler() {
    let _guard = ENV_LOCK.lock().unwrap();
    let graph = test_graph();
    let entries = family();
    assert_eq!(entries.len(), 7);
    assert_eq!(
        default_registry().names(),
        ["bls", "pris", "pt", "sa", "sb", "sophie", "sophie-opcm"]
    );
    for (name, solver) in entries {
        let batch = run_seeds(&solver, &graph, 2, None).unwrap();
        assert_eq!(batch.reports.len(), 2, "{name}");
        for (seed, report) in batch.reports.iter().enumerate() {
            assert_eq!(report.seed, seed as u64, "{name}");
            assert!(report.iterations_run > 0, "{name}");
            assert!(report.best_cut.is_finite(), "{name}");
            assert!(!report.cut_trace.is_empty(), "{name}");
        }
        assert!(batch.best_cut >= batch.mean_cut, "{name}");
    }
}

#[test]
fn trait_streams_match_legacy_observed_at_one_and_four_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    let graph = test_graph();
    for (name, solver) in family() {
        let legacy_1 = with_threads("1", || legacy_stream(name, &graph));
        let trait_1 = with_threads("1", || trait_stream(&solver, &graph));
        let legacy_4 = with_threads("4", || legacy_stream(name, &graph));
        let trait_4 = with_threads("4", || trait_stream(&solver, &graph));
        assert!(!legacy_1.is_empty(), "{name}: empty stream");
        assert_eq!(legacy_1, trait_1, "{name}: trait vs legacy, 1 thread");
        assert_eq!(legacy_4, trait_4, "{name}: trait vs legacy, 4 threads");
        assert_eq!(legacy_1, legacy_4, "{name}: stream thread-dependent");
    }
}

#[test]
fn heterogeneous_sophie_plus_sa_batch_is_thread_count_independent() {
    let _guard = ENV_LOCK.lock().unwrap();
    let graph = test_graph();
    let registry = default_registry();
    let run = || {
        let sophie = registry.build("sophie", &sophie_config()).unwrap();
        let sa = registry.build("sa", &sa_config()).unwrap();
        let mut jobs = Vec::new();
        for seed in 0..3u64 {
            jobs.push(BatchJob::new(
                Arc::clone(&sophie),
                SolveJob::new(Arc::clone(&graph), seed),
            ));
            jobs.push(BatchJob::new(
                Arc::clone(&sa),
                SolveJob::new(Arc::clone(&graph), seed),
            ));
        }
        run_batch(&jobs, &BatchOptions::default()).unwrap()
    };
    let serial = with_threads("1", run);
    let four = with_threads("4", run);
    assert_eq!(serial.reports.len(), 6);
    assert_eq!(serial.reports, four.reports);
    assert_eq!(serial.mean_cut, four.mean_cut);
    assert_eq!(serial.ops, four.ops);
    // The batch really is heterogeneous, in submission order.
    let names: Vec<&str> = serial.reports.iter().map(|r| r.solver.as_str()).collect();
    assert_eq!(names, ["sophie", "sa", "sophie", "sa", "sophie", "sa"]);
}

#[test]
fn budgets_cap_iterations_deterministically_through_the_registry() {
    let graph = test_graph();
    let registry = default_registry();
    let solver = registry.build("sa", &sa_config()).unwrap();
    let job = SolveJob::new(Arc::clone(&graph), 3).with_budget(JobBudget {
        max_iterations: Some(15),
        time_limit: None,
    });
    let capped = solver
        .solve(&job, &mut sophie::solve::NullObserver)
        .unwrap();
    assert_eq!(capped.planned_iterations, 15);
    assert_eq!(capped.iterations_run, 15);
    // Same cap, direct config: identical outcome.
    let direct = registry
        .build(
            "sa",
            &SaConfig {
                sweeps: 15,
                ..sa_config()
            },
        )
        .unwrap();
    let full = direct
        .solve(
            &SolveJob::new(Arc::clone(&graph), 3),
            &mut sophie::solve::NullObserver,
        )
        .unwrap();
    assert_eq!(capped.best_cut, full.best_cut);
    assert_eq!(capped.cut_trace, full.cut_trace);
}
