//! Hybrid solving flows: SOPHIE composed with the classical baselines.

use sophie::baselines::local_search::{search, BlsConfig};
use sophie::baselines::sb::{bifurcate, SbConfig};
use sophie::core::backend::IdealBackend;
use sophie::core::{Schedule, SophieConfig, SophieSolver};
use sophie::graph::cut::spins_to_binary;
use sophie::graph::generate::{gnm, WeightDist};
use sophie::graph::Partition;

#[test]
fn sophie_polishes_an_sb_solution() {
    let g = gnm(96, 460, WeightDist::Unit, 31).unwrap();
    // A deliberately short SB run leaves room for improvement.
    let sb = bifurcate(
        &g,
        &SbConfig {
            steps: 30,
            ..SbConfig::default()
        },
    );
    let cfg = SophieConfig {
        tile_size: 16,
        global_iters: 60,
        phi: 0.08,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
    let schedule = Schedule::generate(solver.grid(), cfg.global_iters, 1.0, true, 5);
    let warm = solver
        .run_scheduled_from(
            &IdealBackend::new(),
            &g,
            &schedule,
            3,
            None,
            Some(&spins_to_binary(&sb.best_spins)),
        )
        .unwrap();
    assert!(
        warm.best_cut >= sb.best_cut,
        "warm start must not regress: {} vs {}",
        warm.best_cut,
        sb.best_cut
    );
}

#[test]
fn local_search_certifies_sophie_output_as_partition() {
    let g = gnm(80, 360, WeightDist::Unit, 37).unwrap();
    let cfg = SophieConfig {
        tile_size: 16,
        global_iters: 80,
        phi: 0.08,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    let out = solver.run(&g, 1, None).unwrap();
    // Package as a verified partition certificate.
    let p = Partition::from_bits(&g, &out.best_bits);
    assert!(p.verify(&g));
    assert_eq!(p.cut(), out.best_cut);
    // A one-flip local search from scratch should land in the same league
    // (sanity that SOPHIE's output is competitive, not degenerate).
    let bls = search(&g, &BlsConfig::default());
    assert!(
        out.best_cut >= 0.85 * bls.best_cut,
        "{} vs {}",
        out.best_cut,
        bls.best_cut
    );
}

#[test]
fn chained_batches_keep_improving_or_hold() {
    let g = gnm(64, 300, WeightDist::Unit, 41).unwrap();
    let cfg = SophieConfig {
        tile_size: 16,
        global_iters: 25,
        phi: 0.08,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg.clone()).unwrap();
    let mut bits: Option<Vec<bool>> = None;
    let mut best = f64::NEG_INFINITY;
    for stage in 0..3u64 {
        let schedule = Schedule::generate(solver.grid(), cfg.global_iters, 1.0, true, stage);
        let out = solver
            .run_scheduled_from(
                &IdealBackend::new(),
                &g,
                &schedule,
                stage + 10,
                None,
                bits.as_deref(),
            )
            .unwrap();
        assert!(out.best_cut >= best || bits.is_none());
        best = best.max(out.best_cut);
        bits = Some(out.best_bits);
    }
    assert!(best > 150.0, "chained best {best}"); // random ≈ m/2 = 150
}
