//! Thread-count-independence of the fault/recovery pipeline.
//!
//! Fault events are drawn from RNG streams keyed purely by
//! `(schedule seed, round, unit id)`, reports are drained by the driving
//! thread in ascending pair order, and probing/recovery run serially —
//! so the *entire* solve-event stream of a fault-aware run, including
//! `fault_injected`, `fault_detected`, `tile_recovered`, and
//! `recovery_exhausted` lines, must be byte-identical for every
//! `SOPHIE_THREADS` value.

use std::sync::{Arc, Mutex};

use sophie::core::observe::EventLog;
use sophie::core::{HealthConfig, RecoveryPolicy, SophieConfig, SophieSolver};
use sophie::graph::generate::{gnm, WeightDist};
use sophie::graph::Graph;
use sophie::hw::{FaultSchedule, OpcmBackend, OpcmBackendConfig, SophieOpcm};
use sophie::solve::{SolveJob, Solver};

/// `SOPHIE_THREADS` is process-global; serialize the tests that set it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("SOPHIE_THREADS", threads);
    let out = f();
    std::env::remove_var("SOPHIE_THREADS");
    out
}

fn test_instance() -> (Graph, SophieSolver) {
    let g = gnm(96, 500, WeightDist::UniformInt { lo: -3, hi: 3 }, 11).unwrap();
    let cfg = SophieConfig {
        tile_size: 16,
        local_iters: 4,
        global_iters: 40,
        tile_fraction: 0.6,
        phi: 0.25,
        alpha: 0.1,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    (g, solver)
}

/// One fault-aware run under `threads`, returning the whole event stream
/// rendered to JSONL (byte comparison catches *any* divergence: order,
/// payloads, and counts alike) plus the outcome's best cut.
fn run_stream(
    solver: &SophieSolver,
    g: &Graph,
    health: &HealthConfig,
    threads: &str,
) -> (String, f64) {
    with_threads(threads, || {
        let backend = OpcmBackend::new(OpcmBackendConfig {
            seed: 7,
            faults: FaultSchedule::uniform(0.08, 99),
            ..OpcmBackendConfig::default()
        });
        let mut log = EventLog::new();
        let outcome = solver
            .run_fault_aware(&backend, g, 42, None, health, &mut log)
            .unwrap();
        let jsonl: Vec<String> = log.events().iter().map(|e| e.to_json()).collect();
        (jsonl.join("\n"), outcome.best_cut)
    })
}

#[test]
fn fault_and_recovery_event_streams_match_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    let health = HealthConfig::default();
    let (serial, cut1) = run_stream(&solver, &g, &health, "1");
    let (four, cut4) = run_stream(&solver, &g, &health, "4");
    assert!(
        serial.contains("fault_injected"),
        "the schedule must actually fire faults"
    );
    assert!(
        serial.contains("fault_detected") && serial.contains("tile_recovered"),
        "the monitor must detect and recover"
    );
    assert_eq!(serial, four, "event stream must be byte-identical");
    assert_eq!(cut1, cut4);
}

#[test]
fn remap_and_quarantine_streams_match_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    for policy in [
        RecoveryPolicy::Remap {
            reprogram_attempts: 1,
            max_spares: 8,
        },
        RecoveryPolicy::Quarantine {
            reprogram_attempts: 1,
        },
    ] {
        let health = HealthConfig {
            policy,
            ..HealthConfig::default()
        };
        let (serial, _) = run_stream(&solver, &g, &health, "1");
        let (four, _) = run_stream(&solver, &g, &health, "4");
        assert_eq!(serial, four, "policy {policy:?}");
    }
}

#[test]
fn trait_object_fault_aware_stream_matches_legacy_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    let graph = Arc::new(g);
    let health = HealthConfig::default();
    let backend_config = OpcmBackendConfig {
        seed: 7,
        faults: FaultSchedule::uniform(0.08, 99),
        ..OpcmBackendConfig::default()
    };
    let opcm: Arc<dyn Solver> = Arc::new(
        SophieOpcm::new(solver.config().clone(), backend_config)
            .unwrap()
            .with_health(health)
            .unwrap(),
    );
    let trait_stream = |threads: &str| {
        with_threads(threads, || {
            let mut log = EventLog::new();
            opcm.solve(&SolveJob::new(Arc::clone(&graph), 42), &mut log)
                .unwrap();
            let jsonl: Vec<String> = log.events().iter().map(|e| e.to_json()).collect();
            jsonl.join("\n")
        })
    };
    let (legacy_1, _) = run_stream(&solver, &graph, &health, "1");
    let trait_1 = trait_stream("1");
    let trait_4 = trait_stream("4");
    assert_eq!(legacy_1, trait_1, "trait vs legacy, 1 thread");
    assert_eq!(trait_1, trait_4, "trait stream thread-dependent");
}
