//! Thread-count-independence regression tests.
//!
//! The engine runs the selected tile pairs of every round concurrently on
//! the persistent worker pool, with noise drawn from counter-derived
//! per-(round, pair) RNG streams (see the `sophie_core::engine` module
//! docs). These tests pin the resulting contract: a job's entire
//! [`sophie::core::SophieOutcome`] — cut trace, best bits, activity, and
//! the exact op counts consumed by the PPA models — is bit-identical no
//! matter what `SOPHIE_THREADS` is set to, on both the exact backend and
//! the OPCM device model.

use std::sync::{Arc, Mutex};

use sophie::core::{SophieConfig, SophieOutcome, SophieSolver};
use sophie::graph::generate::{gnm, WeightDist};
use sophie::graph::Graph;
use sophie::hw::{OpcmBackend, OpcmBackendConfig};
use sophie::solve::{run_seeds, Solver};

/// `SOPHIE_THREADS` is process-global; serialize the tests that set it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("SOPHIE_THREADS", threads);
    let out = f();
    std::env::remove_var("SOPHIE_THREADS");
    out
}

fn assert_identical(serial: &SophieOutcome, parallel: &SophieOutcome, label: &str) {
    assert_eq!(serial.best_cut, parallel.best_cut, "{label}: best_cut");
    assert_eq!(serial.best_bits, parallel.best_bits, "{label}: best_bits");
    assert_eq!(serial.cut_trace, parallel.cut_trace, "{label}: cut_trace");
    assert_eq!(
        serial.activity_trace, parallel.activity_trace,
        "{label}: activity_trace"
    );
    assert_eq!(
        serial.global_iters_to_target, parallel.global_iters_to_target,
        "{label}: iters_to_target"
    );
    assert_eq!(serial.ops, parallel.ops, "{label}: op counts");
}

fn test_instance() -> (Graph, SophieSolver) {
    let g = gnm(96, 500, WeightDist::UniformInt { lo: -3, hi: 3 }, 11).unwrap();
    let cfg = SophieConfig {
        tile_size: 16,
        local_iters: 4,
        global_iters: 40,
        tile_fraction: 0.6,
        phi: 0.25,
        alpha: 0.1,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    (g, solver)
}

#[test]
fn ideal_backend_outcome_is_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    for seed in [0u64, 42, 1234] {
        let serial = with_threads("1", || solver.run(&g, seed, None).unwrap());
        let four = with_threads("4", || solver.run(&g, seed, None).unwrap());
        let eight = with_threads("8", || solver.run(&g, seed, None).unwrap());
        assert_identical(&serial, &four, &format!("ideal seed {seed}, 4 threads"));
        assert_identical(&serial, &eight, &format!("ideal seed {seed}, 8 threads"));
    }
}

#[test]
fn ideal_backend_majority_vote_mode_is_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let g = gnm(64, 300, WeightDist::Unit, 5).unwrap();
    let cfg = SophieConfig {
        tile_size: 16,
        local_iters: 3,
        global_iters: 30,
        tile_fraction: 0.8,
        phi: 0.2,
        stochastic_spin_update: false,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    let serial = with_threads("1", || solver.run(&g, 9, None).unwrap());
    let four = with_threads("4", || solver.run(&g, 9, None).unwrap());
    assert_identical(&serial, &four, "ideal majority-vote");
}

#[test]
fn opcm_backend_outcome_is_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    // A fresh backend per run: unit ids come from a shared counter, and the
    // engine programs units serially precisely so the id ↔ pair mapping
    // stays deterministic.
    let run = || {
        let backend = OpcmBackend::new(OpcmBackendConfig {
            seed: 7,
            ..OpcmBackendConfig::default()
        });
        solver.run_with_backend(&backend, &g, 42, None).unwrap()
    };
    let serial = with_threads("1", run);
    let four = with_threads("4", run);
    let eight = with_threads("8", run);
    assert_identical(&serial, &four, "opcm, 4 threads");
    assert_identical(&serial, &eight, "opcm, 8 threads");
}

#[test]
fn scheduler_batches_over_the_trait_object_are_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    let graph = Arc::new(g);
    let solver: Arc<dyn Solver> = Arc::new(solver);
    let run = || run_seeds(&solver, &graph, 3, None).unwrap();
    let serial = with_threads("1", run);
    let four = with_threads("4", run);
    let eight = with_threads("8", run);
    assert_eq!(serial.reports, four.reports, "1 vs 4 threads");
    assert_eq!(serial.reports, eight.reports, "1 vs 8 threads");
    assert_eq!(serial.ops, four.ops, "aggregate op counts");
}
