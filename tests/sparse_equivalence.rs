//! Sparse/dense compute-path equivalence (property-based).
//!
//! The `compute` knob on [`SophieConfig`] selects between the dense
//! [`IdealBackend`](sophie::core::backend::IdealBackend) and the
//! delta-driven [`SparseBackend`](sophie::core::SparseBackend), with
//! `Auto` switching kernels per MVM around a density-crossover threshold.
//! The contract (see `sophie_core::sparse`) is that this choice is
//! invisible in every output: cut trajectories, best bits, op counts, and
//! the *entire typed event stream* must be byte-identical across compute
//! modes, crossover settings (including thresholds that force kernel
//! switches mid-run), and thread counts.
//!
//! These tests randomize the instance, the algorithm configuration, and
//! the activity profile (φ = 0 runs freeze quickly → sparse diffs; high φ
//! keeps activity high → dense fallbacks) and compare every variant
//! against the dense reference at `SOPHIE_THREADS` 1 and 4.

use std::sync::Mutex;

use proptest::prelude::*;
use sophie::core::{ComputeMode, SophieConfig, SophieSolver};
use sophie::graph::generate::{gnm, WeightDist};
use sophie::solve::EventLog;

/// `SOPHIE_THREADS` is process-global; serialize the tests that set it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("SOPHIE_THREADS", threads);
    let out = f();
    std::env::remove_var("SOPHIE_THREADS");
    out
}

/// One run: outcome fields plus the full event stream rendered to a
/// string, so stream comparison is a byte comparison.
fn run_fingerprint(
    g: &sophie::graph::Graph,
    cfg: &SophieConfig,
    seed: u64,
) -> (f64, Vec<bool>, Vec<f64>, String) {
    let solver = SophieSolver::from_graph(g, cfg.clone()).expect("engine build");
    let mut log = EventLog::new();
    let out = solver.run_observed(g, seed, None, &mut log).expect("run");
    (
        out.best_cut,
        out.best_bits,
        out.cut_trace,
        format!("{:?}", log.events()),
    )
}

fn config_strategy() -> impl Strategy<Value = SophieConfig> {
    (
        prop_oneof![Just(8usize), Just(16)],
        2usize..5,
        6usize..16,
        0.4f64..=1.0,
        prop_oneof![Just(0.0f64), Just(0.0), Just(0.2)],
        proptest::bool::ANY,
    )
        .prop_map(|(tile, local, global, frac, phi, stoch)| SophieConfig {
            tile_size: tile,
            local_iters: local,
            global_iters: global,
            tile_fraction: frac,
            phi,
            alpha: 0.0,
            stochastic_spin_update: stoch,
            ..SophieConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every compute mode and crossover setting yields byte-identical
    /// event streams and outcomes, at 1 and 4 threads.
    #[test]
    fn all_compute_paths_are_byte_identical(
        cfg in config_strategy(),
        n in 32usize..72,
        edge_factor in 2usize..5,
        seed in 0u64..1000,
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        let g = gnm(n, edge_factor * n, WeightDist::UniformInt { lo: -3, hi: 3 }, seed ^ 0xA5)
            .unwrap();

        // Dense reference at one thread.
        let dense_cfg = SophieConfig { compute: ComputeMode::Dense, ..cfg.clone() };
        let reference = with_threads("1", || run_fingerprint(&g, &dense_cfg, seed));

        // Variants: pure sparse, auto with a genuine mid-run crossover
        // threshold, auto forced to the dense kernel (θ → 0), and auto
        // forced to the incremental kernel (θ huge).
        let variants = [
            SophieConfig { compute: ComputeMode::Sparse, ..cfg.clone() },
            SophieConfig {
                compute: ComputeMode::Auto,
                sparse_crossover: Some(0.25),
                ..cfg.clone()
            },
            SophieConfig {
                compute: ComputeMode::Auto,
                sparse_crossover: Some(1e-9),
                ..cfg.clone()
            },
            SophieConfig {
                compute: ComputeMode::Auto,
                sparse_crossover: Some(1e9),
                ..cfg.clone()
            },
        ];
        for (vi, vcfg) in variants.iter().enumerate() {
            for threads in ["1", "4"] {
                let got = with_threads(threads, || run_fingerprint(&g, vcfg, seed));
                prop_assert_eq!(
                    &reference.0, &got.0,
                    "best_cut diverged: variant {} threads {}", vi, threads
                );
                prop_assert_eq!(
                    &reference.1, &got.1,
                    "best_bits diverged: variant {} threads {}", vi, threads
                );
                prop_assert_eq!(
                    &reference.2, &got.2,
                    "cut_trace diverged: variant {} threads {}", vi, threads
                );
                prop_assert_eq!(
                    &reference.3, &got.3,
                    "event stream diverged: variant {} threads {}", vi, threads
                );
            }
        }
    }
}

/// Deterministic (non-property) spot check with a warm-started polish run
/// at φ = 0 — the late-anneal regime the sparse path is built for — and a
/// crossover threshold chosen so the auto path demonstrably switches
/// kernels mid-run.
#[test]
fn warm_started_polish_is_identical_across_paths() {
    let _guard = ENV_LOCK.lock().unwrap();
    let g = gnm(80, 320, WeightDist::UniformInt { lo: -2, hi: 2 }, 31).unwrap();
    let base = SophieConfig {
        tile_size: 16,
        local_iters: 4,
        global_iters: 20,
        phi: 0.0,
        ..SophieConfig::default()
    };
    let mut fingerprints = Vec::new();
    for compute in [ComputeMode::Dense, ComputeMode::Sparse, ComputeMode::Auto] {
        let cfg = SophieConfig {
            compute,
            sparse_crossover: (compute == ComputeMode::Auto).then_some(0.1),
            ..base.clone()
        };
        for threads in ["1", "4"] {
            fingerprints.push(with_threads(threads, || run_fingerprint(&g, &cfg, 7)));
        }
    }
    let first = &fingerprints[0];
    for (i, fp) in fingerprints.iter().enumerate().skip(1) {
        assert_eq!(first.0, fp.0, "best_cut diverged at variant {i}");
        assert_eq!(first.1, fp.1, "best_bits diverged at variant {i}");
        assert_eq!(first.2, fp.2, "cut_trace diverged at variant {i}");
        assert_eq!(first.3, fp.3, "event stream diverged at variant {i}");
    }
}
