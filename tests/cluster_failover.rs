//! Cluster-level fault-tolerance tests over real localhost TCP: a replica
//! killed mid-batch with every job still completing (reports
//! byte-identical to a healthy run), quarantine and probe-driven
//! re-admission, content-addressed cache replay (including cache-only
//! serving when every replica is down, and deadline'd jobs bypassing the
//! cache — their reports are wall-clock-dependent), duplicate in-flight
//! job ids, hedged requests, and router/direct byte-identity for streamed
//! jobs.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use sophie_serve::router::cache::{job_key, placement_hash};
use sophie_serve::{
    Client, GraphSpec, HealthPolicy, Json, LocalCluster, RetryPolicy, RouterConfig, ServeConfig,
    SubmitArgs,
};

/// Serializes the tests in this file. Each spins up a full cluster and
/// asserts on wall-clock behavior (probe cadence, hedge delays,
/// deadlines); running them on parallel test threads makes the timing
/// assertions flaky under CPU contention.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn serve_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_connections: 16,
        ..ServeConfig::default()
    }
}

/// Fast-probing router config so quarantine/re-admission transitions
/// happen in tens of milliseconds instead of seconds.
fn router_config(cache_capacity: usize) -> RouterConfig {
    RouterConfig {
        cache_capacity,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        health: HealthPolicy::default(),
        retry: RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        },
        ..RouterConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    // A backstop so a lost frame fails the test instead of hanging it.
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    client
}

/// Polls the router's `stats` frame until `pred` holds.
fn wait_stats(client: &mut Client, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    for _ in 0..1200 {
        let stats = client.stats().expect("stats");
        if pred(&stats) {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stats condition not reached within 12s: {what}");
}

fn counter(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

fn replica_state(stats: &Json, index: usize) -> String {
    stats
        .get("replicas")
        .and_then(Json::as_arr)
        .and_then(|rs| rs.get(index))
        .and_then(|r| r.get("state"))
        .and_then(Json::as_str)
        .unwrap_or("missing")
        .to_string()
}

/// The raw `report` bytes of a result line — the payload that must be
/// byte-identical across healthy runs, failovers, and cache replays.
fn report_bytes(result_line: &str) -> &str {
    let marker = ",\"report\":";
    let start = result_line.find(marker).expect("result has a report") + marker.len();
    &result_line[start..result_line.len() - 1]
}

/// A deterministic batch job: no deadline (wall-clock budgets would make
/// `iterations_run` timing-dependent and break byte-identity), runtime in
/// the ~100ms range so a mid-batch replica kill lands on live work.
fn batch_job(seed: u64) -> SubmitArgs {
    let mut job = SubmitArgs::new("sa", GraphSpec::Named("K60".into()));
    job.seed = seed;
    job.config_json = Some(r#"{"sweeps": 120000}"#.into());
    job
}

#[test]
fn replica_kill_mid_batch_completes_all_jobs_with_identical_reports() {
    let _serial = serial();
    let jobs: Vec<(String, SubmitArgs)> = (0..12)
        .map(|i| (format!("job-{i}"), batch_job(100 + i)))
        .collect();

    // Healthy baseline: same workload on an intact cluster.
    let baseline = {
        let cluster = LocalCluster::start(3, serve_config(2), router_config(0)).expect("cluster");
        let mut client = connect(cluster.router_addr());
        let mut reports = Vec::new();
        for (id, job) in &jobs {
            let admission = client.submit(id, job).expect("submit");
            assert_eq!(admission.frame_type(), Some("accepted"));
        }
        for (id, _) in &jobs {
            let outcome = client.wait_result(id).expect("result");
            assert_eq!(outcome.status, "done", "{id} in healthy run");
            reports.push(report_bytes(&outcome.frame.line).to_string());
        }
        cluster.shutdown();
        reports
    };

    // Chaos run: same workload, replica 0 killed mid-batch, later
    // restarted. Cache disabled so every job really executes.
    let mut cluster = LocalCluster::start(3, serve_config(2), router_config(0)).expect("cluster");
    let mut client = connect(cluster.router_addr());
    let mut stats_client = connect(cluster.router_addr());
    for (id, job) in &jobs {
        let admission = client.submit(id, job).expect("submit");
        assert_eq!(admission.frame_type(), Some("accepted"));
    }
    wait_stats(&mut stats_client, "batch in flight", |s| {
        counter(s, "in_flight") > 0
    });
    cluster.kill(0);

    // Every job still completes, with reports byte-identical to the
    // healthy run — zero client-visible failures.
    for ((id, _), healthy_report) in jobs.iter().zip(&baseline) {
        let outcome = client.wait_result(id).expect("result under chaos");
        assert_eq!(outcome.status, "done", "{id} must survive the kill");
        assert_eq!(
            report_bytes(&outcome.frame.line),
            healthy_report,
            "{id}: failover must not change report bytes"
        );
    }

    // The dead replica is quarantined (dispatch failures + failed probes)...
    let stats = wait_stats(&mut stats_client, "replica 0 quarantined", |s| {
        replica_state(s, 0) == "quarantined"
    });
    assert_eq!(counter(&stats, "failed"), 0, "no job may fail");
    let retries = counter(&stats, "retries");
    assert!(retries > 0, "the kill must have forced retries");

    // ...keeps serving while degraded (new work avoids the dead replica)...
    let admission = client
        .submit("after-kill", &batch_job(999))
        .expect("submit");
    assert_eq!(admission.frame_type(), Some("accepted"));
    let outcome = client.wait_result("after-kill").expect("result");
    assert_eq!(outcome.status, "done");

    // ...and re-admits it after a restart (probe-driven, Healthy again).
    cluster.restart(0).expect("restart replica 0");
    let stats = wait_stats(&mut stats_client, "replica 0 re-admitted", |s| {
        replica_state(s, 0) == "healthy"
    });
    let transitions: Vec<String> = stats
        .get("replicas")
        .and_then(Json::as_arr)
        .and_then(|rs| rs.first())
        .and_then(|r| r.get("transitions"))
        .and_then(Json::as_arr)
        .expect("transition log")
        .iter()
        .filter_map(|t| t.as_str().map(str::to_string))
        .collect();
    assert_eq!(transitions.first().map(String::as_str), Some("healthy"));
    assert!(
        transitions.iter().any(|t| t == "quarantined"),
        "log must record the quarantine: {transitions:?}"
    );
    assert_eq!(transitions.last().map(String::as_str), Some("healthy"));

    cluster.shutdown();
}

#[test]
fn cache_replays_reports_and_serves_when_every_replica_is_down() {
    let _serial = serial();
    let mut cluster = LocalCluster::start(2, serve_config(2), router_config(64)).expect("cluster");
    let mut client = connect(cluster.router_addr());

    let mut job = SubmitArgs::new("sa", GraphSpec::Named("K40".into()));
    job.seed = 7;
    job.config_json = Some(r#"{"sweeps": 2000}"#.into());

    client.submit("first", &job).expect("submit first");
    let first = client.wait_result("first").expect("first result");
    assert_eq!(first.status, "done");
    let first_report = report_bytes(&first.frame.line).to_string();

    // Identical content under a different id: served from the cache,
    // byte-identical report.
    client.submit("second", &job).expect("submit second");
    let second = client.wait_result("second").expect("second result");
    assert_eq!(second.status, "done");
    assert_eq!(report_bytes(&second.frame.line), first_report);
    let stats = client.stats().expect("stats");
    assert!(
        stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "second submission must hit the cache"
    );

    // Mass replica loss: both replicas die and end up quarantined.
    cluster.kill(0);
    cluster.kill(1);
    wait_stats(&mut client, "all replicas quarantined", |s| {
        replica_state(s, 0) == "quarantined" && replica_state(s, 1) == "quarantined"
    });

    // Cached content still serves, byte-identically...
    client.submit("third", &job).expect("submit third");
    let third = client.wait_result("third").expect("third result");
    assert_eq!(third.status, "done");
    assert_eq!(report_bytes(&third.frame.line), first_report);

    // ...while uncached work gets typed cluster-degraded backpressure.
    let mut uncached = job.clone();
    uncached.seed = 8;
    let admission = client.submit("fourth", &uncached).expect("submit fourth");
    assert_eq!(admission.frame_type(), Some("rejected"));
    assert_eq!(
        admission.get("reason").and_then(Json::as_str),
        Some("cluster_degraded")
    );

    cluster.shutdown();
}

#[test]
fn deadlined_jobs_bypass_the_cache() {
    let _serial = serial();
    let cluster = LocalCluster::start(1, serve_config(2), router_config(64)).expect("cluster");
    let mut client = connect(cluster.router_addr());

    // Completes far inside its deadline, but a deadline'd run is stopped
    // at wall-clock time and still reports `done`, so its report is not
    // content-deterministic — it must execute every time, never replay.
    let mut job = SubmitArgs::new("sa", GraphSpec::Named("K40".into()));
    job.seed = 5;
    job.config_json = Some(r#"{"sweeps": 2000}"#.into());
    job.deadline_ms = Some(60_000);

    for id in ["d1", "d2"] {
        client.submit(id, &job).expect("submit");
        let outcome = client.wait_result(id).expect("result");
        assert_eq!(outcome.status, "done", "{id}");
    }
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(
        cache.get("inserts").and_then(Json::as_u64),
        Some(0),
        "deadline'd reports must not be cached: {stats}"
    );
    assert_eq!(
        cache.get("hits").and_then(Json::as_u64),
        Some(0),
        "deadline'd submissions must not replay: {stats}"
    );

    cluster.shutdown();
}

#[test]
fn duplicate_in_flight_id_is_rejected_and_the_first_job_stays_cancellable() {
    let _serial = serial();
    let cluster = LocalCluster::start(1, serve_config(1), router_config(0)).expect("cluster");
    let mut client = connect(cluster.router_addr());

    // A long-running job keeps the id in flight.
    let mut long_job = SubmitArgs::new("sa", GraphSpec::Named("K60".into()));
    long_job.seed = 1;
    long_job.config_json = Some(r#"{"sweeps": 100000000}"#.into());
    let admission = client.submit("dup", &long_job).expect("submit");
    assert_eq!(admission.frame_type(), Some("accepted"));

    // Reusing the id while the first dispatch is live is a typed
    // rejection — not a silent overwrite that would orphan the first
    // job's cancel plumbing.
    let admission = client.submit("dup", &long_job).expect("resubmit");
    assert_eq!(admission.frame_type(), Some("rejected"));
    assert_eq!(
        admission.get("reason").and_then(Json::as_str),
        Some("duplicate_id")
    );

    // The original job is still tracked: cancel finds it and ends it.
    assert!(
        client.cancel("dup").expect("cancel"),
        "cancel must still find the first job"
    );
    let outcome = client.wait_result("dup").expect("result");
    assert_eq!(outcome.status, "cancelled");

    cluster.shutdown();
}

#[test]
fn hedged_request_finishes_on_the_second_replica() {
    let _serial = serial();
    let mut config = router_config(0);
    config.retry.hedge = true;
    config.retry.hedge_fraction = 0.25;
    // Single worker per replica so one long job saturates its home.
    let cluster = LocalCluster::start(2, serve_config(1), config).expect("cluster");

    // The hedged job: quick, with a deadline so the hedge arms.
    let mut quick = SubmitArgs::new("sa", GraphSpec::Named("K40".into()));
    quick.seed = 21;
    quick.config_json = Some(r#"{"sweeps": 2000}"#.into());
    // Generous deadline: the hedge fires at 25% of it (2s), and the
    // remaining 6s absorbs scheduler noise on a loaded host.
    quick.deadline_ms = Some(8000);

    // Compute its home replica with the router's own placement function,
    // then saturate exactly that replica with a long-running direct job.
    let frame = quick.to_frame("hedged");
    let home = match sophie_serve::protocol::parse_request(&frame).expect("parse") {
        sophie_serve::Request::Submit(req) => (placement_hash(&job_key(&req)) % 2) as usize,
        other => panic!("expected submit, got {other:?}"),
    };
    let home_addr = cluster.replica_addr(home).expect("home replica runs");
    let mut saturator = connect(home_addr);
    let mut long_job = SubmitArgs::new("sa", GraphSpec::Named("K60".into()));
    long_job.config_json = Some(r#"{"sweeps": 100000000}"#.into());
    long_job.deadline_ms = Some(30_000);
    saturator.submit("long", &long_job).expect("submit long");

    // Wait until the saturator is actually executing on the home replica.
    let mut home_stats = connect(home_addr);
    wait_stats(&mut home_stats, "saturator running", |s| {
        counter(s, "in_flight") == 1
    });

    // Routed through the router, the job's primary attempt parks behind
    // the saturator; the hedge fires at 25% of the deadline and completes
    // on the other replica.
    let mut client = connect(cluster.router_addr());
    client.submit("hedged", &quick).expect("submit hedged");
    let outcome = client.wait_result("hedged").expect("hedged result");
    assert_eq!(
        outcome.status, "done",
        "result frame: {}",
        outcome.frame.line
    );
    let stats = client.stats().expect("router stats");
    assert!(
        counter(&stats, "hedges") >= 1,
        "hedge must have fired; result: {} stats: {}",
        outcome.frame.line,
        stats
    );
    assert!(
        counter(&stats, "hedge_wins") >= 1,
        "hedge must have won; result: {} stats: {}",
        outcome.frame.line,
        stats
    );

    cluster.shutdown();
}

#[test]
fn routed_stream_is_byte_identical_to_direct_serving() {
    let _serial = serial();
    let cluster = LocalCluster::start(1, serve_config(2), router_config(0)).expect("cluster");
    let replica_addr = cluster.replica_addr(0).expect("replica runs");

    let mut job = SubmitArgs::new("sophie", GraphSpec::Named("K40".into()));
    job.seed = 3;
    job.stream = true;
    job.config_json = Some(r#"{"global_iters": 4, "tile_size": 20, "local_iters": 2}"#.into());

    let mut direct = connect(replica_addr);
    direct.submit("s1", &job).expect("direct submit");
    let direct_outcome = direct.wait_result("s1").expect("direct result");

    let mut routed = connect(cluster.router_addr());
    routed.submit("s1", &job).expect("routed submit");
    let routed_outcome = routed.wait_result("s1").expect("routed result");

    assert_eq!(direct_outcome.status, "done");
    assert_eq!(routed_outcome.status, "done");
    // Every event frame — raw wire bytes — matches, in order.
    let direct_events: Vec<&str> = direct_outcome
        .events
        .iter()
        .map(|e| e.line.as_str())
        .collect();
    let routed_events: Vec<&str> = routed_outcome
        .events
        .iter()
        .map(|e| e.line.as_str())
        .collect();
    assert!(!direct_events.is_empty(), "streaming job must emit events");
    assert_eq!(routed_events, direct_events);
    // The report bytes match too (latency_ms legitimately differs).
    assert_eq!(
        report_bytes(&routed_outcome.frame.line),
        report_bytes(&direct_outcome.frame.line)
    );

    cluster.shutdown();
}

#[test]
fn problem_submits_route_cache_and_advertise_through_the_router() {
    let _serial = serial();
    let cluster = LocalCluster::start(2, serve_config(2), router_config(64)).expect("cluster");
    let mut client = connect(cluster.router_addr());

    // The router forwards a replica's `list-solvers` frame verbatim, so
    // the problem-compiler capability list reaches clients unchanged.
    let solvers = client.list_solvers().expect("list-solvers via router");
    let kinds: Vec<&str> = solvers
        .get("problems")
        .and_then(Json::as_arr)
        .expect("problems array forwarded")
        .iter()
        .map(|k| k.as_str().unwrap())
        .collect();
    assert_eq!(kinds, vec!["qubo", "max-cut", "coloring", "ldpc"]);

    // A problem-typed submit through the router returns decoded metrics
    // inside the report.
    let mut job = SubmitArgs::for_problem(
        "sa",
        r#"{"kind":"coloring","random":{"nodes":8,"edges":14,"colors":4,"seed":3}}"#,
    );
    job.seed = 5;
    job.config_json = Some(r#"{"sweeps": 4000}"#.into());
    client.submit("p-first", &job).expect("submit p-first");
    let first = client.wait_result("p-first").expect("p-first result");
    assert_eq!(first.status, "done");
    let first_report = report_bytes(&first.frame.line).to_string();
    let problem = first
        .frame
        .get("report")
        .and_then(|r| r.get("problem"))
        .expect("decoded problem metrics in routed result");
    assert_eq!(problem.get("kind").and_then(Json::as_str), Some("coloring"));
    assert_eq!(problem.get("feasible").and_then(Json::as_bool), Some(true));

    // Identical problem content under a new id replays from the cache,
    // byte-identical — including the spliced problem block.
    client.submit("p-second", &job).expect("submit p-second");
    let second = client.wait_result("p-second").expect("p-second result");
    assert_eq!(second.status, "done");
    assert_eq!(report_bytes(&second.frame.line), first_report);
    let stats = client.stats().expect("stats");
    assert!(
        stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "identical problem submission must hit the cache"
    );

    // Different problem content (another generator seed) must miss.
    let mut other_job = SubmitArgs::for_problem(
        "sa",
        r#"{"kind":"coloring","random":{"nodes":8,"edges":14,"colors":4,"seed":4}}"#,
    );
    other_job.seed = 5;
    other_job.config_json = Some(r#"{"sweeps": 4000}"#.into());
    assert_ne!(
        job_key(&parse_submit(&job.to_frame("x"))),
        job_key(&parse_submit(&other_job.to_frame("x"))),
        "problem identity must reach the cache key"
    );

    cluster.shutdown();
}

/// Parses a rendered submit frame back into the request the router keys.
fn parse_submit(line: &str) -> sophie_serve::SubmitRequest {
    match sophie_serve::protocol::parse_request(line).expect("valid submit frame") {
        sophie_serve::Request::Submit(req) => *req,
        other => panic!("expected Submit, got {other:?}"),
    }
}
