//! Observer-event regression tests across the whole solver family.
//!
//! The instrumentation layer (`sophie::solve`) promises that a solver's
//! event stream is (a) deterministic for a fixed seed, (b) independent of
//! `SOPHIE_THREADS` — events are emitted only from the driving thread in
//! a fixed order — and (c) faithful: the [`TraceRecorder`]'s distilled
//! report reproduces exactly the traces and totals the solver reports
//! through its own outcome type. These tests pin all three properties for
//! the SOPHIE engine, the PRIS runner, and the SA/SB baselines.

use std::sync::{Arc, Mutex};

use sophie::core::{SophieConfig, SophieSolver};
use sophie::graph::generate::{gnm, WeightDist};
use sophie::graph::Graph;
use sophie::solve::{EventLog, SolveEvent, SolveJob, Solver, TraceRecorder};

/// `SOPHIE_THREADS` is process-global; serialize the tests that set it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("SOPHIE_THREADS", threads);
    let out = f();
    std::env::remove_var("SOPHIE_THREADS");
    out
}

fn test_instance() -> (Graph, SophieSolver) {
    let g = gnm(96, 500, WeightDist::UniformInt { lo: -3, hi: 3 }, 11).unwrap();
    let cfg = SophieConfig {
        tile_size: 16,
        local_iters: 4,
        global_iters: 40,
        tile_fraction: 0.6,
        phi: 0.25,
        alpha: 0.1,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&g, cfg).unwrap();
    (g, solver)
}

#[test]
fn engine_event_stream_is_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    let capture = || {
        let mut log = EventLog::new();
        solver.run_observed(&g, 42, Some(600.0), &mut log).unwrap();
        log.into_events()
    };
    let serial = with_threads("1", capture);
    let four = with_threads("4", capture);
    let eight = with_threads("8", capture);
    assert!(!serial.is_empty());
    assert_eq!(serial, four, "1 vs 4 threads");
    assert_eq!(serial, eight, "1 vs 8 threads");
}

#[test]
fn trace_recorder_report_matches_the_engine_outcome() {
    let (g, solver) = test_instance();
    for seed in [0u64, 42] {
        let plain = solver.run(&g, seed, Some(600.0)).unwrap();
        let mut rec = TraceRecorder::new();
        let observed = solver
            .run_observed(&g, seed, Some(600.0), &mut rec)
            .unwrap();
        let report = rec.into_report();

        // Observation must not perturb the run…
        assert_eq!(plain.best_cut, observed.best_cut);
        assert_eq!(plain.cut_trace, observed.cut_trace);
        // …and the report must rebuild the outcome exactly from events.
        assert_eq!(report.solver, "sophie");
        assert_eq!(report.best_cut, plain.best_cut);
        assert_eq!(report.cut_trace, plain.cut_trace);
        assert_eq!(report.activity_trace, plain.activity_trace);
        assert_eq!(report.iterations_to_target, plain.global_iters_to_target);
        assert_eq!(report.ops, plain.ops);
        assert_eq!(report.seed, seed);
    }
}

#[test]
fn engine_sync_deltas_sum_to_the_run_totals_and_jsonl_is_valid() {
    let (g, solver) = test_instance();
    let mut log = EventLog::new();
    let out = solver.run_observed(&g, 7, None, &mut log).unwrap();

    let mut summed = sophie::solve::OpCounts::default();
    for ev in log.events() {
        if let SolveEvent::GlobalSync { ops_delta, .. } = ev {
            summed = summed.combined(ops_delta);
        }
    }
    assert_eq!(summed, out.ops, "per-sync deltas must tile the run totals");

    // Every event serializes to one well-formed JSON object line.
    for ev in log.events() {
        let line = ev.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "{line}"
        );
    }
}

/// Framing shared by every solver: one `RunStarted` first, one
/// `RunFinished` last, a round-0 `GlobalSync`, at most one
/// `TargetReached`, and monotonically non-decreasing sync rounds.
fn assert_well_formed(events: &[SolveEvent], solver: &str) {
    assert!(
        matches!(events.first(), Some(SolveEvent::RunStarted { solver: s, .. }) if *s == solver),
        "{solver}: stream must open with RunStarted"
    );
    assert!(
        matches!(events.last(), Some(SolveEvent::RunFinished { .. })),
        "{solver}: stream must close with RunFinished"
    );
    let sync_rounds: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            SolveEvent::GlobalSync { round, .. } => Some(*round),
            _ => None,
        })
        .collect();
    assert_eq!(sync_rounds.first(), Some(&0), "{solver}: round-0 sync");
    assert!(
        sync_rounds.windows(2).all(|w| w[0] < w[1]),
        "{solver}: sync rounds must increase"
    );
    let hits = events
        .iter()
        .filter(|e| matches!(e, SolveEvent::TargetReached { .. }))
        .count();
    assert!(hits <= 1, "{solver}: at most one TargetReached, got {hits}");
}

#[test]
fn pris_and_baselines_emit_well_formed_streams() {
    let g = gnm(48, 200, WeightDist::Unit, 3).unwrap();

    let mut log = EventLog::new();
    let k = sophie::graph::coupling::coupling_matrix(&g);
    let delta = sophie::graph::coupling::delta_diagonal(&g);
    let c = sophie::pris::dropout::transformation_matrix(
        &k,
        delta,
        0.1,
        sophie::pris::DeltaVariant::Gershgorin,
    )
    .unwrap();
    let model = sophie::pris::PrisModel::new(c).unwrap();
    let config = sophie::pris::RunConfig {
        iterations: 30,
        ..sophie::pris::RunConfig::default()
    };
    sophie::pris::runner::run_observed(&model, &g, &config, &mut log).unwrap();
    assert_well_formed(log.events(), "pris");

    let mut log = EventLog::new();
    let _ = sophie::baselines::sa::anneal_observed(
        &g,
        &sophie::baselines::SaConfig {
            sweeps: 25,
            ..sophie::baselines::SaConfig::default()
        },
        Some(1.0),
        &mut log,
    );
    assert_well_formed(log.events(), "sa");

    let mut log = EventLog::new();
    let _ = sophie::baselines::sb::bifurcate_observed(
        &g,
        &sophie::baselines::SbConfig {
            steps: 25,
            ..sophie::baselines::SbConfig::default()
        },
        Some(1.0),
        &mut log,
    );
    assert_well_formed(log.events(), "sb");

    let mut log = EventLog::new();
    let (graph2, solver) = test_instance();
    solver
        .run_observed(&graph2, 0, Some(600.0), &mut log)
        .unwrap();
    assert_well_formed(log.events(), "sophie");
}

#[test]
fn trait_solve_emits_the_same_stream_as_run_observed() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (g, solver) = test_instance();
    let graph = Arc::new(g);
    let legacy = {
        let mut log = EventLog::new();
        solver
            .run_observed(&graph, 42, Some(600.0), &mut log)
            .unwrap();
        log.into_events()
    };
    let via_trait = {
        let mut log = EventLog::new();
        Solver::solve(
            &solver,
            &SolveJob::new(Arc::clone(&graph), 42).with_target(Some(600.0)),
            &mut log,
        )
        .unwrap();
        log.into_events()
    };
    assert!(!legacy.is_empty());
    assert_eq!(legacy, via_trait);
}
