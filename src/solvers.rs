//! The default solver registry: every solver in the workspace, by name.
//!
//! The registry *type* lives in [`sophie_solve`] so any crate can define
//! [`Solver`](sophie_solve::Solver) impls, but only this facade crate
//! depends on all of them — so this is where the canonical population
//! lives. Seven configurations are registered:
//!
//! | name          | config type                           | solver |
//! |---------------|---------------------------------------|--------|
//! | `sophie`      | [`SophieConfig`]                      | tiled engine, exact floating-point backend |
//! | `sophie-opcm` | ([`SophieConfig`], [`OpcmBackendConfig`]) | tiled engine on the OPCM device models |
//! | `pris`        | [`PrisJobConfig`]                     | unmodified photonic recurrent Ising sampler |
//! | `sa`          | [`SaConfig`]                          | simulated annealing |
//! | `sb`          | [`SbConfig`]                          | simulated bifurcation (bSB/dSB) |
//! | `pt`          | [`PtConfig`]                          | parallel tempering |
//! | `bls`         | [`BlsConfig`]                         | breakout local search |
//!
//! ```
//! use sophie::solvers::default_registry;
//! use sophie::solve::{run_seeds, SolveJob};
//! use sophie::graph::generate::{complete, WeightDist};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reg = default_registry();
//! assert_eq!(reg.len(), 7);
//! let solver = reg.build_default("sa")?;
//! let graph = Arc::new(complete(16, WeightDist::Unit, 0)?);
//! let batch = run_seeds(&solver, &graph, 4, Some(60.0))?;
//! assert_eq!(batch.reports.len(), 4);
//! # Ok(())
//! # }
//! ```

use sophie_baselines::{
    BlsConfig, BlsSolver, PtConfig, PtSolver, SaConfig, SaSolver, SbConfig, SbSolver,
};
use sophie_core::{SophieConfig, SophieIsing};
use sophie_hw::{OpcmBackendConfig, SophieOpcm};
use sophie_pris::{PrisJobConfig, PrisSolver};
use sophie_solve::SolverRegistry;

/// Builds a registry with every solver in the workspace registered.
#[must_use]
pub fn default_registry() -> SolverRegistry {
    let mut reg = SolverRegistry::new();
    reg.register(
        "sophie",
        "SOPHIE tiled recurrent Ising engine on the exact floating-point backend",
        |c: &SophieConfig| SophieIsing::new(c.clone()),
    );
    reg.register(
        "sophie-opcm",
        "SOPHIE tiled engine on the OPCM device models (quantization, read noise, ADC, faults)",
        |c: &(SophieConfig, OpcmBackendConfig)| SophieOpcm::new(c.0.clone(), c.1),
    );
    reg.register(
        "pris",
        "unmodified photonic recurrent Ising sampler (software baseline)",
        |c: &PrisJobConfig| Ok(PrisSolver::new(*c)),
    );
    reg.register(
        "sa",
        "simulated annealing (Metropolis, geometric cooling)",
        |c: &SaConfig| SaSolver::new(*c),
    );
    reg.register(
        "sb",
        "simulated bifurcation (ballistic or discrete oscillator dynamics)",
        |c: &SbConfig| SbSolver::new(*c),
    );
    reg.register(
        "pt",
        "parallel tempering (replica exchange over a geometric temperature ladder)",
        |c: &PtConfig| PtSolver::new(*c),
    );
    reg.register(
        "bls",
        "breakout local search (steepest-ascent descent plus multi-flip perturbations)",
        |c: &BlsConfig| BlsSolver::new(*c),
    );
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_seven_solvers() {
        let reg = default_registry();
        assert_eq!(
            reg.names(),
            vec!["bls", "pris", "pt", "sa", "sb", "sophie", "sophie-opcm"]
        );
        for name in reg.names() {
            let solver = reg.build_default(name).unwrap();
            // The engine-backed adapters report "sophie" from both the
            // ideal and OPCM configurations; everything else echoes its
            // registry name.
            if name == "sophie-opcm" {
                assert_eq!(solver.name(), "sophie-opcm");
            } else {
                assert_eq!(solver.name(), name);
            }
            assert!(reg.summary(name).is_some());
        }
    }

    #[test]
    fn typed_build_accepts_each_config() {
        let reg = default_registry();
        assert!(reg.build("sophie", &SophieConfig::default()).is_ok());
        assert!(reg
            .build(
                "sophie-opcm",
                &(SophieConfig::default(), OpcmBackendConfig::default())
            )
            .is_ok());
        assert!(reg.build("pris", &PrisJobConfig::default()).is_ok());
        assert!(reg.build("sa", &SaConfig::default()).is_ok());
        assert!(reg.build("sb", &SbConfig::default()).is_ok());
        assert!(reg.build("pt", &PtConfig::default()).is_ok());
        assert!(reg.build("bls", &BlsConfig::default()).is_ok());
        // And the wrong type is a typed error, not a panic.
        assert!(reg.build("sa", &SbConfig::default()).is_err());
    }

    #[test]
    fn capability_flags_distinguish_the_engines() {
        let reg = default_registry();
        let sophie = reg.build_default("sophie").unwrap();
        assert!(sophie.capabilities().tiled && sophie.capabilities().op_model);
        assert!(!sophie.capabilities().fault_model);
        let opcm = reg.build_default("sophie-opcm").unwrap();
        assert!(opcm.capabilities().fault_model);
        let sa = reg.build_default("sa").unwrap();
        assert_eq!(sa.capabilities(), Default::default());
    }
}
