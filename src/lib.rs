//! SOPHIE: a scalable recurrent Ising machine using optically addressed
//! phase change memory — a full Rust reproduction of the MICRO 2024 paper.
//!
//! This meta-crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`graph`] — workloads: weighted graphs, Rudy-style generators, GSET
//!   I/O, max-cut evaluation ([`sophie_graph`]);
//! * [`linalg`] — the numerical substrate: symmetric eigensolvers, tiling,
//!   matrix products ([`sophie_linalg`]);
//! * [`solve`] — the solver-agnostic instrumentation layer: solve events,
//!   observers, reports, and convergence trackers ([`sophie_solve`]);
//! * [`pris`] — the original photonic recurrent Ising sampler
//!   ([`sophie_pris`]);
//! * [`core`] — SOPHIE's modified algorithm: symmetric local updates,
//!   stochastic global iteration, static scheduling ([`sophie_core`]);
//! * [`hw`] — OPCM device models, the 2.5D accelerator hierarchy, and the
//!   power/performance/area models ([`sophie_hw`]);
//! * [`baselines`] — simulated annealing/bifurcation, local search, and
//!   published competitor numbers ([`sophie_baselines`]);
//! * [`problems`] — the problem-compiler front end: QUBO, MAX-CUT,
//!   coloring/Potts, and LDPC lowered to Ising jobs and decoded back to
//!   domain metrics ([`sophie_problems`]).
//!
//! Every solver implements [`solve::Solver`]; [`solvers::default_registry`]
//! constructs any of the seven configurations by name, and
//! [`solve::run_batch`] runs heterogeneous job batches over the shared
//! worker pool.
//!
//! # Quickstart
//!
//! ```
//! use sophie::core::{SophieConfig, SophieSolver};
//! use sophie::graph::generate::{complete, WeightDist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = complete(32, WeightDist::Unit, 7)?;
//! let config = SophieConfig { tile_size: 8, global_iters: 80, ..SophieConfig::default() };
//! let solver = SophieSolver::from_graph(&graph, config)?;
//! let outcome = solver.run(&graph, 1, None)?;
//! println!("best cut: {}", outcome.best_cut);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod solvers;

pub use sophie_baselines as baselines;
pub use sophie_core as core;
pub use sophie_graph as graph;
pub use sophie_hw as hw;
pub use sophie_linalg as linalg;
pub use sophie_pris as pris;
pub use sophie_problems as problems;
pub use sophie_solve as solve;

pub use solvers::default_registry;
