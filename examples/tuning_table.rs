//! Parameter tuning: build the paper's (order, density) → (φ, α) lookup
//! table (§IV-B) and use it on unseen instances.
//!
//! The optimal noise φ and dropout α drift with graph order and density;
//! the paper proposes calibrating a lookup table offline. This example
//! calibrates three workload classes, prints the table, and shows the
//! tuned parameters transferring to fresh instances of each class.
//!
//! Run with: `cargo run --release --example tuning_table`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sophie::graph::generate::{gnm, WeightDist};
use sophie::pris::tuning::{calibrate, validate_on, CalibrationConfig, TuningTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes: &[(usize, f64, &str)] = &[
        (100, 0.9, "small dense (K100-like)"),
        (200, 0.1, "medium sparse"),
        (400, 0.02, "large sparse (GSET-like)"),
    ];

    let mut table = TuningTable::new();
    let config = CalibrationConfig::default();
    println!("calibrating {} workload classes…\n", classes.len());
    for &(order, density, label) in classes {
        let entry = calibrate(order, density, &config)?;
        println!(
            "{label:<28} order {order:>4} density {density:<5} → φ = {:<6} α = {:<4} (cut {:.0})",
            entry.phi, entry.alpha, entry.calibration_cut
        );
        table.insert(entry);
    }

    println!("\napplying tuned parameters to unseen instances:");
    let mut rng = StdRng::seed_from_u64(2024);
    for &(order, density, label) in classes {
        let capacity = order * (order - 1) / 2;
        let m = ((density * capacity as f64) as usize).max(1);
        let fresh = gnm(order, m, WeightDist::Unit, 777)?;
        let entry = table.lookup_graph(&fresh).expect("table has entries");
        let cut = validate_on(entry, &fresh, 400, 3, &mut rng)?;
        println!(
            "{label:<28} lookup → φ = {:<6} best cut on fresh instance: {cut:.0}",
            entry.phi
        );
    }
    Ok(())
}
