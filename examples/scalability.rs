//! Scalability study: SOPHIE beyond its hardware capacity.
//!
//! The paper's headline is that SOPHIE keeps working when the problem is
//! (much) larger than the machine. This example replays the static
//! schedule analytically for K-graphs from 4 096 to 32 768 nodes — no
//! spin state is materialized — and feeds the exact operation counts into
//! the timing/energy/area models for 1, 2, and 4 accelerators.
//!
//! Run with: `cargo run --release --example scalability`

use sophie::core::SophieConfig;
use sophie::hw::arch::MachineConfig;
use sophie::hw::cost::{edap, params::CostParams, workload::WorkloadSummary};
use sophie::hw::device::opcm::OpcmCellSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SophieConfig {
        tile_size: 64,
        local_iters: 10,
        global_iters: 50,
        tile_fraction: 0.74, // the paper's best operating point (Fig. 10)
        ..SophieConfig::default()
    };
    let params = CostParams::default();
    let cell = OpcmCellSpec::default();
    let batch = 100;

    println!(
        "{:>7} {:>6} {:>9} {:>6} {:>12} {:>12} {:>10}",
        "nodes", "accel", "pairs", "waves", "time/job", "energy/job", "area"
    );
    for &n in &[4096usize, 8192, 16_384, 32_768] {
        let ops = sophie::core::analytic::analytic_op_counts(n, &config, 0)?;
        let w = WorkloadSummary::from_ops(n, &config, &ops, batch);
        for accels in [1usize, 2, 4] {
            let machine = MachineConfig::sophie_default(accels);
            let ppa = edap::evaluate(&machine, &params, &cell, &w, &ops, 8)?;
            println!(
                "{:>7} {:>6} {:>9} {:>6} {:>10.2} µs {:>10.2} µJ {:>7.0} mm²",
                n,
                accels,
                w.pairs_total,
                ppa.timing.waves_per_round,
                ppa.timing.per_job_s * 1e6,
                ppa.energy.total_j() * 1e6,
                ppa.area.total_mm2()
            );
        }
    }
    println!("\n(50 global iterations × 10 local iterations per job, batch {batch};");
    println!(" problems larger than one accelerator run in waves with reprogramming");
    println!(" overlapped — the mechanism behind the paper's Table III.)");
    Ok(())
}
