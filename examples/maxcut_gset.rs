//! GSET-style workload: SOPHIE vs software baselines on a G1-shaped graph.
//!
//! Regenerates a GSET-G1-shaped instance (800 nodes, 19 176 unit-weight
//! edges — drop a real GSET file on stdin to use it instead), then runs
//! the SOPHIE engine, plain PRIS, simulated annealing, discrete simulated
//! bifurcation, and breakout local search, reporting each solver's cut.
//!
//! Run with: `cargo run --release --example maxcut_gset [< G1.txt]`

use std::io::{IsTerminal, Read};

use sophie::baselines::local_search::{search, BlsConfig};
use sophie::baselines::sa::{anneal, SaConfig};
use sophie::baselines::sb::{bifurcate, SbConfig};
use sophie::core::{SophieConfig, SophieSolver};
use sophie::graph::generate::presets;
use sophie::graph::{io, Graph, GraphStats};
use sophie::pris::runner::{solve_max_cut, RunConfig};

fn load_graph() -> Result<Graph, Box<dyn std::error::Error>> {
    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        Ok(presets::g1_like(1)?)
    } else {
        let mut text = String::new();
        stdin.lock().read_to_string(&mut text)?;
        Ok(io::parse_graph(&text)?)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = load_graph()?;
    println!("instance: {}", GraphStats::compute(&graph));

    let mut results: Vec<(&str, f64)> = Vec::new();

    // SOPHIE's tiled engine at the paper's operating point.
    let config = SophieConfig {
        global_iters: 150,
        phi: 0.1,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&graph, config)?;
    let sophie = solver.run(&graph, 7, None)?;
    results.push(("SOPHIE (tiled engine)", sophie.best_cut));

    // Original (untiled) PRIS.
    let pris = solve_max_cut(
        &graph,
        0.0,
        &RunConfig {
            iterations: 1500,
            phi: 0.1,
            seed: 7,
            target_cut: None,
        },
    )?;
    results.push(("PRIS (original)", pris.best_cut));

    results.push((
        "Simulated annealing",
        anneal(&graph, &SaConfig::default()).best_cut,
    ));
    results.push((
        "Discrete simulated bifurcation",
        bifurcate(&graph, &SbConfig::default()).best_cut,
    ));
    results.push((
        "Breakout local search",
        search(&graph, &BlsConfig::default()).best_cut,
    ));

    let best = results
        .iter()
        .map(|r| r.1)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\n{:<32} {:>10} {:>8}", "solver", "cut", "vs best");
    for (name, cut) in &results {
        println!("{name:<32} {cut:>10.1} {:>7.1}%", 100.0 * cut / best);
    }
    Ok(())
}
