//! Hardware-in-the-loop functional simulation.
//!
//! Runs the identical tiled algorithm on (a) the exact floating-point
//! backend and (b) the OPCM device model — quantized GST cells, analog
//! read noise, 8-bit partial-sum ADC — and shows how solution quality
//! holds up as the cells get coarser. This is the experiment that
//! justifies trusting an analog optical substrate with the algorithm.
//!
//! Run with: `cargo run --release --example hardware_sim`

use sophie::core::backend::IdealBackend;
use sophie::core::{SophieConfig, SophieSolver};
use sophie::graph::generate::{gnm, WeightDist};
use sophie::hw::device::opcm::OpcmCellSpec;
use sophie::hw::{OpcmBackend, OpcmBackendConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gnm(512, 4096, WeightDist::Unit, 3)?;
    let config = SophieConfig {
        tile_size: 64,
        global_iters: 150,
        phi: 0.1,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&graph, config)?;
    let runs = 3u64;

    let best = |mk: &dyn Fn(u64) -> f64| (0..runs).map(mk).fold(f64::NEG_INFINITY, f64::max);

    let ideal = best(&|seed| {
        solver
            .run_with_backend(&IdealBackend::new(), &graph, seed, None)
            .expect("engine run")
            .best_cut
    });
    println!("{:<34} {:>9.1}", "ideal floating-point backend", ideal);

    for levels in [64u32, 16, 8, 4, 2] {
        let cut = best(&|seed| {
            let backend = OpcmBackend::new(OpcmBackendConfig {
                cell: OpcmCellSpec {
                    levels,
                    ..OpcmCellSpec::default()
                },
                read_noise: 0.01,
                adc_bits: 8,
                seed: seed * 17 + 1,
                ..OpcmBackendConfig::default()
            });
            solver
                .run_with_backend(&backend, &graph, seed, None)
                .expect("engine run")
                .best_cut
        });
        println!(
            "OPCM backend, {levels:>2}-level cells      {cut:>9.1}  ({:.1} % of ideal)",
            100.0 * cut / ideal
        );
    }
    println!("\n(64-level ≈ 6-bit GST cells are the demonstrated state of the art [21];");
    println!(" the paper's design point loses almost nothing against exact arithmetic.)");
    Ok(())
}
