//! Quickstart: solve a max-cut instance with the SOPHIE engine.
//!
//! Builds a K100-style complete graph with ±1 weights (the paper's small
//! benchmark), runs the tiled modified-PRIS engine, and compares the
//! result against a strong classical reference.
//!
//! Run with: `cargo run --release --example quickstart`

use sophie::baselines::{best_known_cut, Effort};
use sophie::core::{SophieConfig, SophieSolver};
use sophie::graph::generate::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's K100 benchmark: complete graph, random ±1 weights.
    let graph = presets::k100(42)?;
    println!("graph: {graph}");

    // The paper's operating point: tile 64, 10 local iterations per global
    // iteration, stochastic spin update. K100 fits in two tile rows.
    let config = SophieConfig {
        tile_size: 64,
        local_iters: 10,
        global_iters: 300,
        tile_fraction: 1.0,
        phi: 0.1,
        alpha: 0.0,
        stochastic_spin_update: true,
        ..SophieConfig::default()
    };
    let solver = SophieSolver::from_graph(&graph, config)?;
    println!(
        "tiled into {} blocks → {} symmetric pairs (physical OPCM arrays)",
        solver.grid().blocks(),
        solver.num_pairs()
    );

    let reference = best_known_cut(&graph, Effort::Standard);
    let mut best = f64::NEG_INFINITY;
    for seed in 0..5 {
        let outcome = solver.run(&graph, seed, Some(0.95 * reference))?;
        println!(
            "seed {seed}: best cut {:>7.1} ({:.1} % of reference){}",
            outcome.best_cut,
            100.0 * outcome.best_cut / reference,
            match outcome.global_iters_to_target {
                Some(g) => format!(", reached 95 % after {g} global iterations"),
                None => String::new(),
            }
        );
        best = best.max(outcome.best_cut);
    }
    println!("reference (SB + local search): {reference:.1}");
    println!("SOPHIE best over 5 seeds:      {best:.1}");
    Ok(())
}
