#!/usr/bin/env bash
# Tier-1 gate: every PR must pass this locally before merge.
#
#   scripts/ci.sh          # full gate (fmt, clippy, build, tests)
#   scripts/ci.sh --quick  # skip the cross-crate test sweep
#
# The first four steps are the ROADMAP tier-1 contract; the full gate
# additionally runs every crate's unit, property, and compat-shim tests,
# builds the examples, denies rustdoc warnings, and smoke-runs the
# `repro` binary (bench-summary + a JSONL event trace).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --all-targets --workspace -- -D warnings
run cargo build --release
run cargo test -q

if [[ "$quick" -eq 0 ]]; then
    run cargo test -q --workspace
    run cargo build --release --examples
    echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --workspace"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    run cargo run --release -q -p sophie-bench --bin repro -- bench-summary --out "$smoke_dir"
    run cargo run --release -q -p sophie-bench --bin repro -- trace --fast \
        --graph K100 --seed 0 --out "$smoke_dir/trace.jsonl"
    [[ -s "$smoke_dir/trace.jsonl" ]] || { echo "trace smoke test wrote nothing" >&2; exit 1; }
fi

echo "ci.sh: all gates passed"
