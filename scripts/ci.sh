#!/usr/bin/env bash
# Tier-1 gate: every PR must pass this locally before merge.
#
#   scripts/ci.sh          # full gate (fmt, clippy, build, tests)
#   scripts/ci.sh --quick  # skip the cross-crate test sweep
#
# The first four steps are the ROADMAP tier-1 contract; the full gate
# additionally runs every crate's unit, property, and compat-shim tests
# (called out below: the fault-injection/recovery and determinism suites),
# builds the examples, denies rustdoc warnings, and smoke-runs the
# `repro` binary (the solver-registry listing, bench-summary, a JSONL
# event trace, and the robustness sweep on a tiny graph).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --all-targets --workspace -- -D warnings
run cargo build --release
run cargo test -q

# Layering gate: experiment modules go through the Solver trait and the
# batch scheduler, never through a solver's legacy `*_observed` entry
# points (those remain only as shims under the trait impls).
echo "==> grep gate: no *_observed calls under crates/bench/src/experiments/"
if grep -rn "_observed(" crates/bench/src/experiments/; then
    echo "experiment modules must use the Solver trait / batch scheduler, not legacy *_observed APIs" >&2
    exit 1
fi

if [[ "$quick" -eq 0 ]]; then
    run cargo test -q --workspace
    # Fault-aware runtime: injection/recovery behavior and the
    # thread-count bit-determinism of the fault/recovery event streams.
    run cargo test -q -p sophie-hw --test fault_injection --test fault_recovery
    run cargo test -q -p sophie --test fault_determinism --test thread_determinism
    run cargo build --release --examples
    echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --workspace"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    # Registry smoke: lists all seven solvers and runs each through the
    # batch scheduler on a tiny instance.
    run cargo run --release -q -p sophie-bench --bin repro -- solvers
    run cargo run --release -q -p sophie-bench --bin repro -- bench-summary --out "$smoke_dir"
    run cargo run --release -q -p sophie-bench --bin repro -- trace --fast \
        --graph K100 --seed 0 --out "$smoke_dir/trace.jsonl"
    [[ -s "$smoke_dir/trace.jsonl" ]] || { echo "trace smoke test wrote nothing" >&2; exit 1; }
    run cargo run --release -q -p sophie-bench --bin repro -- robustness --fast --out "$smoke_dir"
    [[ -s "$smoke_dir/robustness.jsonl" ]] || { echo "robustness smoke test wrote no JSONL" >&2; exit 1; }
    [[ -s "$smoke_dir/robustness.csv" ]] || { echo "robustness smoke test wrote no CSV" >&2; exit 1; }
fi

echo "ci.sh: all gates passed"
