#!/usr/bin/env bash
# Tier-1 gate: every PR must pass this locally before merge.
#
#   scripts/ci.sh          # full gate (fmt, clippy, build, tests)
#   scripts/ci.sh --quick  # skip the cross-crate test sweep
#
# The first four steps are the ROADMAP tier-1 contract; the final
# workspace sweep additionally runs every crate's unit, property, and
# compat-shim tests (34 test binaries).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --all-targets --workspace -- -D warnings
run cargo build --release
run cargo test -q

if [[ "$quick" -eq 0 ]]; then
    run cargo test -q --workspace
fi

echo "ci.sh: all gates passed"
