#!/usr/bin/env bash
# Tier-1 gate: every PR must pass this locally before merge.
#
#   scripts/ci.sh          # full gate (fmt, clippy, build, tests)
#   scripts/ci.sh --quick  # skip the cross-crate test sweep
#
# The first four steps are the ROADMAP tier-1 contract; the full gate
# additionally runs every crate's unit, property, and compat-shim tests
# (called out below: the fault-injection/recovery and determinism suites),
# builds the examples, denies rustdoc warnings, and smoke-runs the
# `repro` binary (the solver-registry listing, bench-summary with a
# sparse-suite/speedup gate, the kernel autotune smoke with its 1.3x
# forward-speedup gate, the problem-compiler sweep with a feasible-decode
# gate on every annealer row, the sparse dense-vs-delta equivalence sweep,
# a JSONL event trace, a JSONL command timeline with an exact-cost-sum and
# probe/solve-overlap gate, the robustness sweep on a tiny graph, the
# serving layer: an ephemeral-port daemon driven through submit/ctl/loadgen,
# and the cluster layer: a router over 3 replicas with a forced replica
# kill mid-workload, gated on zero lost jobs).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --all-targets --workspace -- -D warnings
run cargo build --release
run cargo test -q

# Layering gate: experiment modules go through the Solver trait and the
# batch scheduler, never through a solver's legacy `*_observed` entry
# points (those remain only as shims under the trait impls).
echo "==> grep gate: no *_observed calls under crates/bench/src/experiments/"
if grep -rn "_observed(" crates/bench/src/experiments/; then
    echo "experiment modules must use the Solver trait / batch scheduler, not legacy *_observed APIs" >&2
    exit 1
fi

# Device-runtime gate: engine stage modules submit commands through the
# queue; direct MvmUnit reads live only in the queue's executor
# (crates/core/src/queue/exec.rs).
echo "==> grep gate: no direct MvmUnit reads under crates/core/src/engine/"
if grep -rn "\.forward(\|\.transposed(" crates/core/src/engine/; then
    echo "engine stages must submit Mvm commands through the device queue, not call MvmUnit::forward/transposed" >&2
    exit 1
fi

# Kernel-stack gate: engine and sparse code reach the MVM kernels only
# through a resolved KernelPlan; raw Tile::mvm/mvm_transposed calls would
# bypass variant selection, the SOPHIE_KERNEL override, and the autotuner.
echo "==> grep gate: no direct Tile::mvm calls under crates/core/src/"
if grep -rn "\.mvm(\|\.mvm_transposed(" crates/core/src/; then
    echo "core code must dispatch MVMs through KernelPlan, never Tile::mvm/mvm_transposed directly" >&2
    exit 1
fi

# Problem-compiler gate: bench and serve code obtains Ising instances only
# through the front-end compilers (ProblemSpec::compile / *Problem::compile);
# assembling instances by hand would skip offset bookkeeping, ancilla
# handling, and the decode contract.
echo "==> grep gate: no direct IsingInstance assembly under crates/bench/ or crates/serve/"
if grep -rn "IsingInstance::assemble\|IsingInstance {" crates/bench/src/ crates/serve/src/; then
    echo "bench/serve code must lower problems via the compiler front ends, never assemble IsingInstance directly" >&2
    exit 1
fi

# Router gate: dispatch reaches replicas only through the health-tracked
# replica pool and the typed Client; a raw socket dial would bypass
# checkout accounting, reconnect policy, and health bookkeeping.
echo "==> grep gate: no raw TcpStream dials under crates/serve/src/router/"
if grep -rn "TcpStream::connect" crates/serve/src/router/; then
    echo "router code must dial replicas via the replica pool / Client, never raw TcpStream::connect" >&2
    exit 1
fi

if [[ "$quick" -eq 0 ]]; then
    run cargo test -q --workspace
    # Fault-aware runtime: injection/recovery behavior and the
    # thread-count bit-determinism of the fault/recovery event streams.
    run cargo test -q -p sophie-hw --test fault_injection --test fault_recovery --test command_queue
    run cargo test -q -p sophie --test fault_determinism --test thread_determinism --test kernel_determinism
    run cargo build --release --examples
    echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --workspace"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    # Registry smoke: lists all seven solvers and runs each through the
    # batch scheduler on a tiny instance.
    run cargo run --release -q -p sophie-bench --bin repro -- solvers
    run cargo run --release -q -p sophie-bench --bin repro -- bench-summary --out "$smoke_dir"
    # Bench gate (quick mode): the sparse kernel suites must be present and
    # the warm-polish speedup must not regress below a conservative floor
    # (the committed full record shows >= 5x; quick-mode medians are noisy).
    python3 - "$smoke_dir/BENCH_sophie.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
ids = {r["id"] for r in doc["results"]}
for needed in (
    "sparse_matvec/dense_kernel/64",
    "sparse_matvec/csr_full/64",
    "sparse_matvec/incremental_1flip/64",
    "incremental_round/dense/2000",
    "incremental_round/sparse/2000",
):
    assert needed in ids, f"bench summary missing {needed}"
sp = doc["sparse_speedup"]["speedup"]
assert sp >= 2.0, f"sparse polish speedup regressed to {sp}x (quick-mode floor: 2.0)"
print(f"bench gate: sparse suites present, warm-polish speedup {sp:.1f}x")
PY
    # Kernel autotune smoke: measures every variant at the acceptance tile
    # sizes, records the kernel_tune block, and --check enforces the
    # tentpole claim inside the binary (tuned forward 64^2 >= 1.3x scalar).
    run cargo run --release -q -p sophie-bench --bin repro -- tune --check --out "$smoke_dir"
    python3 - "$smoke_dir/BENCH_sophie.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
kt = doc["kernel_tune"]
assert kt["schema"] == "sophie-kernel-tune-v1", "kernel_tune schema"
tiles = [p["tile"] for p in kt["plans"]]
assert tiles == [64, 256, 500], f"kernel_tune plans cover {tiles}"
assert len(kt["table_64"]) == 6, "one row per kernel variant"
sp = kt["forward_64_speedup"]
assert sp >= 1.3, f"tuned forward 64^2 speedup regressed to {sp}x (floor: 1.3)"
# bench-summary regeneration must have preserved the block alongside its own
assert "results" in doc and "sparse_speedup" in doc, "kernel_tune upsert dropped sibling blocks"
print(f"kernel_tune gate: plans for {tiles}, forward 64^2 speedup {sp:.2f}x")
PY
    # Problem-compiler smoke: every front end (QUBO, MAX-CUT, coloring,
    # LDPC) compiled, solved through the registry, and decoded; the gate
    # requires a feasible decode on every annealer row and the `problems`
    # block upserted without dropping siblings.
    run cargo run --release -q -p sophie-bench --bin repro -- problems --fast --out "$smoke_dir"
    python3 - "$smoke_dir/BENCH_sophie.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
pb = doc["problems"]
assert pb["schema"] == "sophie-problems-v1", "problems schema"
entries = pb["entries"]
kinds = {e["kind"] for e in entries}
assert kinds == {"qubo", "max-cut", "coloring", "ldpc"}, f"kinds covered: {kinds}"
for e in entries:
    assert e["decoded"]["kind"] == e["kind"], "decoded metrics match the kind"
    if e["solver"] == "sa":
        assert e["feasible_runs"] >= 1, f"{e['label']} via sa never decoded feasibly"
assert "kernel_tune" in doc and "results" in doc, "problems upsert dropped sibling blocks"
sa = [e for e in entries if e["solver"] == "sa"]
print(f"problems gate: {len(kinds)} kinds, {len(sa)} annealer rows all feasible")
PY
    # Sparse-path smoke: the sweep itself asserts that dense and sparse
    # compute modes produce identical reports on a G22-sized instance.
    run cargo run --release -q -p sophie-bench --bin repro -- sparse --fast --out "$smoke_dir"
    [[ -s "$smoke_dir/sparse.csv" ]] || { echo "sparse smoke test wrote no CSV" >&2; exit 1; }
    run cargo run --release -q -p sophie-bench --bin repro -- trace --fast \
        --graph K100 --seed 0 --out "$smoke_dir/trace.jsonl"
    [[ -s "$smoke_dir/trace.jsonl" ]] || { echo "trace smoke test wrote nothing" >&2; exit 1; }
    # Command-timeline smoke: per-record costs must sum exactly to the
    # run aggregate, and the health monitor's probes must interleave with
    # solve MVMs inside the same round (the overlap the device runtime
    # exists for).
    run cargo run --release -q -p sophie-bench --bin repro -- timeline --fast \
        --graph K100 --seed 0 --out "$smoke_dir/timeline.jsonl"
    python3 - "$smoke_dir/timeline.jsonl" <<'PY'
import collections, json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines[0]["record"] == "run" and lines[-1]["record"] == "total", "framing"
total = lines[-1]
device = [l for l in lines if l["record"] == "device"]
host = [l for l in lines if l["record"] == "host"]
sums = collections.Counter()
for r in device + host:
    for k, v in r["ops"].items():
        sums[k] += v
for k, v in total["ops"].items():
    assert sums[k] == v, f"timeline ops.{k}: records sum to {sums[k]}, aggregate says {v}"
rounds = collections.defaultdict(lambda: {"probe": [], "mvm": []})
for r in device:
    if r["kind"] == "probe":
        rounds[r["round"]]["probe"].append(r["wave"])
    elif r["kind"].startswith("mvm_"):
        rounds[r["round"]]["mvm"].append(r["wave"])
overlapped = [
    rd for rd, w in rounds.items()
    if w["probe"] and w["mvm"] and min(w["probe"]) < max(w["mvm"])
]
assert overlapped, "no round shows probe submissions interleaved with solve MVMs"
print(f"timeline gate: {len(device)}+{len(host)} records sum exactly; "
      f"probes overlap solve MVMs in {len(overlapped)} round(s)")
PY
    run cargo run --release -q -p sophie-bench --bin repro -- robustness --fast --out "$smoke_dir"
    [[ -s "$smoke_dir/robustness.jsonl" ]] || { echo "robustness smoke test wrote no JSONL" >&2; exit 1; }
    [[ -s "$smoke_dir/robustness.csv" ]] || { echo "robustness smoke test wrote no CSV" >&2; exit 1; }

    # Serving smoke: daemon on an ephemeral port, one plain SA job and one
    # streaming SOPHIE job through the client, stats, a loadgen micro-run,
    # and a clean protocol shutdown. Every stdout line must be valid JSONL.
    echo "==> serve smoke test (ephemeral-port daemon + submit/ctl/loadgen)"
    cargo run --release -q -p sophie-bench --bin repro -- serve \
        --port-file "$smoke_dir/serve.port" --queue 16 --workers 2 &
    serve_pid=$!
    # `|| true`: by shutdown the daemon has already exited (we `wait` on
    # it), and a failing kill inside the trap would turn a fully green
    # run into exit 1 under `set -e`.
    trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
    # No shell polling loop here: `--port-file` consumers wait for the
    # daemon's address themselves (bounded-backoff poll in the binary).
    # Plain `run` would echo its banner into the redirected JSONL, so these
    # three announce themselves on stderr instead.
    echo "==> repro submit (plain sa) > submit_sa.jsonl" >&2
    cargo run --release -q -p sophie-bench --bin repro -- submit \
        --port-file "$smoke_dir/serve.port" --solver sa --graph K40 \
        --config '{"sweeps":50}' --deadline-ms 30000 > "$smoke_dir/submit_sa.jsonl"
    serve_addr=$(cat "$smoke_dir/serve.port")
    echo "==> repro submit (streaming sophie) > submit_sophie.jsonl" >&2
    cargo run --release -q -p sophie-bench --bin repro -- submit \
        --addr "$serve_addr" --solver sophie --graph K20 --stream \
        --config '{"global_iters":2,"tile_size":10,"local_iters":2}' > "$smoke_dir/submit_sophie.jsonl"
    grep -q '"event":"run_finished"' "$smoke_dir/submit_sophie.jsonl" \
        || { echo "streaming submit produced no run_finished event" >&2; exit 1; }
    echo "==> repro ctl stats > stats.jsonl" >&2
    cargo run --release -q -p sophie-bench --bin repro -- ctl stats --addr "$serve_addr" \
        > "$smoke_dir/stats.jsonl"
    grep -q '"completed":2' "$smoke_dir/stats.jsonl" \
        || { echo "daemon stats do not account for both submitted jobs" >&2; exit 1; }
    run cargo run --release -q -p sophie-bench --bin repro -- loadgen \
        --addr "$serve_addr" --clients 2 --requests 3 --solver sa --graph K20 \
        --config '{"sweeps":20}' --out "$smoke_dir/loadgen.jsonl"
    [[ -s "$smoke_dir/loadgen.jsonl" ]] || { echo "loadgen wrote no JSONL" >&2; exit 1; }
    run cargo run --release -q -p sophie-bench --bin repro -- ctl shutdown --addr "$serve_addr"
    wait "$serve_pid"
    python3 - "$smoke_dir"/submit_sa.jsonl "$smoke_dir"/submit_sophie.jsonl \
        "$smoke_dir"/stats.jsonl "$smoke_dir"/loadgen.jsonl <<'PY'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        lines = [l for l in f.read().splitlines() if l.strip()]
    assert lines, f"{path}: empty"
    for line in lines:
        json.loads(line)
print(f"serve smoke: {len(sys.argv) - 1} JSONL artifacts valid")
PY

    # Cluster smoke: router over 3 replicas, chaos loadgen kills replica 0
    # a quarter into the workload and restarts it past 60%. The gate:
    # every record is valid JSONL and retry/failover hid the kill — every
    # request completed `done`, none were lost or errored.
    run cargo run --release -q -p sophie-bench --bin repro -- loadgen \
        --cluster --replicas 3 --chaos --clients 4 --requests 6 --solver sa --graph K20 \
        --config '{"sweeps":400}' --out "$smoke_dir/cluster.jsonl"
    python3 - "$smoke_dir/cluster.jsonl" <<'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
summary = lines[-1]
assert summary["type"] == "summary", "last line must be the summary"
requests = [l for l in lines if l["type"] == "request"]
assert len(requests) == summary["requests"] == 24, "one record per request"
assert summary["replicas"] == 3 and summary["chaos"] is True, "cluster provenance"
assert summary["done"] == summary["requests"], (
    f"chaos run lost jobs: {summary['done']}/{summary['requests']} done"
)
print(f"cluster smoke: {summary['done']}/{summary['requests']} done under replica kill/restart")
PY
fi

echo "ci.sh: all gates passed"
